//! `ppc` — command-line driver for the pleasingly parallel cloud library.
//!
//! ```text
//! ppc catalog                         print the instance-type catalogs
//! ppc advisor <cap3|blast|gtm>        instance-type study for a workload
//! ppc simulate --app <name> [--instance T] [--instances N] [--workers W] [--files F]
//! ppc compare --app <name> [--files F] [--gray F] [--hedge on]
//!                                     print all three paradigms on one fleet
//! ppc demo                            native end-to-end Cap3 mini-run
//! ```
//!
//! The heavy lifting lives in the library crates; this binary is argument
//! parsing plus report printing, and every command routes through the same
//! public API the examples use.

use ppc::apps::experiment::ec2_instance_study;
use ppc::apps::workload;
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{InstanceType, AZURE_TYPES, EC2_TYPES};
use ppc::compute::model::AppModel;
use ppc::core::report::{Figure, Series, Table};
use ppc::core::{PpcError, Result};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            std::process::exit(1);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  ppc catalog\n  ppc advisor <cap3|blast|gtm> [--budget <$>] [--deadline <seconds>]\n  ppc simulate --app <cap3|blast|gtm> [--instance HCXL] [--instances 2] [--workers 8] [--files 64]\n  ppc compare --app <cap3|blast|gtm> [--files 64] [--gray 30] [--hedge on] [--engine <name>]\n  ppc compare --pipeline [--files 64] [--gray 30] [--hedge on] [--engine <name>]\n  ppc serve [--engines classic,mapreduce,dryad] [--jobs 24] [--json]\n  ppc serve --replay [--clients 20] [--jobs 25] [--think 10] [--instances 8] [--seed 4242] [--json]\n  ppc demo"
}

/// Dispatch a CLI invocation; returns the rendered output.
fn run(args: &[String]) -> Result<String> {
    match args.first().map(String::as_str) {
        Some("catalog") => Ok(catalog()),
        Some("advisor") => {
            let app = args.get(1).map(String::as_str).unwrap_or("cap3");
            let flags = parse_flags(args.get(2..).unwrap_or(&[]))?;
            advisor(app, &flags)
        }
        Some("simulate") => simulate_cmd(parse_flags(&args[1..])?),
        Some("compare") => compare_cmd(parse_flags(&args[1..])?),
        Some("serve") => serve_cmd(parse_flags(&args[1..])?),
        Some("demo") => demo(),
        _ => Err(PpcError::InvalidArgument(
            "missing or unknown subcommand".into(),
        )),
    }
}

/// Flags that stand alone (no value); everything else is `--key value`.
const BOOLEAN_FLAGS: &[&str] = &["pipeline", "replay", "json"];

/// Parse `--key value` pairs (and bare boolean flags).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let key = key
            .strip_prefix("--")
            .ok_or_else(|| PpcError::InvalidArgument(format!("expected --flag, got '{key}'")))?;
        if BOOLEAN_FLAGS.contains(&key) {
            flags.insert(key.to_string(), "on".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| PpcError::InvalidArgument(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn catalog() -> String {
    let mut out = String::new();
    let mut t1 = Table::new(
        "EC2 instance types (paper Table 1)",
        &["name", "cores", "clock GHz", "memory GB", "$/hour"],
    );
    for it in EC2_TYPES {
        t1.row(row_for(&it));
    }
    let mut t2 = Table::new(
        "Azure instance types (paper Table 2)",
        &["name", "cores", "clock GHz", "memory GB", "$/hour"],
    );
    for it in AZURE_TYPES {
        t2.row(row_for(&it));
    }
    out.push_str(&t1.to_string());
    out.push('\n');
    out.push_str(&t2.to_string());
    out
}

fn row_for(it: &InstanceType) -> Vec<String> {
    vec![
        it.name.to_string(),
        it.cores.to_string(),
        format!("{:.2}", it.clock_ghz),
        format!("{:.1}", it.memory_bytes as f64 / 1e9),
        it.cost_per_hour.to_string(),
    ]
}

fn workload_for(app: &str) -> Result<(Vec<ppc::core::TaskSpec>, AppModel)> {
    match app {
        "cap3" => Ok((workload::cap3_sim_tasks(200, 200), AppModel::cap3())),
        "blast" => Ok((workload::blast_sim_tasks(64, 100), AppModel::DEFAULT)),
        "gtm" => Ok((workload::gtm_sim_tasks(264, 100_000), AppModel::DEFAULT)),
        other => Err(PpcError::InvalidArgument(format!(
            "unknown app '{other}' (want cap3|blast|gtm)"
        ))),
    }
}

fn advisor(app: &str, flags: &HashMap<String, String>) -> Result<String> {
    use ppc::core::Usd;
    let budget = flags.get("budget").map(|v| Usd::parse(v)).transpose()?;
    let deadline: Option<f64> = flags
        .get("deadline")
        .map(|v| {
            v.parse()
                .map_err(|_| PpcError::InvalidArgument("--deadline must be seconds".into()))
        })
        .transpose()?;

    let (tasks, model) = workload_for(app)?;
    let rows = ec2_instance_study(&tasks, model, 42);
    let mut fig =
        Figure::new(format!("Instance advisor: {app}"), "configuration", "value").with_precision(2);
    let mut time = Series::new("time (s)");
    let mut cost = Series::new("compute cost ($)");
    for r in &rows {
        time.push(r.label.clone(), r.makespan_seconds);
        cost.push(r.label.clone(), r.cost.compute_cost.as_f64());
    }
    fig.add(time);
    fig.add(cost);
    let fastest = rows
        .iter()
        .min_by(|a, b| a.makespan_seconds.total_cmp(&b.makespan_seconds))
        .expect("rows");
    let cheapest = rows
        .iter()
        .min_by_key(|r| r.cost.compute_cost)
        .expect("rows");
    let mut out = format!(
        "{fig}\nfastest: {}\ncheapest: {}",
        fastest.label, cheapest.label
    );

    // Constrained recommendation: fastest config within budget, and/or
    // cheapest config meeting the deadline (the paper's §3 methodology
    // turned into a decision).
    if let Some(budget) = budget {
        match rows
            .iter()
            .filter(|r| r.cost.compute_cost <= budget)
            .min_by(|a, b| a.makespan_seconds.total_cmp(&b.makespan_seconds))
        {
            Some(r) => out.push_str(&format!(
                "\nwithin budget {budget}: {} ({:.0} s, {})",
                r.label, r.makespan_seconds, r.cost.compute_cost
            )),
            None => out.push_str(&format!(
                "\nwithin budget {budget}: no configuration qualifies"
            )),
        }
    }
    if let Some(deadline) = deadline {
        match rows
            .iter()
            .filter(|r| r.makespan_seconds <= deadline)
            .min_by_key(|r| r.cost.compute_cost)
        {
            Some(r) => out.push_str(&format!(
                "\nmeeting {deadline:.0} s deadline: {} ({:.0} s, {})",
                r.label, r.makespan_seconds, r.cost.compute_cost
            )),
            None => out.push_str(&format!(
                "\nmeeting {deadline:.0} s deadline: no configuration qualifies"
            )),
        }
    }
    Ok(out)
}

fn simulate_cmd(flags: HashMap<String, String>) -> Result<String> {
    let app = flags.get("app").map(String::as_str).unwrap_or("cap3");
    let instance_name = flags.get("instance").map(String::as_str).unwrap_or("HCXL");
    let itype = InstanceType::by_name(instance_name).ok_or_else(|| {
        PpcError::InvalidArgument(format!("unknown instance type '{instance_name}'"))
    })?;
    let parse = |key: &str, default: usize| -> Result<usize> {
        match flags.get(key) {
            Some(v) => v
                .parse()
                .map_err(|_| PpcError::InvalidArgument(format!("--{key} must be a number"))),
            None => Ok(default),
        }
    };
    let n_instances = parse("instances", 2)?;
    let workers = parse("workers", itype.cores)?;
    let n_files = parse("files", 64)?;

    let (mut tasks, model) = workload_for(app)?;
    tasks.truncate(n_files);
    if tasks.len() < n_files {
        let base = tasks.clone();
        while tasks.len() < n_files {
            let mut extra = workload::replicate(&base, 2);
            tasks.append(&mut extra);
        }
        tasks.truncate(n_files);
    }
    let cluster = Cluster::provision(itype, n_instances, workers);
    let cfg = ppc::classic::sim::SimConfig::ec2().with_app(model);
    let ctx = ppc::exec::RunContext::new(&cluster);
    let report = ppc::classic::simulate(&ctx, &tasks, &cfg);
    let cost = cluster.cost(report.summary.makespan_seconds);
    Ok(format!(
        "{app} x {} files on {}:\n  makespan        : {:.1} s\n  compute cost    : {}\n  amortized cost  : {}\n  queue requests  : {}\n  bytes via cloud : {}",
        tasks.len(),
        cluster.label(),
        report.summary.makespan_seconds,
        cost.compute_cost,
        cost.amortized_cost,
        report.queue_requests,
        report.summary.remote_bytes,
    ))
}

/// Run the same workload through all three paradigms on one fleet via the
/// paradigm-generic `Engine` trait — the paper's Table 3 comparison in one
/// command.
fn compare_cmd(flags: HashMap<String, String>) -> Result<String> {
    if flags.contains_key("pipeline") {
        return compare_pipeline(&flags);
    }
    let app = flags
        .get("app")
        .map(String::as_str)
        .ok_or_else(|| PpcError::InvalidArgument("compare needs --app (or --pipeline)".into()))?;
    let n_files = parse_files(&flags)?;
    let (mut tasks, model) = workload_for(app)?;
    tasks.truncate(n_files);
    let cluster = Cluster::provision(ppc::compute::instance::EC2_HCXL, 4, 8);
    let ctx = compare_context(&cluster, &flags)?;
    let mut engines: Vec<Box<dyn ppc::exec::Engine>> = vec![
        Box::new(ppc::classic::ClassicEngine {
            sim: ppc::classic::SimConfig::ec2().with_app(model),
            ..Default::default()
        }),
        Box::new(ppc::mapreduce::HadoopEngine {
            sim: ppc::mapreduce::HadoopSimConfig {
                app: model,
                ..Default::default()
            },
            ..Default::default()
        }),
        Box::new(ppc::dryad::DryadEngine {
            sim: ppc::dryad::DryadSimConfig {
                app: model,
                ..Default::default()
            },
            ..Default::default()
        }),
    ];
    if let Some(only) = engine_filter(&flags)? {
        engines.retain(|e| e.name() == only);
    }
    let mut table = Table::new(
        format!("{app} x {} files on {}", tasks.len(), cluster.label()),
        &["paradigm", "makespan (s)", "attempts", "compute cost"],
    );
    for engine in engines {
        let report = engine.simulate(&ctx, &tasks);
        table.row(vec![
            engine.name().to_string(),
            format!("{:.1}", report.summary.makespan_seconds),
            report.total_attempts.to_string(),
            report
                .cost
                .map(|c| c.compute_cost.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    Ok(table.to_string())
}

/// Resolve `--engine <name>` through the facade's single lookup
/// ([`ppc::engine_by_name`]); `None` when the flag is absent.
fn engine_filter(flags: &HashMap<String, String>) -> Result<Option<String>> {
    match flags.get("engine") {
        None => Ok(None),
        Some(name) => {
            let engine = ppc::engine_by_name(name).ok_or_else(|| {
                PpcError::InvalidArgument(format!(
                    "unknown engine '{name}' (want classic|mapreduce|dryad)"
                ))
            })?;
            Ok(Some(engine.name().to_string()))
        }
    }
}

fn parse_files(flags: &HashMap<String, String>) -> Result<usize> {
    match flags.get("files") {
        Some(v) => v
            .parse()
            .map_err(|_| PpcError::InvalidArgument(format!("bad --files: '{v}'"))),
        None => Ok(64),
    }
}

/// Shared `--gray` / `--hedge` context setup for both compare modes:
/// `--gray F` makes worker 0 silently compute F times slower on every
/// paradigm; `--hedge on` counters it with the shared resilience layer.
fn compare_context(
    cluster: &Cluster,
    flags: &HashMap<String, String>,
) -> Result<ppc::exec::RunContext> {
    let gray: Option<f64> = flags
        .get("gray")
        .map(|v| {
            v.parse()
                .map_err(|_| PpcError::InvalidArgument(format!("bad --gray: '{v}'")))
        })
        .transpose()?;
    let hedge = match flags.get("hedge").map(String::as_str) {
        None | Some("off") => false,
        Some("on") => true,
        Some(other) => {
            return Err(PpcError::InvalidArgument(format!(
                "bad --hedge: '{other}' (want on|off)"
            )))
        }
    };
    let mut ctx = ppc::exec::RunContext::new(cluster).with_seed(42);
    if let Some(factor) = gray {
        ctx = ctx.with_schedule(std::sync::Arc::new(
            ppc::chaos::FaultSchedule::new(42).degrade(0, factor, 0.0, 1e9),
        ));
    }
    if hedge {
        ctx = ctx.with_resilience(ppc::resilience::ResiliencePolicy::hedged(
            ppc::resilience::HedgeConfig::quantile(30.0),
        ));
    }
    Ok(ctx)
}

/// Drive the Cap3 → BLAST → GTM workflow through all three paradigms —
/// the multi-stage counterpart of `compare --app`, surfacing the
/// inter-stage materialization each paradigm pays at every stage barrier.
fn compare_pipeline(flags: &HashMap<String, String>) -> Result<String> {
    let n_files = parse_files(flags)?;
    let wf = ppc::apps::pipeline::bio_pipeline_sim(n_files);
    let cluster = Cluster::provision(ppc::compute::instance::EC2_HCXL, 4, 8);
    let ctx = compare_context(&cluster, flags)?;
    let stage_names: Vec<&str> = wf.stages.iter().map(|s| s.name.as_str()).collect();
    let mut table = Table::new(
        format!(
            "pipeline {} ({}) x {} files on {}",
            wf.name,
            stage_names.join(" -> "),
            n_files,
            cluster.label()
        ),
        &[
            "paradigm",
            "makespan (s)",
            "materialize (s)",
            "attempts",
            "compute cost",
        ],
    );
    let mut engines = ppc::engines();
    if let Some(only) = engine_filter(flags)? {
        engines.retain(|e| e.name() == only);
    }
    for engine in engines {
        let report = engine.simulate_workflow(&ctx, &wf)?;
        table.row(vec![
            engine.name().to_string(),
            format!("{:.1}", report.makespan_seconds),
            format!("{:.1}", report.materialize_s),
            report.total_attempts().to_string(),
            report
                .cost
                .map(|c| c.compute_cost.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    Ok(table.to_string())
}

/// `ppc serve`: the multi-tenant job-service front door. The default mode
/// stands up a native [`ppc::serve::JobService`] over real engines, feeds
/// it a burst of modeled jobs from three tenants, and drains it; `--replay`
/// instead replays a deterministic closed-loop submission trace through
/// the DES-backed service simulation (thousands of jobs, elastic-capable).
fn serve_cmd(flags: HashMap<String, String>) -> Result<String> {
    if flags.contains_key("replay") {
        return serve_replay(&flags);
    }
    use ppc::serve::{JobService, JobSpec, ServiceConfig, TenantSpec};

    let engine_names = flags
        .get("engines")
        .map(String::as_str)
        .unwrap_or("classic,mapreduce,dryad");
    let mut engines: Vec<Box<dyn ppc::exec::Engine>> = Vec::new();
    for name in engine_names.split(',') {
        let name = name.trim();
        engines.push(ppc::engine_by_name(name).ok_or_else(|| {
            PpcError::InvalidArgument(format!(
                "unknown engine '{name}' (want classic|mapreduce|dryad)"
            ))
        })?);
    }
    let n_jobs = parse_count(&flags, "jobs", 24)?;

    let cfg = ServiceConfig::new(vec![
        TenantSpec::new("cap3-lab", 2),
        TenantSpec::new("blast-lab", 1),
        TenantSpec::new("gtm-lab", 1),
    ]);
    let mut svc = JobService::new(cfg, engines)?;
    let tenants = ["cap3-lab", "blast-lab", "gtm-lab"];
    let engine_names: Vec<String> = engine_names
        .split(',')
        .map(|n| n.trim().to_string())
        .collect();
    for i in 0..n_jobs {
        let tenant = tenants[i % tenants.len()];
        let engine = &engine_names[i % engine_names.len()];
        // Mix of sizes: every fourth job is a big one.
        let (tasks, task_s) = if i % 4 == 3 { (32, 60.0) } else { (8, 20.0) };
        svc.submit(JobSpec::modeled(tenant, engine, tasks, task_s))?;
    }
    let cluster = Cluster::provision(ppc::compute::instance::EC2_HCXL, 4, 8);
    let report = svc.drain(&ppc::exec::RunContext::new(&cluster).with_seed(42))?;
    if flags.contains_key("json") {
        return Ok(report.to_json().to_string());
    }
    Ok(render_serve(&report))
}

/// `ppc serve --replay`: the deterministic closed-loop load generator.
fn serve_replay(flags: &HashMap<String, String>) -> Result<String> {
    use ppc::serve::{simulate_serve, ServeFleet, ServeSimConfig, TenantLoad, TenantSpec};

    let clients = parse_count(flags, "clients", 20)?;
    let jobs = parse_count(flags, "jobs", 25)?;
    let instances = parse_count(flags, "instances", 8)?;
    let seed = parse_count(flags, "seed", 4242)? as u64;
    let think: f64 = match flags.get("think") {
        Some(v) => v
            .parse()
            .map_err(|_| PpcError::InvalidArgument(format!("bad --think: '{v}'")))?,
        None => 10.0,
    };

    let mk = |name: &str, weight| {
        let mut load = TenantLoad::new(TenantSpec::new(name, weight), clients as u32, jobs as u32);
        load.think_s = think;
        load
    };
    let cfg = ServeSimConfig::new(
        ppc::compute::instance::EC2_HCXL,
        ServeFleet::Fixed {
            instances: instances as u32,
        },
        vec![mk("cap3-lab", 2), mk("blast-lab", 1), mk("gtm-lab", 1)],
    );
    let ctx = ppc::exec::RunContext::local().with_seed(seed);
    let run = simulate_serve(&ctx, &cfg);
    if flags.contains_key("json") {
        return Ok(run.report.to_json().to_string());
    }
    Ok(render_serve(&run.report))
}

fn parse_count(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize> {
    match flags.get(key) {
        Some(v) => v
            .parse()
            .map_err(|_| PpcError::InvalidArgument(format!("bad --{key}: '{v}'"))),
        None => Ok(default),
    }
}

/// Render a serve report: one headline block, one per-tenant table.
fn render_serve(report: &ppc::serve::ServeReport) -> String {
    let mut table = Table::new(
        format!(
            "{}: {} submitted over {:.0} s",
            report.platform, report.submitted, report.horizon_s
        ),
        &[
            "tenant",
            "weight",
            "submitted",
            "rejected",
            "done",
            "p50 (s)",
            "p99 (s)",
            "busy (s)",
            "bill",
        ],
    );
    for t in &report.tenants {
        table.row(vec![
            t.tenant.clone(),
            t.weight.to_string(),
            t.submitted.to_string(),
            t.rejected.to_string(),
            t.completed.to_string(),
            format!("{:.1}", t.latency_p50_s),
            format!("{:.1}", t.latency_p99_s),
            format!("{:.0}", t.busy_seconds),
            t.cost.compute_cost.to_string(),
        ]);
    }
    format!(
        "{table}\njob latency p50/p95/p99 : {:.1} / {:.1} / {:.1} s\nrejection rate          : {:.2}%\nfairness (Jain)         : {:.4}\nfleet                   : {} instances, {} billed hours, {:.0}% utilized, {} compute",
        report.latency_p50_s,
        report.latency_p95_s,
        report.latency_p99_s,
        report.rejection_rate * 100.0,
        report.fairness_jain,
        report.fleet.instances_launched,
        report.fleet.billed_hours,
        report.fleet.utilization * 100.0,
        report.fleet.cost.compute_cost,
    )
}

fn demo() -> Result<String> {
    use ppc::apps::cap3::Cap3Executor;
    use ppc::apps::workload::cap3_native_inputs;
    use ppc::classic::spec::JobSpec;
    use ppc::classic::{run as classic_run, ClassicConfig};
    use ppc::compute::instance::EC2_HCXL;
    use ppc::exec::RunContext;
    use ppc::queue::service::QueueService;
    use ppc::storage::service::StorageService;
    use std::sync::Arc;

    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 1, 4);
    let inputs = cap3_native_inputs(8, 30, 900, 123);
    let job = JobSpec::new("cli-demo", inputs.iter().map(|(t, _)| t.clone()).collect());
    storage.create_bucket(&job.input_bucket)?;
    for (spec, payload) in &inputs {
        storage.put(&job.input_bucket, &spec.input_key, payload.clone())?;
    }
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        Arc::new(Cap3Executor::new()),
        &ClassicConfig::default(),
    )?;
    Ok(format!(
        "assembled {}/{} FASTA files natively in {:.2} s on {} workers ({} queue requests)",
        report.summary.tasks,
        inputs.len(),
        report.summary.makespan_seconds,
        report.summary.cores,
        report.queue_requests
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn catalog_prints_both_tables() {
        let out = run(&s(&["catalog"])).unwrap();
        assert!(out.contains("HCXL"));
        assert!(out.contains("azure-small"));
        assert!(out.contains("0.68$"));
    }

    #[test]
    fn advisor_names_winners() {
        let out = run(&s(&["advisor", "gtm"])).unwrap();
        assert!(out.contains("fastest: HM4XL"), "{out}");
        assert!(out.contains("cheapest: HCXL"), "{out}");
    }

    #[test]
    fn advisor_honors_budget_and_deadline() {
        // HM4XL is fastest but costs $4; with a $2 budget the advisor must
        // pick something cheaper.
        let out = run(&s(&["advisor", "cap3", "--budget", "2.00"])).unwrap();
        assert!(out.contains("within budget 2.00$: HCXL"), "{out}");
        // An impossible budget is reported, not ignored.
        let out = run(&s(&["advisor", "cap3", "--budget", "0.01"])).unwrap();
        assert!(out.contains("no configuration qualifies"), "{out}");
        // Generous deadline: the cheapest qualifying config wins.
        let out = run(&s(&["advisor", "cap3", "--deadline", "100000"])).unwrap();
        assert!(out.contains("deadline: HCXL"), "{out}");
        // Bad values error cleanly.
        assert!(run(&s(&["advisor", "cap3", "--budget", "lots"])).is_err());
        assert!(run(&s(&["advisor", "cap3", "--deadline", "soon"])).is_err());
    }

    #[test]
    fn simulate_honors_flags() {
        let out = run(&s(&[
            "simulate",
            "--app",
            "cap3",
            "--instance",
            "HM4XL",
            "--instances",
            "4",
            "--files",
            "32",
        ]))
        .unwrap();
        assert!(out.contains("cap3 x 32 files"), "{out}");
        assert!(out.contains("HM4XL - 4 x 8"), "{out}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&s(&["simulate", "--instance", "m5.large"])).is_err());
        assert!(run(&s(&["simulate", "--files", "abc"])).is_err());
        assert!(run(&s(&["advisor", "unknown-app"])).is_err());
        assert!(parse_flags(&s(&["--files"])).is_err());
        assert!(parse_flags(&s(&["files", "3"])).is_err());
    }

    #[test]
    fn compare_pipeline_prints_all_paradigms() {
        let out = run(&s(&["compare", "--pipeline", "--files", "16"])).unwrap();
        assert!(out.contains("assemble -> annotate -> interpolate"), "{out}");
        for paradigm in ["classic", "mapreduce", "dryad"] {
            assert!(out.contains(paradigm), "missing {paradigm}: {out}");
        }
        assert!(out.contains("materialize (s)"), "{out}");
        // Hedging under a gray worker still parses and runs.
        let out = run(&s(&[
            "compare",
            "--pipeline",
            "--files",
            "8",
            "--gray",
            "30",
            "--hedge",
            "on",
        ]))
        .unwrap();
        assert!(out.contains("dryad"), "{out}");
    }

    #[test]
    fn compare_without_app_or_pipeline_errors() {
        assert!(run(&s(&["compare"])).is_err());
        assert!(run(&s(&["compare", "--hedge", "sideways"])).is_err());
    }

    #[test]
    fn demo_runs_end_to_end() {
        let out = run(&s(&["demo"])).unwrap();
        assert!(out.contains("assembled 8/8"), "{out}");
    }

    #[test]
    fn compare_engine_filter_dispatches_by_name() {
        let out = run(&s(&[
            "compare", "--app", "cap3", "--files", "16", "--engine", "dryad",
        ]))
        .unwrap();
        assert!(out.contains("dryad"), "{out}");
        assert!(!out.contains("classic"), "filter leaked: {out}");
        assert!(run(&s(&["compare", "--app", "cap3", "--engine", "hadoop2"])).is_err());
        assert!(run(&s(&["compare", "--pipeline", "--engine", "hadoop2"])).is_err());
    }

    #[test]
    fn serve_native_runs_all_tenants() {
        let out = run(&s(&["serve", "--jobs", "12"])).unwrap();
        for tenant in ["cap3-lab", "blast-lab", "gtm-lab"] {
            assert!(out.contains(tenant), "missing {tenant}: {out}");
        }
        assert!(out.contains("fairness (Jain)"), "{out}");
        assert!(out.contains("12 submitted"), "{out}");
        // Engine set dispatch goes through ppc::engine_by_name.
        assert!(run(&s(&["serve", "--engines", "classic,hadoop2"])).is_err());
        let out = run(&s(&["serve", "--jobs", "6", "--engines", "classic"])).unwrap();
        assert!(out.contains("6 submitted"), "{out}");
    }

    #[test]
    fn serve_replay_reports_and_emits_versioned_json() {
        let out = run(&s(&[
            "serve",
            "--replay",
            "--clients",
            "4",
            "--jobs",
            "3",
            "--instances",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("serve-sim"), "{out}");
        assert!(out.contains("job latency p50/p95/p99"), "{out}");

        let json = run(&s(&[
            "serve",
            "--replay",
            "--clients",
            "4",
            "--jobs",
            "3",
            "--instances",
            "2",
            "--json",
        ]))
        .unwrap();
        let parsed = ppc::core::json::Json::parse(&json).unwrap();
        assert_eq!(parsed.field("schema").unwrap().as_i64().unwrap(), 2);
        // 3 tenants x 4 clients x 3 jobs each.
        assert_eq!(parsed.field("submitted").unwrap().as_u64().unwrap(), 36);
        // Same flags, same seed → bit-identical replay.
        let again = run(&s(&[
            "serve",
            "--replay",
            "--clients",
            "4",
            "--jobs",
            "3",
            "--instances",
            "2",
            "--json",
        ]))
        .unwrap();
        assert_eq!(json, again);
    }
}
