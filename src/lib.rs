//! # ppc — pleasingly parallel cloud frameworks
//!
//! A Rust reproduction of *"Cloud Computing Paradigms for Pleasingly
//! Parallel Biomedical Applications"* (Gunarathne, Wu, Choi, Bae, Qiu —
//! HPDC 2010): three biomedical applications (Cap3 sequence assembly,
//! BLAST protein search, GTM Interpolation) running on three cloud
//! execution paradigms (queue-driven Classic Cloud task farming, Hadoop
//! MapReduce, DryadLINQ DAG execution), all implemented from scratch.
//!
//! This crate is the facade: it re-exports every workspace crate under one
//! namespace so examples and downstream users can write `ppc::classic::…`.
//!
//! Start with the `examples/` directory:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example blast_search
//! cargo run --release --example gtm_visualize
//! cargo run --release --example fault_tolerance
//! cargo run --release --example instance_picker
//! ```
//!
//! and regenerate the paper's evaluation with
//! `cargo run --release -p ppc-bench --bin all`.

pub use ppc_apps as apps;
pub use ppc_autoscale as autoscale;
pub use ppc_bio as bio;
pub use ppc_chaos as chaos;
pub use ppc_classic as classic;
pub use ppc_compute as compute;
pub use ppc_core as core;
pub use ppc_des as des;
pub use ppc_dryad as dryad;
pub use ppc_gtm as gtm;
pub use ppc_hdfs as hdfs;
pub use ppc_mapreduce as mapreduce;
pub use ppc_queue as queue;
pub use ppc_storage as storage;
pub use ppc_trace as trace;
