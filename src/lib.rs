//! # ppc — pleasingly parallel cloud frameworks
//!
//! A Rust reproduction of *"Cloud Computing Paradigms for Pleasingly
//! Parallel Biomedical Applications"* (Gunarathne, Wu, Choi, Bae, Qiu —
//! HPDC 2010): three biomedical applications (Cap3 sequence assembly,
//! BLAST protein search, GTM Interpolation) running on three cloud
//! execution paradigms (queue-driven Classic Cloud task farming, Hadoop
//! MapReduce, DryadLINQ DAG execution), all implemented from scratch.
//!
//! This crate is the facade: it re-exports every workspace crate under one
//! namespace so examples and downstream users can write `ppc::classic::…`.
//!
//! Start with the `examples/` directory:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example blast_search
//! cargo run --release --example gtm_visualize
//! cargo run --release --example fault_tolerance
//! cargo run --release --example instance_picker
//! ```
//!
//! and regenerate the paper's evaluation with
//! `cargo run --release -p ppc-bench --bin all`.
//!
//! Every paradigm is driven through the [`exec`] harness: build a
//! [`exec::RunContext`] (fleet layout + seed + fault schedule + tracing),
//! then call the paradigm's `run`/`simulate` pair — or hold all three
//! behind the paradigm-generic [`exec::Engine`] trait via [`engines`].

pub use ppc_apps as apps;
pub use ppc_autoscale as autoscale;
pub use ppc_bio as bio;
pub use ppc_chaos as chaos;
pub use ppc_classic as classic;
pub use ppc_compute as compute;
pub use ppc_core as core;
pub use ppc_des as des;
pub use ppc_dryad as dryad;
pub use ppc_exec as exec;
pub use ppc_gtm as gtm;
pub use ppc_hdfs as hdfs;
pub use ppc_mapreduce as mapreduce;
pub use ppc_queue as queue;
pub use ppc_resilience as resilience;
pub use ppc_serve as serve;
pub use ppc_storage as storage;
pub use ppc_trace as trace;
pub use ppc_workflow as workflow;

/// All three paradigms behind the uniform [`exec::Engine`] interface,
/// with default configurations — the paper's Table 1 lineup, iterable:
///
/// ```
/// use ppc::core::task::{ResourceProfile, TaskSpec};
/// let cluster = ppc::compute::cluster::Cluster::provision(
///     ppc::compute::instance::EC2_HCXL, 4, 8);
/// let ctx = ppc::exec::RunContext::new(&cluster).with_seed(7);
/// let tasks: Vec<TaskSpec> = (0..32)
///     .map(|i| TaskSpec::new(i, "cap3", format!("in/{i}"), ResourceProfile::cpu_bound(30.0)))
///     .collect();
/// for engine in ppc::engines() {
///     let report = engine.simulate(&ctx, &tasks);
///     assert!(report.is_complete(), "{} dropped tasks", engine.name());
/// }
/// ```
pub fn engines() -> Vec<Box<dyn exec::Engine>> {
    vec![
        Box::new(classic::ClassicEngine::default()),
        Box::new(mapreduce::HadoopEngine::default()),
        Box::new(dryad::DryadEngine::default()),
    ]
}

/// One paradigm by its [`exec::Engine::name`] (`"classic"`, `"mapreduce"`,
/// `"dryad"`), with its default configuration; `None` for anything else.
/// The single lookup used by CLI dispatch and service engine sets, so an
/// engine rename cannot leave a stale open-coded match behind.
///
/// ```
/// assert!(ppc::engine_by_name("dryad").is_some());
/// assert!(ppc::engine_by_name("condor").is_none());
/// ```
pub fn engine_by_name(name: &str) -> Option<Box<dyn exec::Engine>> {
    engines().into_iter().find(|e| e.name() == name)
}
