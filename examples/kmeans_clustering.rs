//! Iterative MapReduce: k-means clustering of chemical fingerprints.
//!
//! The paper's conclusion announces "a fully-fledged MapReduce framework
//! with iterative-MapReduce support" as future work (Twister/TwisterAzure);
//! `ppc::mapreduce::iterative` implements that model, and this example runs
//! its canonical workload: k-means, with the static point set cached across
//! iterations and only the centroids re-broadcast each round.
//!
//! ```bash
//! cargo run --release --example kmeans_clustering
//! ```

use ppc::core::rng::Pcg32;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::iterative::{
    cache_splits, encode_block, IterativeJob, KMeansCombiner, KMeansMapper, KMeansReducer,
};
use ppc::workflow::run_fixed_point;

fn main() -> ppc::core::Result<()> {
    // Synthetic "compound" clusters in a 2-D property space, spread over
    // 8 HDFS blocks on a 4-node mini cluster.
    let mut rng = Pcg32::new(77);
    let true_centers = [[1.0, 1.0], [9.0, 2.0], [5.0, 9.0], [12.0, 10.0]];
    let fs = MiniHdfs::with_defaults(4);
    let mut paths = Vec::new();
    let mut total_points = 0;
    for file in 0..8 {
        let points: Vec<Vec<f64>> = (0..250)
            .map(|_| {
                let c = &true_centers[rng.next_below(4) as usize];
                vec![
                    c[0] + rng.normal_with(0.0, 0.6),
                    c[1] + rng.normal_with(0.0, 0.6),
                ]
            })
            .collect();
        total_points += points.len();
        let path = format!("/kmeans/block{file}");
        fs.create(&path, &encode_block(&points), None)?;
        paths.push(path);
    }
    println!(
        "{total_points} points in {} HDFS blocks on {} datanodes",
        paths.len(),
        fs.n_nodes()
    );

    // Imperfect but spread initial guesses (plain k-means needs them:
    // clumped seeds converge to a local optimum that splits one cluster).
    let initial = vec![
        vec![2.0, 2.0],
        vec![7.0, 3.0],
        vec![4.0, 7.0],
        vec![10.0, 8.0],
    ];
    let job = IterativeJob::new("kmeans", paths).with_max_iterations(40);
    let cache = cache_splits(&fs, &job.input_paths)?;
    let (centroids, report) = run_fixed_point(
        &cache,
        &job.fixed_point(),
        &KMeansMapper,
        &KMeansReducer,
        &KMeansCombiner { tolerance: 1e-9 },
        initial,
    )?;

    println!(
        "\nconverged = {} after {} iterations ({} cached split reads avoided re-fetching HDFS)",
        report.converged, report.iterations, report.cache_hits
    );
    println!("\nrecovered centroids vs true centers:");
    for t in &true_centers {
        let (best, dist) = centroids
            .iter()
            .map(|c| {
                let d = ((c[0] - t[0]).powi(2) + (c[1] - t[1]).powi(2)).sqrt();
                (c, d)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("centroids non-empty");
        println!(
            "  true ({:5.2}, {:5.2})  ->  found ({:5.2}, {:5.2})  err {:.3}",
            t[0], t[1], best[0], best[1], dist
        );
        assert!(dist < 0.3, "centroid recovery failed");
    }
    Ok(())
}
