//! Elastic fleets: autoscale a Classic Cloud worker fleet through a bursty
//! Cap3 assembly workload.
//!
//! Two runs of the same story:
//!
//! 1. **Native** — real worker threads assembling real FASTA fragments,
//!    with `ppc-autoscale` watching the scheduling queue and launching /
//!    draining workers as two arrival waves pass through. Time constants
//!    are compressed (billing "hours" are fractions of a second) so the
//!    whole elastic lifecycle fits in a terminal session.
//! 2. **Simulated** — the paper-scale twin on the DES engine: the same
//!    controller at full-size time constants, printing the per-worker
//!    ASCII Gantt chart next to the fleet-size timeline so you can watch
//!    capacity track demand.
//!
//! ```bash
//! cargo run --release --example autoscale
//! ```

use ppc::apps::cap3::Cap3Executor;
use ppc::apps::workload::{cap3_native_inputs, cap3_sim_tasks_inhomogeneous};
use ppc::autoscale::{AutoscaleConfig, Policy};
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::classic::{simulate as classic_simulate, SimConfig};
use ppc::compute::instance::EC2_HCXL;
use ppc::compute::model::AppModel;
use ppc::exec::RunContext;
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::sync::Arc;

fn main() -> ppc::core::Result<()> {
    native()?;
    simulated();
    Ok(())
}

/// Real threads, real assembly, compressed clock.
fn native() -> ppc::core::Result<()> {
    println!("=== native: elastic Cap3 on worker threads (compressed clock) ===\n");
    let storage = StorageService::in_memory();
    let queues = QueueService::new();

    // 24 fragment files in two waves: half at t=0, half 400 ms later.
    let inputs = cap3_native_inputs(24, 120, 2400, 7);
    let arrivals: Vec<f64> = (0..inputs.len())
        .map(|i| if i < 12 { 0.0 } else { 0.4 })
        .collect();
    let job = JobSpec::new(
        "autoscale-cap3",
        inputs.iter().map(|(t, _)| t.clone()).collect(),
    );
    storage.create_bucket(&job.input_bucket)?;
    for (spec, payload) in &inputs {
        storage.put(&job.input_bucket, &spec.input_key, payload.clone())?;
    }

    // Millisecond-scale controller: tick every 10 ms, bill in 200 ms
    // "hours", retire only within 50 ms of a billing boundary.
    let autoscale = AutoscaleConfig {
        policy: Policy::TargetBacklog { per_worker: 4.0 },
        min_workers: 1,
        max_workers: 4,
        interval_s: 0.01,
        scale_up_cooldown_s: 0.03,
        scale_down_cooldown_s: 0.02,
        warmup_s: 0.0,
        billing_aware: true,
        billing_window_s: 0.05,
        billing_hour_s: 0.2,
    };
    let report = classic_run(
        &RunContext::elastic(EC2_HCXL, autoscale, arrivals.clone()),
        &storage,
        &queues,
        &job,
        Arc::new(Cap3Executor::new()),
        &ClassicConfig::default(),
    )?;
    assert!(report.is_complete());
    let fleet = report.fleet.as_ref().expect("elastic run reports a fleet");

    println!("platform     : {}", report.summary.platform);
    println!("tasks        : {} assembled", report.summary.tasks);
    println!(
        "makespan     : {:.3} s (wall)",
        report.summary.makespan_seconds
    );
    println!(
        "fleet        : peak {} / mean {:.2} workers, {} billed hours ({:.2} wasted)",
        fleet.peak_fleet(),
        fleet.mean_fleet(),
        fleet.billed_hours,
        fleet.wasted_hours,
    );
    println!("\nfleet size over time (each row = one billed instance):");
    print!("{}", fleet.timeline.render_ascii(64, fleet.horizon_s));
    Ok(())
}

/// The paper-scale twin on the DES engine, with the per-worker Gantt.
fn simulated() {
    println!("\n=== simulated: paper-scale twin on the DES engine ===\n");
    let tasks = cap3_sim_tasks_inhomogeneous(96, 400, 0.6, 11);
    let arrivals: Vec<f64> = (0..tasks.len())
        .map(|i| if i < 48 { 0.0 } else { 3000.0 })
        .collect();
    let autoscale = AutoscaleConfig {
        policy: Policy::TargetBacklog { per_worker: 4.0 },
        min_workers: 1,
        max_workers: 8,
        interval_s: 15.0,
        scale_up_cooldown_s: 60.0,
        scale_down_cooldown_s: 120.0,
        warmup_s: 45.0,
        billing_aware: true,
        billing_window_s: 180.0,
        billing_hour_s: 900.0,
    };
    let cfg = SimConfig {
        trace: true,
        ..SimConfig::ec2().with_app(AppModel::cap3())
    };
    let report = classic_simulate(
        &RunContext::elastic(EC2_HCXL, autoscale, arrivals.clone()),
        &tasks,
        &cfg,
    );
    assert!(report.is_complete());
    let fleet = report.fleet.as_ref().expect("elastic run reports a fleet");

    println!("platform     : {}", report.summary.platform);
    println!(
        "makespan     : {:.0} s (virtual)",
        report.summary.makespan_seconds
    );
    println!(
        "fleet        : peak {} / mean {:.2} instances, {} billed hours ({:.2} wasted), {}",
        fleet.peak_fleet(),
        fleet.mean_fleet(),
        fleet.billed_hours,
        fleet.wasted_hours,
        fleet.cost.compute_cost,
    );

    println!("\nper-worker Gantt (busy = #):");
    let gantt = report.timeline.expect("trace: true records a timeline");
    print!("{}", gantt.render_ascii(64));
    println!("\nfleet size over time (billed instances):");
    print!("{}", fleet.timeline.render_ascii(64, fleet.horizon_s));
}
