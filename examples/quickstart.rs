//! Quickstart: assemble DNA fragment files on the Classic Cloud framework.
//!
//! The end-to-end pipeline of the paper's Figure 1 on your own machine:
//! upload FASTA fragment files to (in-process) cloud storage, submit one
//! task per file to the scheduling queue, let a fleet of worker threads
//! pull-download-assemble-upload-delete, and read back the contigs.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ppc::apps::cap3::Cap3Executor;
use ppc::apps::workload::cap3_native_inputs;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::EC2_HCXL;
use ppc::exec::RunContext;
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::sync::Arc;

fn main() -> ppc::core::Result<()> {
    // 1. Provision the "cloud": an object store, a queue service, and a
    //    (thread-backed) fleet of one HCXL instance with 8 workers.
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 1, 8);

    // 2. Generate 16 FASTA fragment files (each a shotgun read set from its
    //    own 1.2 kb genome) and upload them, as the paper assumes inputs
    //    "already present in the framework's preferred storage location".
    let inputs = cap3_native_inputs(16, 40, 1200, 7);
    let job = JobSpec::new(
        "quickstart-cap3",
        inputs.iter().map(|(t, _)| t.clone()).collect(),
    );
    storage.create_bucket(&job.input_bucket)?;
    for (spec, payload) in &inputs {
        storage.put(&job.input_bucket, &spec.input_key, payload.clone())?;
    }

    // 3. Run the job: the client fills the queue, workers drain it.
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        Arc::new(Cap3Executor::new()),
        &ClassicConfig::default(),
    )?;

    // 4. Inspect the results.
    println!("platform        : {}", report.summary.platform);
    println!(
        "tasks completed : {}/{}",
        report.summary.tasks,
        inputs.len()
    );
    println!(
        "makespan        : {:.2} s on {} workers",
        report.summary.makespan_seconds, report.summary.cores
    );
    println!("queue requests  : {}", report.queue_requests);
    println!("bytes through S3: {}", report.summary.remote_bytes);

    let first_out = storage.get(&job.output_bucket, &inputs[0].0.output_key)?;
    let contigs = ppc::bio::fasta::parse(&first_out)?;
    println!(
        "\nfirst file assembled into {} record(s); longest contig: {} bp",
        contigs.len(),
        contigs[0].len()
    );
    assert!(report.is_complete());
    Ok(())
}
