//! Hybrid cloud + local execution — the paper's §2.1.3 extension.
//!
//! "One interesting feature of the Classic Cloud framework is the ability
//! to extend it to use the local machines and clusters side by side with
//! the clouds ... one can start workers in computers outside of the cloud
//! to augment compute capacity."
//!
//! This example runs one Cap3 job with two fleets polling the same
//! scheduling queue — a rented EC2 HCXL instance and a local 8-core box —
//! while a third thread watches live progress through the monitoring
//! probe, then reports how the work split across fleets.
//!
//! ```bash
//! cargo run --release --example hybrid_cloud
//! ```

use ppc::apps::cap3::Cap3Executor;
use ppc::apps::workload::cap3_native_inputs;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc::exec::RunContext;
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() -> ppc::core::Result<()> {
    let storage = StorageService::in_memory();
    let queues = QueueService::new();

    let n_files = 48;
    let inputs = cap3_native_inputs(n_files, 35, 1000, 31);
    let job = JobSpec::new(
        "hybrid-cap3",
        inputs.iter().map(|(t, _)| t.clone()).collect(),
    );
    storage.create_bucket(&job.input_bucket)?;
    for (spec, payload) in &inputs {
        storage.put(&job.input_bucket, &spec.input_key, payload.clone())?;
    }

    // Fleet 0: the cloud (one HCXL, 8 workers). Fleet 1: the local box.
    let cloud = Cluster::provision(EC2_HCXL, 1, 8);
    let local = Cluster::provision(BARE_CAP3, 1, 4);
    println!(
        "fleets: cloud = {} ({} workers), local = {} ({} workers)",
        cloud.label(),
        8,
        local.label(),
        4
    );

    // Live progress via the monitoring probe.
    let probe = Arc::new(AtomicUsize::new(0));
    let config = ClassicConfig {
        progress: Some(probe.clone()),
        ..ClassicConfig::default()
    };
    let watcher_probe = probe.clone();
    let watcher = std::thread::spawn(move || {
        let mut last = 0;
        loop {
            let now = watcher_probe.load(Ordering::Relaxed);
            if now != last {
                println!("  progress: {now}/{n_files}");
                last = now;
            }
            if now >= n_files {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    });

    let report = classic_run(
        &RunContext::on_fleets(vec![cloud, local]),
        &storage,
        &queues,
        &job,
        Arc::new(Cap3Executor::new()),
        &config,
    )?;
    watcher.join().expect("watcher thread");

    println!(
        "\ncompleted {}/{} tasks in {:.2} s on {} combined workers",
        report.summary.tasks, n_files, report.summary.makespan_seconds, report.summary.cores
    );
    let split = &report.executions_per_fleet;
    println!(
        "work split: cloud completed {}, local completed {}",
        split[0], split[1]
    );
    assert!(report.is_complete());
    assert!(split[0] > 0 && split[1] > 0, "both fleets contributed");
    Ok(())
}
