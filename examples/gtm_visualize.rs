//! GTM Interpolation for chemical-structure visualization, DryadLINQ style.
//!
//! Trains a GTM on a small sample of (synthetic) PubChem-like fingerprints,
//! then pushes the out-of-sample blocks through a `DVec` `select` pipeline
//! — the paper's DryadLINQ pattern — and renders the 2-D embedding as an
//! ASCII density map.
//!
//! ```bash
//! cargo run --release --example gtm_visualize
//! ```

use ppc::apps::gtm::{decode_points, encode_points, GtmExecutor};
use ppc::apps::workload::gtm_native_inputs;
use ppc::core::exec::Executor;
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::dryad::linq::DVec;
use ppc::gtm::train::{train, TrainConfig};
use std::sync::Arc;

fn main() -> ppc::core::Result<()> {
    // Training sample + 8 out-of-sample blocks of 150 points each.
    let (sample, blocks) = gtm_native_inputs(8, 150, 60, 2024);
    println!(
        "training GTM on {} x {}-dim sample...",
        sample.rows(),
        sample.cols()
    );
    let model = Arc::new(train(
        &sample,
        &TrainConfig {
            grid_side: 9,
            rbf_side: 4,
            iterations: 15,
            lambda: 1e-3,
        },
    )?);
    println!(
        "trained: beta = {:.3}, log-likelihood {:.1} -> {:.1}",
        model.beta,
        model.log_likelihood.first().unwrap(),
        model.log_likelihood.last().unwrap()
    );

    // DryadLINQ-style distributed interpolation: the blocks are statically
    // partitioned across 4 "nodes", then a select runs the executable.
    let executor = GtmExecutor::new(model);
    let payloads: Vec<Vec<u8>> = blocks.into_iter().map(|(_, p)| p).collect();
    let coords = DVec::distribute(payloads, 4)
        .try_select(|payload| {
            let spec = TaskSpec::new(0, "gtm", "block", ResourceProfile::cpu_bound(0.0));
            executor.run(&spec, &payload)
        })?
        .collect();
    println!(
        "interpolated {} blocks over a {}-vertex DAG",
        coords.len(),
        8
    );

    // Render the combined embedding as a density map over [-1,1]^2.
    const W: usize = 56;
    const H: usize = 20;
    let mut grid = vec![vec![0u32; W]; H];
    let mut total = 0;
    for block in &coords {
        let m = decode_points(block)?;
        for i in 0..m.rows() {
            let x = ((m[(i, 0)] + 1.0) / 2.0 * (W - 1) as f64).round() as usize;
            let y = ((m[(i, 1)] + 1.0) / 2.0 * (H - 1) as f64).round() as usize;
            grid[y.min(H - 1)][x.min(W - 1)] += 1;
            total += 1;
        }
    }
    println!("\n{total} compounds in latent space (darker = denser):");
    let shades = [' ', '.', ':', 'o', 'O', '#', '@'];
    for row in &grid {
        let line: String = row
            .iter()
            .map(|&c| shades[(c as usize).min(shades.len() - 1)])
            .collect();
        println!("|{line}|");
    }

    // Round-trip sanity: re-encode and decode one block.
    let roundtrip = decode_points(&encode_points(&decode_points(&coords[0])?))?;
    assert_eq!(roundtrip.cols(), 2);
    Ok(())
}
