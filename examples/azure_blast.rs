//! AzureBlast, reconstructed — the related-work system the paper cites:
//! "AzureBlast presents a distributed BLAST implementation for Azure Cloud
//! infrastructure developed using Azure Queues, Tables and Blob Storage"
//! (§7). This example wires those same three services together: blobs hold
//! the query files and results, a queue drives the workers, and a table
//! keeps the durable job history an operator queries afterwards.
//!
//! ```bash
//! cargo run --release --example azure_blast
//! ```

use ppc::apps::blast::BlastExecutor;
use ppc::apps::workload::blast_native_inputs;
use ppc::bio::blast::BlastDb;
use ppc::bio::simulate::ProteinDbParams;
use ppc::classic::history::{record, runs_of, summary_of, RunRecord};
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::AZURE_LARGE;
use ppc::exec::RunContext;
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use ppc::storage::table::TableService;
use std::sync::Arc;

fn main() -> ppc::core::Result<()> {
    // The three Azure services.
    let blobs = StorageService::in_memory();
    let queues = QueueService::new();
    let tables = TableService::new();

    // One shared protein DB; three consecutive query batches ("runs").
    let (db_recs, _) = blast_native_inputs(
        1,
        1,
        &ProteinDbParams {
            n_families: 16,
            members_per_family: 2,
            len_min: 120,
            len_max: 260,
            divergence: 0.1,
        },
        7,
    );
    let db = Arc::new(BlastDb::build(db_recs, 3));
    println!(
        "database resident: {} sequences / ~{} KB",
        db.len(),
        db.resident_bytes() / 1024
    );

    let cluster = Cluster::provision(AZURE_LARGE, 2, 4);
    for run in 0..3 {
        let (_, inputs) = blast_native_inputs(
            6,
            6,
            &ProteinDbParams {
                n_families: 16,
                members_per_family: 2,
                len_min: 120,
                len_max: 260,
                divergence: 0.1,
            },
            7 ^ ((run as u64 + 1) << 32),
        );
        let job = JobSpec::new(
            format!("azureblast-run{run}"),
            inputs.iter().map(|(t, _)| t.clone()).collect(),
        );
        blobs.create_bucket(&job.input_bucket)?;
        for (spec, payload) in &inputs {
            blobs.put(&job.input_bucket, &spec.input_key, payload.clone())?;
        }
        let report = classic_run(
            &RunContext::new(&cluster),
            &blobs,
            &queues,
            &job,
            Arc::new(BlastExecutor::new(db.clone())),
            &ClassicConfig::default(),
        )?;
        println!(
            "run {run}: {} query files in {:.2} s ({} queue requests)",
            report.summary.tasks, report.summary.makespan_seconds, report.queue_requests
        );
        // Durable history entity, AzureBlast-style.
        record(
            &tables,
            &RunRecord::from_report("blast", format!("run-{run:04}"), &report),
        )?;
    }

    // The operator's view: query the table, not the blobs.
    println!("\njob history (from the table service):");
    for rec in runs_of(&tables, "blast")? {
        println!(
            "  {}  tasks={}  makespan={:.3}s  redundant={}  queue_reqs={}",
            rec.run_id,
            rec.tasks,
            rec.makespan_seconds,
            rec.redundant_executions,
            rec.queue_requests
        );
    }
    let stats = summary_of(&tables, "blast")?.expect("history exists");
    println!(
        "\nacross {} runs: mean makespan {:.3} s, CV {:.2}% (the paper's §3 sustained-performance view)",
        stats.n,
        stats.mean,
        stats.cv_percent()
    );
    assert_eq!(stats.n, 3);
    Ok(())
}
