//! BLAST on two paradigms: Classic Cloud task farm vs Hadoop MapReduce.
//!
//! Runs the same protein similarity searches through both frameworks and
//! verifies the outputs are byte-identical — the paper's premise that the
//! paradigms are interchangeable wrappers around the same executable.
//!
//! ```bash
//! cargo run --release --example blast_search
//! ```

use ppc::apps::blast::BlastExecutor;
use ppc::apps::workload::blast_native_inputs;
use ppc::bio::blast::BlastDb;
use ppc::bio::simulate::ProteinDbParams;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::EC2_HCXL;
use ppc::exec::RunContext;
use ppc::hdfs::fs::MiniHdfs;
use ppc::mapreduce::job::{ExecutableMapper, MapReduceJob};
use ppc::mapreduce::{run as hadoop_run, HadoopConfig};
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::sync::Arc;

fn main() -> ppc::core::Result<()> {
    // A shared NR-like database and 12 query files of 8 queries each.
    let (db_recs, inputs) = blast_native_inputs(
        12,
        8,
        &ProteinDbParams {
            n_families: 20,
            members_per_family: 3,
            len_min: 150,
            len_max: 350,
            divergence: 0.12,
        },
        99,
    );
    println!(
        "database: {} sequences, {} residues",
        db_recs.len(),
        db_recs.iter().map(|r| r.len()).sum::<usize>()
    );
    let db = Arc::new(BlastDb::build(db_recs, 3));
    let executor = Arc::new(BlastExecutor::new(db));

    // ---- Classic Cloud -----------------------------------------------------
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 1, 4);
    let job = JobSpec::new("blast", inputs.iter().map(|(t, _)| t.clone()).collect());
    storage.create_bucket(&job.input_bucket)?;
    for (spec, payload) in &inputs {
        storage.put(&job.input_bucket, &spec.input_key, payload.clone())?;
    }
    let classic = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        executor.clone(),
        &ClassicConfig::default(),
    )?;
    println!(
        "\nClassic Cloud: {} tasks in {:.2} s ({} queue requests)",
        classic.summary.tasks, classic.summary.makespan_seconds, classic.queue_requests
    );

    // ---- Hadoop MapReduce ----------------------------------------------------
    let fs = MiniHdfs::with_defaults(4);
    let mut paths = Vec::new();
    for (spec, payload) in &inputs {
        let path = format!("/in/{}", spec.input_key.replace('/', "_"));
        fs.create(&path, payload, None)?;
        paths.push(path);
    }
    let mr_job = MapReduceJob::map_only("blast", paths, "/out");
    let mapper = ExecutableMapper::new("blast", executor);
    let hadoop = hadoop_run(
        &RunContext::local(),
        &fs,
        &mr_job,
        &mapper,
        None,
        &HadoopConfig::default(),
    )?;
    println!(
        "Hadoop       : {} tasks in {:.2} s (locality {:.0}%)",
        hadoop.summary.tasks,
        hadoop.summary.makespan_seconds,
        100.0 * hadoop.locality_fraction()
    );

    // ---- The outputs must agree --------------------------------------------
    let mut agreements = 0;
    for (spec, _) in &inputs {
        let classic_out = storage.get(&job.output_bucket, &spec.output_key)?;
        let hadoop_path = format!("/out/{}.out", spec.input_key.replace('/', "_"));
        let hadoop_out = fs.read(&hadoop_path)?;
        assert_eq!(
            *classic_out, hadoop_out,
            "{} differs between paradigms",
            spec.input_key
        );
        agreements += 1;
    }
    println!(
        "\n{agreements}/{} output files byte-identical across paradigms",
        inputs.len()
    );

    // Show a few hits from the first report.
    let sample = storage.get(&job.output_bucket, &inputs[0].0.output_key)?;
    let text = String::from_utf8_lossy(&sample);
    println!("\nsample hits (query  subject  bit-score  e-value):");
    for line in text.lines().take(5) {
        println!("  {line}");
    }
    Ok(())
}
