//! Instance-type advisor: the paper's §3 cost/performance methodology as a
//! tool.
//!
//! Given a workload description, sweeps the EC2 catalog through the
//! calibrated Classic Cloud simulator and reports time, whole-hour cost,
//! and amortized cost per instance type — then recommends by each
//! criterion, reproducing the paper's repeated finding that the fastest
//! type (HM4XL) and the most economical type (HCXL) differ.
//!
//! ```bash
//! cargo run --release --example instance_picker -- cap3   # or blast / gtm
//! ```

use ppc::apps::experiment::ec2_instance_study;
use ppc::apps::workload;
use ppc::compute::model::AppModel;
use ppc::core::report::{Figure, Series};

fn main() {
    let app_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cap3".to_string());
    let (tasks, app) = match app_name.as_str() {
        "blast" => (workload::blast_sim_tasks(64, 100), AppModel::DEFAULT),
        "gtm" => (workload::gtm_sim_tasks(264, 100_000), AppModel::DEFAULT),
        _ => (workload::cap3_sim_tasks(200, 200), AppModel::cap3()),
    };
    println!(
        "workload: {} '{}' tasks on 16 cores, four EC2 configurations\n",
        tasks.len(),
        app_name
    );

    let rows = ec2_instance_study(&tasks, app, 42);

    let mut fig = Figure::new(
        format!("Instance study: {app_name}"),
        "configuration",
        "value",
    )
    .with_precision(2);
    let mut time = Series::new("time (s)");
    let mut cost = Series::new("compute cost ($)");
    let mut amortized = Series::new("amortized ($)");
    for r in &rows {
        time.push(r.label.clone(), r.makespan_seconds);
        cost.push(r.label.clone(), r.cost.compute_cost.as_f64());
        amortized.push(r.label.clone(), r.cost.amortized_cost.as_f64());
    }
    fig.add(time);
    fig.add(cost);
    fig.add(amortized);
    println!("{fig}");

    let fastest = rows
        .iter()
        .min_by(|a, b| a.makespan_seconds.total_cmp(&b.makespan_seconds))
        .expect("rows");
    let cheapest = rows
        .iter()
        .min_by_key(|r| r.cost.compute_cost)
        .expect("rows");
    let thriftiest = rows
        .iter()
        .min_by_key(|r| r.cost.amortized_cost)
        .expect("rows");
    println!(
        "fastest           : {} ({:.0} s)",
        fastest.label, fastest.makespan_seconds
    );
    println!(
        "cheapest (hours)  : {} ({})",
        cheapest.label, cheapest.cost.compute_cost
    );
    println!(
        "cheapest (amort.) : {} ({})",
        thriftiest.label, thriftiest.cost.amortized_cost
    );
    if fastest.label != cheapest.label {
        println!("\nnote: fastest != cheapest — \"selecting an instance type that is best");
        println!("suited to the user's specific application can lead to significant time");
        println!("and monetary advantages\" (paper, conclusion)");
    }
}
