//! Fault tolerance by visibility timeout, demonstrated.
//!
//! Runs a Classic Cloud job while killing workers mid-task (both before
//! executing and between upload and delete) and injecting queue chaos —
//! duplicate deliveries, empty receives, transient API failures. The job
//! must still complete with byte-correct outputs, because tasks are
//! idempotent and undeleted messages reappear (paper §2.1.3).
//!
//! ```bash
//! cargo run --release --example fault_tolerance
//! ```

use ppc::classic::fault::FaultPlan;
use ppc::classic::spec::JobSpec;
use ppc::classic::{run as classic_run, ClassicConfig};
use ppc::compute::cluster::Cluster;
use ppc::compute::instance::EC2_HCXL;
use ppc::core::exec::FnExecutor;
use ppc::core::task::{ResourceProfile, TaskSpec};
use ppc::exec::RunContext;
use ppc::queue::chaos::ChaosConfig;
use ppc::queue::service::QueueService;
use ppc::storage::service::StorageService;
use std::time::Duration;

fn main() -> ppc::core::Result<()> {
    let storage = StorageService::in_memory();
    let queues = QueueService::new();
    let cluster = Cluster::provision(EC2_HCXL, 2, 4);

    // 60 tasks: reverse each payload (idempotent, easily checkable).
    let n = 60;
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| TaskSpec::new(i, "rev", format!("f{i}"), ResourceProfile::cpu_bound(0.0)))
        .collect();
    let job = JobSpec::new("hostile", tasks).with_visibility_timeout(Duration::from_millis(40));
    storage.create_bucket(&job.input_bucket)?;
    for i in 0..n {
        storage.put(
            &job.input_bucket,
            &format!("f{i}"),
            format!("payload-{i}").into_bytes(),
        )?;
    }

    let config = ClassicConfig {
        fault: FaultPlan {
            die_before_execute: 0.10,
            die_mid_execute: 0.05,
            die_before_delete: 0.10,
            restart_delay_ms: 1,
            seed: 11,
        },
        queue_chaos: ChaosConfig {
            empty_receive_probability: 0.10,
            duplicate_delivery_probability: 0.05,
            transient_error_probability: 0.02,
        },
        ..ClassicConfig::default()
    };

    let executor = FnExecutor::new("rev", |_s, input: &[u8]| {
        let mut v = input.to_vec();
        v.reverse();
        Ok(v)
    });
    let report = classic_run(
        &RunContext::new(&cluster),
        &storage,
        &queues,
        &job,
        executor,
        &config,
    )?;

    println!("hostile environment: 10% death before execute, 10% before delete,");
    println!("                     10% empty receives, 5% duplicate delivery, 2% API errors");
    println!("tasks completed    : {}/{n}", report.summary.tasks);
    println!(
        "total executions   : {} ({} redundant)",
        report.total_attempts,
        report.redundant_executions()
    );
    println!("worker deaths      : {}", report.worker_deaths);
    println!(
        "makespan           : {:.2} s",
        report.summary.makespan_seconds
    );

    // Every output is present and correct despite all of the above.
    for i in 0..n {
        let out = storage.get(&job.output_bucket, &format!("f{i}.out"))?;
        let mut expect = format!("payload-{i}").into_bytes();
        expect.reverse();
        assert_eq!(*out, expect, "task {i} output corrupted");
    }
    println!("\nall {n} outputs verified byte-correct — idempotence absorbed every failure");
    assert!(report.is_complete());
    assert!(
        report.worker_deaths > 0,
        "the environment was genuinely hostile"
    );
    Ok(())
}
