//! # ppc-dryad — a DryadLINQ-like DAG execution engine
//!
//! Stands in for Microsoft Dryad/DryadLINQ as the paper used them (§2.3):
//!
//! > "Dryad applications are expressed as directed acyclic data-flow graphs
//! > (DAG), where vertices represent computations and edges represent
//! > communication channels ... data for the computations need to be
//! > partitioned manually and stored beforehand in the local disks of the
//! > computational nodes ... The DryadLINQ implementation of the framework
//! > uses the DryadLINQ 'select' operator on the data partitions to perform
//! > the distributed computations."
//!
//! The defining behavioural difference from Hadoop/Classic Cloud — and the
//! one the paper measures — is **static task partitioning at the node
//! level**, giving "suboptimal load balancing" (Table 3) on inhomogeneous
//! data.
//!
//! * [`graph`] — explicit DAGs with cycle detection and topological stages.
//! * [`partition`] — static partitioners and the partition manifest files
//!   the paper had to generate.
//! * [`linq`] — `DVec<T>`, a partitioned collection with `select`, `where`,
//!   `apply`, `group_by`, executed one vertex per partition.
//! * [`runtime`] — the native homomorphic-apply job runner (the paper's
//!   "select over data partitions" pattern) on real threads.
//! * [`sim`] — the discrete-event model for paper-scale runs.

pub mod graph;
pub mod linq;
pub mod partition;
pub mod runtime;
pub mod sim;

pub use graph::Graph;
pub use linq::DVec;
pub use partition::{partition_contiguous, partition_round_robin, PartitionManifest};
pub use runtime::{run_homomorphic_job, run_homomorphic_job_chaos, DryadConfig, DryadReport};
pub use sim::{simulate, simulate_chaos, DryadSimConfig};
