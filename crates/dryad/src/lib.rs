//! # ppc-dryad — a DryadLINQ-like DAG execution engine
//!
//! Stands in for Microsoft Dryad/DryadLINQ as the paper used them (§2.3):
//!
//! > "Dryad applications are expressed as directed acyclic data-flow graphs
//! > (DAG), where vertices represent computations and edges represent
//! > communication channels ... data for the computations need to be
//! > partitioned manually and stored beforehand in the local disks of the
//! > computational nodes ... The DryadLINQ implementation of the framework
//! > uses the DryadLINQ 'select' operator on the data partitions to perform
//! > the distributed computations."
//!
//! The defining behavioural difference from Hadoop/Classic Cloud — and the
//! one the paper measures — is **static task partitioning at the node
//! level**, giving "suboptimal load balancing" (Table 3) on inhomogeneous
//! data.
//!
//! * [`graph`] — explicit DAGs with cycle detection and topological stages.
//! * [`partition`] — static partitioners and the partition manifest files
//!   the paper had to generate.
//! * [`linq`] — `DVec<T>`, a partitioned collection with `select`, `where`,
//!   `apply`, `group_by`, executed one vertex per partition.
//! * [`runtime`] — the native homomorphic-apply job runner (the paper's
//!   "select over data partitions" pattern) on real threads.
//! * [`sim`] — the discrete-event model for paper-scale runs.
//!
//! Both runtimes are reached through exactly two entry points driven by a
//! [`ppc_exec::RunContext`]: [`run`] (native) and [`simulate`]
//! (discrete-event). [`DryadEngine`] exposes the same pair behind the
//! paradigm-generic [`ppc_exec::Engine`] trait.

pub mod engine;
pub mod graph;
pub mod harness;
pub mod linq;
pub mod partition;
pub mod runtime;
pub mod sim;

pub use engine::{vertex_graph, DryadEngine};
pub use graph::Graph;
pub use harness::{run, simulate};
pub use linq::DVec;
pub use partition::{partition_contiguous, partition_round_robin, PartitionManifest};
pub use runtime::{DryadConfig, DryadReport, JobOutputs};
pub use sim::DryadSimConfig;
