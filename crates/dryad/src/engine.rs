//! [`ppc_exec::Engine`] implementation: DryadLINQ-style static
//! partitioning as one of the three interchangeable paradigms.

use crate::graph::Graph;
use crate::runtime::DryadConfig;
use crate::sim::DryadSimConfig;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_exec::{
    drive_workflow, Engine, JobOutputs, RunContext, RunReport, Workflow, WorkflowReport, Workload,
};

/// Lower a [`Workflow`] onto Dryad's vertex graph: one vertex per
/// `(stage, partition)` named `stage[partition]`, channels along the
/// workflow's edges (partition-wise when the partition counts line up,
/// full bipartite otherwise), graph stages taken from the workflow's
/// dependency levels. This is the graph-manager view Dryad's runtime
/// executes — the workflow layer and the vertex runtime agree on staging
/// by construction, and cycles are rejected twice (workflow validation
/// and graph toposort).
pub fn vertex_graph(wf: &Workflow) -> Result<Graph> {
    wf.validate()?;
    let levels = wf.levels()?;
    let mut level_of = vec![0usize; wf.stages.len()];
    for (l, members) in levels.iter().enumerate() {
        for &s in members {
            level_of[s] = l;
        }
    }
    let mut g = Graph::new();
    let mut vid: Vec<Vec<usize>> = Vec::with_capacity(wf.stages.len());
    for (s, stage) in wf.stages.iter().enumerate() {
        vid.push(
            (0..stage.specs.len())
                .map(|p| g.add_vertex(format!("{}[{p}]", stage.name), level_of[s], p))
                .collect(),
        );
    }
    for e in &wf.edges {
        let (from, to) = (&vid[e.from], &vid[e.to]);
        if from.len() == to.len() {
            for (f, t) in from.iter().zip(to) {
                g.add_edge(*f, *t)?;
            }
        } else {
            for f in from {
                for t in to {
                    g.add_edge(*f, *t)?;
                }
            }
        }
    }
    g.topological_order()?;
    Ok(g)
}

/// The Dryad paradigm behind the uniform [`Engine`] interface. Inputs go
/// straight to node-local memory (the paper's pre-partitioned Windows
/// shared directories); pass the configs to tune either runtime.
#[derive(Debug, Clone, Default)]
pub struct DryadEngine {
    pub sim: DryadSimConfig,
    pub native: DryadConfig,
}

impl Engine for DryadEngine {
    fn name(&self) -> &str {
        "dryad"
    }

    fn run(&self, ctx: &RunContext, workload: &Workload) -> Result<(RunReport, JobOutputs)> {
        let mut native = self.native.clone();
        native.max_retries = workload.max_attempts.saturating_sub(1);
        let (report, outputs) = crate::harness::run(
            ctx,
            workload.inputs.clone(),
            workload.executor.clone(),
            &native,
        )?;
        Ok((report.core, outputs))
    }

    fn simulate(&self, ctx: &RunContext, tasks: &[TaskSpec]) -> RunReport {
        crate::harness::simulate(ctx, tasks, &self.sim).core
    }

    /// Native override: the workflow is lowered onto the vertex graph
    /// first (Dryad's own DAG representation), then each graph stage runs
    /// on the vertex runtime directly via `run_impl` — no detour through
    /// the map-only harness, the same path `DryadEngine::run` bottoms out
    /// in, with per-stage retry budgets mapped onto vertex re-runs.
    fn run_workflow(
        &self,
        ctx: &RunContext,
        wf: &Workflow,
    ) -> Result<(WorkflowReport, JobOutputs)> {
        let graph = vertex_graph(wf)?;
        debug_assert_eq!(
            graph.n_vertices(),
            wf.stages.iter().map(|s| s.specs.len()).sum::<usize>(),
            "one vertex per stage partition"
        );
        drive_workflow(ctx, wf, &mut |sctx, _s, workload| {
            let cluster = sctx.single_cluster()?;
            let mut cfg = self.native.clone();
            cfg.max_retries = workload.max_attempts.saturating_sub(1);
            cfg.seed = sctx.seed_or(cfg.seed);
            cfg.schedule = sctx.schedule_or(&cfg.schedule);
            cfg.trace = sctx.sink_or(&cfg.trace);
            cfg.resilience = sctx.resilience_or(&cfg.resilience);
            let (report, outputs) = crate::runtime::run_impl(
                cluster,
                workload.inputs.clone(),
                workload.executor.clone(),
                &cfg,
            )?;
            Ok((report.core, outputs))
        })
    }
}
