//! [`ppc_exec::Engine`] implementation: DryadLINQ-style static
//! partitioning as one of the three interchangeable paradigms.

use crate::runtime::DryadConfig;
use crate::sim::DryadSimConfig;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_exec::{Engine, JobOutputs, RunContext, RunReport, Workload};

/// The Dryad paradigm behind the uniform [`Engine`] interface. Inputs go
/// straight to node-local memory (the paper's pre-partitioned Windows
/// shared directories); pass the configs to tune either runtime.
#[derive(Debug, Clone, Default)]
pub struct DryadEngine {
    pub sim: DryadSimConfig,
    pub native: DryadConfig,
}

impl Engine for DryadEngine {
    fn name(&self) -> &str {
        "dryad"
    }

    fn run(&self, ctx: &RunContext, workload: &Workload) -> Result<(RunReport, JobOutputs)> {
        let mut native = self.native.clone();
        native.max_retries = workload.max_attempts.saturating_sub(1);
        let (report, outputs) = crate::harness::run(
            ctx,
            workload.inputs.clone(),
            workload.executor.clone(),
            &native,
        )?;
        Ok((report.core, outputs))
    }

    fn simulate(&self, ctx: &RunContext, tasks: &[TaskSpec]) -> RunReport {
        crate::harness::simulate(ctx, tasks, &self.sim).core
    }
}
