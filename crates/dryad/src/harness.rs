//! The two Dryad entry points: [`run`] (native) and [`simulate`]
//! (discrete-event), both driven by a [`ppc_exec::RunContext`].
//!
//! Dryad runs on exactly one cluster (static node-level partitioning has
//! no elastic or hybrid shape), so both entry points take the context's
//! single cluster; its seed / fault schedule / trace settings override the
//! corresponding config fields.

use crate::runtime::{DryadConfig, DryadReport, JobOutputs};
use crate::sim::DryadSimConfig;
use ppc_core::exec::Executor;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_exec::RunContext;
use std::sync::Arc;

/// Run `executor` over every input on the context's single cluster,
/// statically partitioned round-robin across its nodes. Returns the
/// report and the outputs (output key → bytes), in completion order.
///
/// The context's seed, fault schedule, and trace sink override the
/// config's `seed`, `schedule`, and `trace` fields when set.
pub fn run(
    ctx: &RunContext,
    inputs: Vec<(TaskSpec, Vec<u8>)>,
    executor: Arc<dyn Executor>,
    config: &DryadConfig,
) -> Result<(DryadReport, JobOutputs)> {
    let cluster = ctx.single_cluster()?;
    let mut cfg = config.clone();
    cfg.seed = ctx.seed_or(cfg.seed);
    cfg.schedule = ctx.schedule_or(&cfg.schedule);
    cfg.trace = ctx.sink_or(&cfg.trace);
    cfg.resilience = ctx.resilience_or(&cfg.resilience);
    crate::runtime::run_impl(cluster, inputs, executor, &cfg)
}

/// Simulate a statically partitioned job of `tasks` in virtual time on
/// the context's single cluster — the twin of [`run`] for paper-scale
/// what-if studies.
///
/// The context's seed and trace flag override the sim config's; its fault
/// schedule drives the event-based chaos model. Panics on malformed sim
/// dials or a hybrid/elastic fleet plan, like every simulator here.
///
/// Dryad's static-partition simulator is a quantized list scheduler with
/// no event calendar, so the context's `queue` (event-queue backend)
/// selection is a no-op here — reports are trivially backend-invariant.
pub fn simulate(ctx: &RunContext, tasks: &[TaskSpec], cfg: &DryadSimConfig) -> DryadReport {
    let cluster = match ctx.single_cluster() {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    };
    let mut cfg = *cfg;
    cfg.seed = ctx.seed_or(cfg.seed);
    cfg.trace = ctx.trace_or(cfg.trace);
    cfg.resilience = ctx.resilience_or(&cfg.resilience);
    crate::sim::simulate_impl(cluster, tasks, &cfg, ctx.schedule.clone())
}
