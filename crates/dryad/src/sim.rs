//! The simulated DryadLINQ runtime.
//!
//! Static node-level partitioning means the nodes never interact after the
//! partition step, so the simulation decomposes exactly into independent
//! per-node list schedules: each node runs its own task list on its worker
//! slots, and the job's makespan is the slowest node's finish time. (This is
//! precisely why DryadLINQ load-balances worse than the global-queue
//! platforms — nothing can flow between nodes mid-job.)

use ppc_chaos::FaultSchedule;
use ppc_compute::cluster::Cluster;
use ppc_compute::model::{task_service_seconds, AppModel};
use ppc_core::metrics::RunSummary;
use ppc_core::rng::Pcg32;
use ppc_core::task::{TaskId, TaskSpec};
use ppc_core::{PpcError, Result};
use ppc_exec::{RunContext, RunReport};
use ppc_resilience::{Health, HealthTracker, HedgePolicy, ResiliencePolicy};
use ppc_storage::latency::LatencyModel;
use ppc_trace::{EventKind, Phase, Recorder, RunMeta, Span, TraceEvent, TraceSink, NO_WORKER};
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::runtime::DryadReport;

/// Configuration of the simulated Dryad platform.
#[derive(Debug, Clone, Copy)]
pub struct DryadSimConfig {
    pub app: AppModel,
    /// Per-vertex startup cost, seconds (process launch on Windows HPC).
    pub vertex_overhead_s: f64,
    /// Node-local file I/O path.
    pub local_io: LatencyModel,
    /// Log-normal execution jitter sigma.
    pub jitter_sigma: f64,
    pub seed: u64,
    /// Record per-vertex phase spans; the report carries the finished
    /// [`ppc_trace::Trace`].
    pub trace: bool,
    /// Straggler and gray-failure defense. With a hedge config, a vertex
    /// whose service time exceeds the learned delay gets a *backup vertex*
    /// on the node's next-free slot (never crossing nodes) and the first
    /// completion wins; a deadline cuts overlong attempts and re-runs them
    /// through slot selection; a quarantine config benches gray slots off
    /// the list schedule. `None` keeps the legacy simulator bit-identical.
    pub resilience: Option<ResiliencePolicy>,
}

impl Default for DryadSimConfig {
    fn default() -> Self {
        DryadSimConfig {
            app: AppModel::DEFAULT,
            vertex_overhead_s: 0.3,
            local_io: LatencyModel::local_disk_2010(),
            jitter_sigma: 0.02,
            seed: 42,
            trace: false,
            resilience: None,
        }
    }
}

/// Emit one vertex attempt's phase spans, boundaries clamped so µs
/// quantization of the schedule can never produce a negative-length span.
/// Only a successful attempt writes its output (the terminal `Write`).
#[allow(clippy::too_many_arguments)]
fn record_vertex(
    rec: &Recorder,
    task: u64,
    attempt: u32,
    worker: u32,
    start_s: f64,
    end_s: f64,
    overhead_s: f64,
    t_in: f64,
    t_out: f64,
    ok: bool,
) {
    let d1 = (start_s + overhead_s).min(end_s);
    let d2 = (d1 + t_in).min(end_s);
    let d3 = if ok { (end_s - t_out).max(d2) } else { end_s };
    rec.span(Span::new(
        task,
        attempt,
        worker,
        Phase::VertexStart,
        start_s,
        d1,
    ));
    rec.span(Span::new(task, attempt, worker, Phase::ReadLocal, d1, d2));
    rec.span(Span::new(task, attempt, worker, Phase::Execute, d2, d3));
    if ok {
        rec.span(Span::new(task, attempt, worker, Phase::Write, d3, end_s));
    }
    rec.span(Span::new(
        task,
        attempt,
        worker,
        Phase::Attempt,
        start_s,
        end_s,
    ));
}

impl DryadSimConfig {
    /// Reject nonsense configuration before the simulation starts.
    pub fn validate(&self) -> Result<()> {
        if !self.vertex_overhead_s.is_finite() || self.vertex_overhead_s < 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "dryad sim config: vertex_overhead_s = {} must be finite and >= 0",
                self.vertex_overhead_s
            )));
        }
        if !self.jitter_sigma.is_finite() || self.jitter_sigma < 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "dryad sim config: jitter_sigma = {} must be finite and >= 0",
                self.jitter_sigma
            )));
        }
        if let Some(policy) = &self.resilience {
            policy.validate()?;
        }
        Ok(())
    }
}

/// Score a successful attempt, emitting a Quarantine event if this
/// observation benches the slot.
fn sim_note_success(
    health: &mut Option<HealthTracker>,
    rec: &Option<Recorder>,
    worker: u32,
    latency_s: f64,
    now_s: f64,
) {
    let Some(h) = health.as_mut() else { return };
    let before = matches!(h.health(worker), Health::Quarantined { .. });
    h.record_success(worker, latency_s, now_s);
    if !before && matches!(h.health(worker), Health::Quarantined { .. }) {
        if let Some(rec) = rec {
            rec.event(TraceEvent {
                at_s: now_s,
                worker,
                kind: EventKind::Quarantine,
            });
        }
    }
}

/// Score a failed or cancelled attempt, emitting a Quarantine event if
/// this observation benches the slot.
fn sim_note_failure(
    health: &mut Option<HealthTracker>,
    rec: &Option<Recorder>,
    worker: u32,
    now_s: f64,
) {
    let Some(h) = health.as_mut() else { return };
    let before = matches!(h.health(worker), Health::Quarantined { .. });
    h.record_failure(worker, now_s);
    if !before && matches!(h.health(worker), Health::Quarantined { .. }) {
        if let Some(rec) = rec {
            rec.event(TraceEvent {
                at_s: now_s,
                worker,
                kind: EventKind::Quarantine,
            });
        }
    }
}

/// Simulate a statically partitioned job of `tasks` on `cluster`.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_dryad::simulate`")]
pub fn simulate(cluster: &Cluster, tasks: &[TaskSpec], cfg: &DryadSimConfig) -> DryadReport {
    crate::harness::simulate(&RunContext::new(cluster), tasks, cfg)
}

/// Cap on chaos re-runs of one vertex before it counts as failed (the
/// i.i.d. death dice can in principle chain forever at p close to 1).
const MAX_CHAOS_ATTEMPTS: u32 = 16;

/// [`simulate`] under a deterministic [`FaultSchedule`]. Slots are
/// addressed by flat node-major index; a kill or death die landing on a
/// vertex costs one full re-run *on the same node* (static partitioning:
/// work never migrates across nodes). Gray degradation stretches every
/// vertex the degraded slot runs; cloud-storage outages do not apply to
/// Dryad's node-local files.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_dryad::simulate`")]
pub fn simulate_chaos(
    cluster: &Cluster,
    tasks: &[TaskSpec],
    cfg: &DryadSimConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> DryadReport {
    crate::harness::simulate(
        &RunContext::new(cluster).with_schedule(schedule),
        tasks,
        cfg,
    )
}

/// The simulator body, reached through [`crate::simulate`]: independent
/// per-node list schedules over virtual worker slots.
pub(crate) fn simulate_impl(
    cluster: &Cluster,
    tasks: &[TaskSpec],
    cfg: &DryadSimConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> DryadReport {
    assert!(!tasks.is_empty(), "no tasks to simulate");
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    if let Some(schedule) = &schedule {
        if let Err(e) = schedule.validate() {
            panic!("{e}");
        }
    }
    let n_nodes = cluster.n_nodes();
    let itype = cluster.itype();
    // One independent RNG stream per worker slot (flat node-major index).
    let mut rngs: Vec<Pcg32> = (0..cluster.total_workers())
        .map(|w| Pcg32::for_stream(cfg.seed, w as u64))
        .collect();
    let rec: Option<Recorder> = cfg.trace.then(Recorder::new);

    // Static round-robin partitioning, fixed before execution starts.
    let partitions = crate::partition::partition_round_robin(tasks.to_vec(), n_nodes);

    let mut per_node_seconds = Vec::with_capacity(n_nodes);
    let mut vertex_failures = 0usize;
    let mut vertex_retries = 0usize;
    let mut total_attempts = 0usize;
    let mut deaths = 0usize;
    let mut failed: Vec<TaskId> = Vec::new();
    // Defense state is cluster-wide (one latency quantile, one health
    // ledger) even though backup vertices never cross nodes.
    let mut hedge = cfg.resilience.and_then(|p| p.hedge).map(HedgePolicy::new);
    let mut health = cfg
        .resilience
        .and_then(|p| p.quarantine)
        .map(HealthTracker::new);
    let deadline = cfg.resilience.and_then(|p| p.deadline);
    let mut hedged_losers = 0usize;
    let mut node_base = 0usize;
    for (node_idx, node_tasks) in partitions.iter().enumerate() {
        let workers = cluster.nodes()[node_idx].workers;
        // List-schedule the node's tasks onto its worker slots: a min-heap
        // of (slot-free time, flat slot id) — exact for FIFO within a node.
        let mut slots: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = (0..workers)
            .map(|s| std::cmp::Reverse((0u64, node_base + s)))
            .collect();
        let mut task_seqs = vec![0u32; workers];
        let mut last_kill = vec![0.0f64; workers];
        let mut node_finish = 0u64; // microseconds
        for task in node_tasks {
            let t_exec = task_service_seconds(&itype, workers, &task.profile, &cfg.app);
            let t_in = cfg.local_io.transfer_seconds(task.profile.input_bytes);
            let t_out = cfg.local_io.transfer_seconds(task.profile.output_bytes);
            let t_io = t_in + t_out;
            if cfg.resilience.is_some() {
                // ---- defended scheduling of one vertex --------------------
                let mut attempt_idx = 0u32;
                // A re-attempt (after a death or a deadline cancellation)
                // cannot start before the failed attempt ended, even if the
                // replacement slot freed up earlier.
                let mut earliest: u64 = 0;
                loop {
                    // Pick a slot through the quarantine gate: a benched
                    // slot re-enters the heap at its release time, so the
                    // list schedule flows around gray slots.
                    let (start, slot) = loop {
                        let std::cmp::Reverse((fa, s)) = slots.pop().expect("at least one slot");
                        let now_s = fa as f64 / 1e6;
                        let Some(h) = health.as_mut() else {
                            break (fa, s);
                        };
                        let was_benched = matches!(h.health(s as u32), Health::Quarantined { .. });
                        if h.allow(s as u32, now_s) {
                            if was_benched {
                                if let Some(rec) = &rec {
                                    rec.event(TraceEvent {
                                        at_s: now_s,
                                        worker: s as u32,
                                        kind: EventKind::Release,
                                    });
                                }
                            }
                            break (fa, s);
                        }
                        let until_s = match h.health(s as u32) {
                            Health::Quarantined { until_s } => until_s,
                            _ => now_s,
                        };
                        slots.push(std::cmp::Reverse((
                            ((until_s.max(now_s)) * 1e6).round() as u64 + 1,
                            s,
                        )));
                    };
                    let w = slot as u32;
                    let local_slot = slot - node_base;
                    let start = start.max(earliest);
                    let start_s = start as f64 / 1e6;
                    let jitter = if cfg.jitter_sigma > 0.0 {
                        rngs[slot].log_normal(0.0, cfg.jitter_sigma)
                    } else {
                        1.0
                    };
                    let factor = schedule.as_ref().map_or(1.0, |s| s.slowdown(w, start_s));
                    let dur_s = cfg.vertex_overhead_s + t_exec * jitter * factor + t_io;
                    let seq = task_seqs[local_slot];
                    task_seqs[local_slot] += 1;
                    total_attempts += 1;
                    let mut killed = false;
                    let mut dies = false;
                    if let Some(schedule) = &schedule {
                        let end_s = start_s + dur_s;
                        killed = schedule.kills_in(w, last_kill[local_slot], end_s);
                        last_kill[local_slot] = end_s;
                        let died = killed
                            || schedule.die_before_execute(w, seq)
                            || schedule.die_mid_execute(w, seq)
                            || schedule.die_before_delete(w, seq);
                        if died {
                            deaths += 1;
                        }
                        dies = died || schedule.is_torn_upload(w, seq);
                    }
                    if dies {
                        let finish = start + (dur_s * 1e6).round() as u64;
                        let end_s = finish as f64 / 1e6;
                        if let Some(rec) = &rec {
                            record_vertex(
                                rec,
                                task.id.0,
                                attempt_idx,
                                w,
                                start_s,
                                end_s,
                                cfg.vertex_overhead_s,
                                t_in,
                                t_out,
                                false,
                            );
                            if killed {
                                rec.event(TraceEvent {
                                    at_s: end_s,
                                    worker: w,
                                    kind: EventKind::Death,
                                });
                            }
                        }
                        sim_note_failure(&mut health, &rec, w, end_s);
                        node_finish = node_finish.max(finish);
                        slots.push(std::cmp::Reverse((finish, slot)));
                        earliest = finish;
                        attempt_idx += 1;
                        if attempt_idx >= MAX_CHAOS_ATTEMPTS {
                            vertex_failures += 1;
                            failed.push(task.id);
                            break;
                        }
                        vertex_retries += 1;
                        continue;
                    }
                    if let Some(d) = deadline {
                        if dur_s > d.timeout_s {
                            // Cancel the overlong attempt at the deadline
                            // and re-run through slot selection, where the
                            // quarantine gate can divert it off a gray slot.
                            let finish = start + (d.timeout_s * 1e6).round() as u64;
                            let end_s = finish as f64 / 1e6;
                            if let Some(rec) = &rec {
                                record_vertex(
                                    rec,
                                    task.id.0,
                                    attempt_idx,
                                    w,
                                    start_s,
                                    end_s,
                                    cfg.vertex_overhead_s,
                                    t_in,
                                    t_out,
                                    false,
                                );
                                rec.event(TraceEvent {
                                    at_s: end_s,
                                    worker: w,
                                    kind: EventKind::Cancel,
                                });
                            }
                            sim_note_failure(&mut health, &rec, w, end_s);
                            node_finish = node_finish.max(finish);
                            slots.push(std::cmp::Reverse((finish, slot)));
                            attempt_idx += 1;
                            if attempt_idx >= MAX_CHAOS_ATTEMPTS {
                                vertex_failures += 1;
                                failed.push(task.id);
                                break;
                            }
                            vertex_retries += 1;
                            continue;
                        }
                    }
                    // The attempt will complete; a straggler may earn a
                    // backup vertex on the node's next-free slot first.
                    let mut finish = start + (dur_s * 1e6).round() as u64;
                    let mut winner_w = w;
                    let mut winner_latency = dur_s;
                    let mut hedged = false;
                    if let Some(policy) = hedge.as_mut() {
                        let delay = policy.hedge_delay();
                        if dur_s > delay && policy.should_hedge(delay, 1, tasks.len()) {
                            let std::cmp::Reverse((b_free, b_slot)) =
                                slots.pop().expect("at least one slot");
                            let b_start = b_free.max(start + (delay * 1e6).round() as u64);
                            if b_start < finish {
                                let bw = b_slot as u32;
                                let b_start_s = b_start as f64 / 1e6;
                                let b_jitter = if cfg.jitter_sigma > 0.0 {
                                    rngs[b_slot].log_normal(0.0, cfg.jitter_sigma)
                                } else {
                                    1.0
                                };
                                let b_factor =
                                    schedule.as_ref().map_or(1.0, |s| s.slowdown(bw, b_start_s));
                                let b_dur_s =
                                    cfg.vertex_overhead_s + t_exec * b_jitter * b_factor + t_io;
                                let b_finish = b_start + (b_dur_s * 1e6).round() as u64;
                                policy.record_hedge();
                                total_attempts += 1;
                                hedged = true;
                                hedged_losers += 1;
                                if let Some(rec) = &rec {
                                    rec.event(TraceEvent {
                                        at_s: b_start_s,
                                        worker: NO_WORKER,
                                        kind: EventKind::Hedge,
                                    });
                                }
                                // First result wins; the loser is cancelled
                                // at the winner's completion, freeing both
                                // slots there.
                                let win = finish.min(b_finish);
                                if let Some(rec) = &rec {
                                    record_vertex(
                                        rec,
                                        task.id.0,
                                        attempt_idx,
                                        w,
                                        start_s,
                                        if b_finish < finish {
                                            win as f64 / 1e6
                                        } else {
                                            finish as f64 / 1e6
                                        },
                                        cfg.vertex_overhead_s,
                                        t_in,
                                        t_out,
                                        b_finish >= finish,
                                    );
                                    record_vertex(
                                        rec,
                                        task.id.0,
                                        attempt_idx + 1,
                                        bw,
                                        b_start_s,
                                        if b_finish < finish {
                                            b_finish as f64 / 1e6
                                        } else {
                                            win as f64 / 1e6
                                        },
                                        cfg.vertex_overhead_s,
                                        t_in,
                                        t_out,
                                        b_finish < finish,
                                    );
                                }
                                if b_finish < finish {
                                    winner_w = bw;
                                    winner_latency = b_dur_s;
                                }
                                node_finish = node_finish.max(win);
                                slots.push(std::cmp::Reverse((win, slot)));
                                slots.push(std::cmp::Reverse((win, b_slot)));
                                finish = win;
                            } else {
                                // The backup could not launch before the
                                // primary finishes: pointless, skip it.
                                slots.push(std::cmp::Reverse((b_free, b_slot)));
                            }
                        }
                    }
                    if !hedged {
                        if let Some(rec) = &rec {
                            record_vertex(
                                rec,
                                task.id.0,
                                attempt_idx,
                                w,
                                start_s,
                                finish as f64 / 1e6,
                                cfg.vertex_overhead_s,
                                t_in,
                                t_out,
                                true,
                            );
                        }
                        node_finish = node_finish.max(finish);
                        slots.push(std::cmp::Reverse((finish, slot)));
                    }
                    let end_s = finish as f64 / 1e6;
                    if let Some(policy) = hedge.as_mut() {
                        policy.observe(winner_latency);
                    }
                    sim_note_success(&mut health, &rec, winner_w, winner_latency, end_s);
                    break;
                }
                continue;
            }
            let std::cmp::Reverse((free_at, slot)) = slots.pop().expect("at least one slot");
            let local_slot = slot - node_base;
            // The executing slot draws the jitter from its own stream.
            let jitter = if cfg.jitter_sigma > 0.0 {
                rngs[slot].log_normal(0.0, cfg.jitter_sigma)
            } else {
                1.0
            };
            let mut finish = free_at;
            if let Some(schedule) = &schedule {
                let w = slot as u32;
                let mut attempts = 0u32;
                loop {
                    let now_s = finish as f64 / 1e6;
                    let factor = schedule.slowdown(w, now_s);
                    let dur = ((cfg.vertex_overhead_s + t_exec * jitter * factor + t_io) * 1e6)
                        .round() as u64;
                    finish += dur;
                    let seq = task_seqs[local_slot];
                    task_seqs[local_slot] += 1;
                    let end_s = finish as f64 / 1e6;
                    total_attempts += 1;
                    let killed = schedule.kills_in(w, last_kill[local_slot], end_s);
                    last_kill[local_slot] = end_s;
                    let died = killed
                        || schedule.die_before_execute(w, seq)
                        || schedule.die_mid_execute(w, seq)
                        || schedule.die_before_delete(w, seq);
                    if died {
                        deaths += 1;
                    }
                    let dies = died || schedule.is_torn_upload(w, seq);
                    if let Some(rec) = &rec {
                        record_vertex(
                            rec,
                            task.id.0,
                            attempts,
                            w,
                            now_s,
                            end_s,
                            cfg.vertex_overhead_s,
                            t_in,
                            t_out,
                            !dies,
                        );
                        if killed {
                            rec.event(TraceEvent {
                                at_s: end_s,
                                worker: w,
                                kind: EventKind::Death,
                            });
                        }
                    }
                    attempts += 1;
                    if !dies {
                        break;
                    }
                    if attempts >= MAX_CHAOS_ATTEMPTS {
                        vertex_failures += 1;
                        failed.push(task.id);
                        break;
                    }
                    vertex_retries += 1;
                }
            } else {
                total_attempts += 1;
                let dur = ((cfg.vertex_overhead_s + t_exec * jitter + t_io) * 1e6).round() as u64;
                finish = free_at + dur;
                if let Some(rec) = &rec {
                    record_vertex(
                        rec,
                        task.id.0,
                        0,
                        slot as u32,
                        free_at as f64 / 1e6,
                        finish as f64 / 1e6,
                        cfg.vertex_overhead_s,
                        t_in,
                        t_out,
                        true,
                    );
                }
            }
            node_finish = node_finish.max(finish);
            slots.push(std::cmp::Reverse((finish, slot)));
        }
        per_node_seconds.push(node_finish as f64 / 1e6);
        node_base += workers;
    }

    let makespan = per_node_seconds.iter().cloned().fold(0.0, f64::max);
    let platform = format!("dryad-sim-{}", itype.name);
    // Identical f64 makespan in meta and summary: Eq. 1 recomputed from
    // the trace matches the engine exactly.
    let trace = rec.as_ref().and_then(|rec| {
        rec.set_meta(RunMeta {
            platform: platform.clone(),
            cores: cluster.total_workers(),
            tasks: tasks.len() - vertex_failures,
            makespan_seconds: makespan,
        });
        rec.span(Span::job(makespan));
        rec.snapshot()
    });
    DryadReport {
        core: RunReport {
            summary: RunSummary {
                platform,
                cores: cluster.total_workers(),
                tasks: tasks.len() - vertex_failures,
                makespan_seconds: makespan,
                redundant_executions: vertex_retries + hedged_losers,
                remote_bytes: 0,
            },
            failed,
            total_attempts,
            worker_deaths: deaths,
            cost: Some(cluster.cost(makespan)),
            trace,
        },
        per_node_seconds,
        vertex_failures,
        vertex_retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::BARE_HPC16;
    use ppc_core::task::ResourceProfile;

    fn cpu_tasks(n: u64, secs: f64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| TaskSpec::new(i, "t", format!("f{i}"), ResourceProfile::cpu_bound(secs)))
            .collect()
    }

    fn quiet() -> DryadSimConfig {
        DryadSimConfig {
            vertex_overhead_s: 0.0,
            local_io: LatencyModel::FREE,
            jitter_sigma: 0.0,
            ..Default::default()
        }
    }

    // Route the legacy-named helpers through the RunContext entry point
    // (explicit items shadow the glob-imported deprecated shims).
    fn simulate(cluster: &Cluster, tasks: &[TaskSpec], cfg: &DryadSimConfig) -> DryadReport {
        crate::simulate(&RunContext::new(cluster), tasks, cfg)
    }

    fn simulate_chaos(
        cluster: &Cluster,
        tasks: &[TaskSpec],
        cfg: &DryadSimConfig,
        schedule: Option<Arc<FaultSchedule>>,
    ) -> DryadReport {
        crate::simulate(
            &RunContext::new(cluster).with_schedule(schedule),
            tasks,
            cfg,
        )
    }

    #[test]
    fn ideal_homogeneous_makespan() {
        // 64 homogeneous 10s tasks (ref clock 2.5GHz; HPC16 runs 2.3GHz so
        // each takes 10*2.5/2.3s), 2 nodes x 16 workers: 2 waves.
        let cluster = Cluster::provision(BARE_HPC16, 2, 16);
        let report = simulate(&cluster, &cpu_tasks(64, 10.0), &quiet());
        let expect = 2.0 * 10.0 * 2.5 / 2.3;
        assert!(
            (report.summary.makespan_seconds - expect).abs() < 1e-3,
            "{}",
            report.summary.makespan_seconds
        );
        assert!((report.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inhomogeneous_data_causes_imbalance() {
        // Sorted task sizes + round-robin over 2 nodes is fine, but one hot
        // node: tasks 0..32 long, 32..64 short -> contiguous halves hit
        // different nodes only under contiguous partitioning; with
        // round-robin, craft sizes by parity instead.
        let tasks: Vec<TaskSpec> = (0..64)
            .map(|i| {
                let secs = if i % 2 == 0 { 30.0 } else { 5.0 };
                TaskSpec::new(i, "t", format!("f{i}"), ResourceProfile::cpu_bound(secs))
            })
            .collect();
        let cluster = Cluster::provision(BARE_HPC16, 2, 16);
        let report = simulate(&cluster, &tasks, &quiet());
        assert!(report.imbalance() > 1.3, "imbalance {}", report.imbalance());
    }

    #[test]
    fn vertex_overhead_extends_makespan() {
        let cluster = Cluster::provision(BARE_HPC16, 2, 16);
        let lean = simulate(&cluster, &cpu_tasks(64, 10.0), &quiet());
        let heavy = simulate(
            &cluster,
            &cpu_tasks(64, 10.0),
            &DryadSimConfig {
                vertex_overhead_s: 1.0,
                jitter_sigma: 0.0,
                local_io: LatencyModel::FREE,
                ..Default::default()
            },
        );
        assert!(heavy.summary.makespan_seconds > lean.summary.makespan_seconds);
    }

    #[test]
    fn deterministic() {
        let cluster = Cluster::provision(BARE_HPC16, 4, 16);
        let tasks = cpu_tasks(100, 3.0);
        let cfg = DryadSimConfig::default();
        assert_eq!(
            simulate(&cluster, &tasks, &cfg).summary.makespan_seconds,
            simulate(&cluster, &tasks, &cfg).summary.makespan_seconds
        );
    }

    #[test]
    fn chaos_costs_time_and_stays_deterministic() {
        let cluster = Cluster::provision(BARE_HPC16, 2, 16);
        let tasks = cpu_tasks(64, 10.0);
        let cfg = quiet();
        let schedule = Arc::new(
            FaultSchedule::new(13)
                .kill_at(0, 5.0)
                .degrade(17, 2.0, 0.0, 40.0)
                .with_death_probabilities(0.05, 0.03, 0.02),
        );
        let clean = simulate(&cluster, &tasks, &cfg);
        let a = simulate_chaos(&cluster, &tasks, &cfg, Some(schedule.clone()));
        let b = simulate_chaos(&cluster, &tasks, &cfg, Some(schedule));
        assert_eq!(a.vertex_failures, 0);
        assert_eq!(a.summary.tasks, 64);
        assert!(a.vertex_retries > 0, "chaos must cost re-runs");
        assert!(
            a.summary.makespan_seconds > clean.summary.makespan_seconds,
            "chaos must cost time: {} vs {}",
            a.summary.makespan_seconds,
            clean.summary.makespan_seconds
        );
        assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
        assert_eq!(a.vertex_retries, b.vertex_retries);
    }

    #[test]
    #[should_panic(expected = "vertex_overhead_s")]
    fn invalid_sim_config_panics_with_message() {
        let cluster = Cluster::provision(BARE_HPC16, 1, 1);
        let cfg = DryadSimConfig {
            vertex_overhead_s: -1.0,
            ..Default::default()
        };
        simulate(&cluster, &cpu_tasks(2, 1.0), &cfg);
    }

    #[test]
    fn sim_hedging_rescues_gray_straggler() {
        use ppc_resilience::HedgeConfig;
        // Slot 0 is gray (30x): its in-hand vertex would run ~326s; a
        // backup vertex on a healthy slot wins in ~26s instead.
        let cluster = Cluster::provision(BARE_HPC16, 1, 8);
        let tasks = cpu_tasks(64, 10.0);
        let schedule = Arc::new(FaultSchedule::new(11).degrade(0, 30.0, 0.0, 1e9));
        let cfg = DryadSimConfig {
            trace: true,
            ..quiet()
        };
        let plain = simulate_chaos(&cluster, &tasks, &cfg, Some(schedule.clone()));
        let hedged_cfg = DryadSimConfig {
            resilience: Some(ResiliencePolicy::hedged(HedgeConfig::quantile(15.0))),
            ..cfg
        };
        let hedged = simulate_chaos(&cluster, &tasks, &hedged_cfg, Some(schedule));
        assert_eq!(hedged.summary.tasks, 64);
        let trace = hedged.core.trace.as_ref().unwrap();
        assert!(trace.events_of_kind(EventKind::Hedge) > 0);
        assert!(
            hedged.summary.redundant_executions > plain.summary.redundant_executions,
            "losing duplicates count as redundant work"
        );
        assert!(
            hedged.summary.makespan_seconds < plain.summary.makespan_seconds,
            "hedged {} vs unhedged {}",
            hedged.summary.makespan_seconds,
            plain.summary.makespan_seconds
        );
    }

    #[test]
    fn sim_quarantine_benches_gray_slot() {
        use ppc_resilience::QuarantineConfig;
        // Slot 0 is gray (30x): after two ~327s vertices its EWMA is far
        // past 3x the fleet median, so it is benched and the list schedule
        // flows around it.
        let cluster = Cluster::provision(BARE_HPC16, 1, 8);
        let tasks = cpu_tasks(512, 10.0);
        let schedule = Arc::new(FaultSchedule::new(11).degrade(0, 30.0, 0.0, 1e9));
        let cfg = DryadSimConfig {
            trace: true,
            ..quiet()
        };
        let plain = simulate_chaos(&cluster, &tasks, &cfg, Some(schedule.clone()));
        let defended_cfg = DryadSimConfig {
            resilience: Some(
                ResiliencePolicy::default().with_quarantine(QuarantineConfig {
                    min_samples: 2,
                    quarantine_s: 1e5,
                    ..Default::default()
                }),
            ),
            ..cfg
        };
        let defended = simulate_chaos(&cluster, &tasks, &defended_cfg, Some(schedule));
        assert_eq!(defended.summary.tasks, 512);
        let trace = defended.core.trace.as_ref().unwrap();
        assert!(trace.events_of_kind(EventKind::Quarantine) > 0);
        assert!(
            defended.summary.makespan_seconds < plain.summary.makespan_seconds,
            "defended {} vs undefended {}",
            defended.summary.makespan_seconds,
            plain.summary.makespan_seconds
        );
    }

    #[test]
    fn sim_deadline_cancels_and_requeues() {
        // A 60s deadline cuts the gray slot's ~327s vertex and re-runs it
        // through slot selection.
        let cluster = Cluster::provision(BARE_HPC16, 1, 8);
        let tasks = cpu_tasks(64, 10.0);
        let schedule = Arc::new(FaultSchedule::new(11).degrade(0, 30.0, 0.0, 1e9));
        let cfg = DryadSimConfig {
            trace: true,
            resilience: Some(ResiliencePolicy::default().with_deadline(60.0)),
            ..quiet()
        };
        let report = simulate_chaos(&cluster, &tasks, &cfg, Some(schedule));
        assert_eq!(report.summary.tasks, 64, "no vertex may be lost");
        let trace = report.core.trace.as_ref().unwrap();
        assert!(trace.events_of_kind(EventKind::Cancel) > 0);
    }

    #[test]
    fn windows_speedup_applies() {
        // Cap3's 12.5% Windows advantage shows up on the Windows HPC nodes.
        let cluster = Cluster::provision(BARE_HPC16, 2, 16);
        let tasks = cpu_tasks(64, 10.0);
        let linux_app = simulate(&cluster, &tasks, &quiet());
        let win_app = simulate(
            &cluster,
            &tasks,
            &DryadSimConfig {
                app: AppModel::cap3(),
                ..quiet()
            },
        );
        assert!(win_app.summary.makespan_seconds < linux_app.summary.makespan_seconds);
    }
}
