//! The native Dryad-style job runner for the paper's pattern: a homomorphic
//! `select` over statically partitioned inputs.
//!
//! Inputs are split across nodes **before** the job starts (the Windows
//! shared directories of §2.3); each node then processes only its own list
//! using its worker threads. Dynamic balancing happens *within* a node
//! (vertices share the node's cores) but never across nodes — the defining
//! limitation measured in the paper's load-balancing discussion (§4.2).

use ppc_chaos::{FaultSchedule, RunClock};
use ppc_compute::cluster::Cluster;
use ppc_core::exec::Executor;
use ppc_core::json::Json;
use ppc_core::metrics::RunSummary;
use ppc_core::retry::RetryPolicy;
use ppc_core::rng::Pcg32;
use ppc_core::task::{TaskId, TaskSpec};
use ppc_core::{PpcError, Result};
use ppc_exec::{RunContext, RunReport};
use ppc_resilience::{Health, HealthTracker, HedgePolicy, ResiliencePolicy};
use ppc_trace::{AttemptMarker, EventKind, Phase, RunMeta, Span, TraceEvent, TraceSink, NO_WORKER};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration for the native Dryad runtime.
#[derive(Debug, Clone)]
pub struct DryadConfig {
    /// Fail the whole job on the first unrecoverable vertex failure.
    pub fail_fast: bool,
    /// Re-run a failed vertex up to this many extra times before giving up
    /// — Table 3's "re-execution of failed ... tasks" for Dryad.
    pub max_retries: u32,
    /// Seed for the per-slot retry-backoff RNG streams.
    pub seed: u64,
    /// Deterministic fault schedule. Slots are addressed by flat
    /// node-major index; a scheduled kill takes a vertex slot down (its
    /// in-hand vertex goes back on the node's local list), death dice and
    /// torn outputs fail single vertex attempts.
    pub schedule: Option<Arc<FaultSchedule>>,
    /// Span sink for the run; `None` (or a disabled sink) records nothing
    /// and the report carries the finished [`ppc_trace::Trace`].
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Straggler and gray-failure defense. With a hedge or deadline config,
    /// idle vertex slots launch *backup vertices* for running stragglers on
    /// their own node (re-execution still never crosses nodes); the first
    /// Ok attempt wins and losers count as redundant executions. With a
    /// quarantine config, gray slots are benched off the local work list.
    /// `None` (the default) keeps the legacy runtime bit-identical.
    pub resilience: Option<ResiliencePolicy>,
}

impl Default for DryadConfig {
    fn default() -> Self {
        DryadConfig {
            fail_fast: false,
            max_retries: 2,
            seed: 0xd12ad,
            schedule: None,
            trace: None,
            resilience: None,
        }
    }
}

/// Report of one Dryad job run: the cross-paradigm [`RunReport`] core
/// (summary, failed tasks, attempt/death counters, cost, trace —
/// reachable directly through `Deref`) plus the Dryad-specific extras.
#[derive(Debug, Clone)]
pub struct DryadReport {
    /// The shared report core; `report.summary`, `report.failed`,
    /// `report.total_attempts`, `report.worker_deaths`, `report.cost`,
    /// and `report.trace` all live here.
    pub core: RunReport,
    /// Wall seconds each node took to clear its static partition.
    pub per_node_seconds: Vec<f64>,
    /// Vertices that failed *permanently* (exhausted their retries);
    /// `core.failed` lists their task ids.
    pub vertex_failures: usize,
    /// Vertex re-executions that recovered a transient failure.
    pub vertex_retries: usize,
}

impl std::ops::Deref for DryadReport {
    type Target = RunReport;
    fn deref(&self) -> &RunReport {
        &self.core
    }
}

impl std::ops::DerefMut for DryadReport {
    fn deref_mut(&mut self) -> &mut RunReport {
        &mut self.core
    }
}

impl DryadReport {
    /// Max node time over mean node time — 1.0 is perfect balance. The
    /// paper's inhomogeneous-data studies show this growing for DryadLINQ
    /// while Hadoop's global queue keeps it near 1.
    pub fn imbalance(&self) -> f64 {
        let n = self.per_node_seconds.len();
        if n == 0 {
            return 1.0;
        }
        let max = self.per_node_seconds.iter().cloned().fold(0.0, f64::max);
        let mean = self.per_node_seconds.iter().sum::<f64>() / n as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// JSON rendering: the core's canonical object
    /// ([`RunReport::to_json`]) extended with the Dryad extras.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.core.to_json() else {
            unreachable!("RunReport::to_json returns an object");
        };
        fields.push(("imbalance".into(), Json::from(self.imbalance())));
        fields.push((
            "vertex_retries".into(),
            Json::from(self.vertex_retries as u64),
        ));
        Json::Obj(fields)
    }
}

/// (output key, output bytes) pairs, in completion order.
pub use ppc_exec::JobOutputs;

/// Run `executor` over every input, statically partitioned round-robin
/// across the cluster's nodes. Returns the report and the outputs
/// (output key → bytes), in completion order.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_dryad::run`")]
pub fn run_homomorphic_job(
    cluster: &Cluster,
    inputs: Vec<(TaskSpec, Vec<u8>)>,
    executor: Arc<dyn Executor>,
    config: &DryadConfig,
) -> Result<(DryadReport, JobOutputs)> {
    crate::harness::run(&RunContext::new(cluster), inputs, executor, config)
}

/// [`run_homomorphic_job`] under a deterministic [`FaultSchedule`].
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_dryad::run`")]
pub fn run_homomorphic_job_chaos(
    cluster: &Cluster,
    inputs: Vec<(TaskSpec, Vec<u8>)>,
    executor: Arc<dyn Executor>,
    config: &DryadConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> Result<(DryadReport, JobOutputs)> {
    crate::harness::run(
        &RunContext::new(cluster).with_schedule(schedule),
        inputs,
        executor,
        config,
    )
}

/// The native runtime body, reached through [`crate::run`].
///
/// Workers are addressed by flat slot index (node-major). A scheduled kill
/// takes a vertex slot down: its in-hand vertex goes back on the node's
/// local list for a surviving slot — re-execution never crosses nodes,
/// which is exactly DryadLINQ's static-partitioning constraint. Death dice
/// and torn outputs fail a single vertex attempt, recovered by the shared
/// retry layer. Cloud-storage outage windows do *not* apply: Dryad reads
/// node-local files (the paper's Windows shared directories).
pub(crate) fn run_impl(
    cluster: &Cluster,
    inputs: Vec<(TaskSpec, Vec<u8>)>,
    executor: Arc<dyn Executor>,
    config: &DryadConfig,
) -> Result<(DryadReport, JobOutputs)> {
    if inputs.is_empty() {
        return Err(PpcError::InvalidArgument("no inputs".into()));
    }
    let schedule = config.schedule.clone();
    if let Some(schedule) = &schedule {
        schedule.validate()?;
    }
    if let Some(policy) = &config.resilience {
        policy.validate()?;
    }
    let n_tasks = inputs.len();
    let n_nodes = cluster.n_nodes();
    // Static node-level partitioning, fixed before execution.
    let partitions = crate::partition::partition_round_robin(inputs, n_nodes);
    // Flat worker index of each node's first slot.
    let node_bases: Vec<usize> = cluster
        .nodes()
        .iter()
        .scan(0usize, |acc, n| {
            let base = *acc;
            *acc += n.workers;
            Some(base)
        })
        .collect();

    let outputs: Mutex<Vec<(String, Vec<u8>)>> = Mutex::new(Vec::new());
    let failures = AtomicUsize::new(0);
    let failed_ids: Mutex<Vec<TaskId>> = Mutex::new(Vec::new());
    let retries = AtomicUsize::new(0);
    let attempts_total = AtomicUsize::new(0);
    let deaths = AtomicUsize::new(0);
    let first_error: Mutex<Option<PpcError>> = Mutex::new(None);
    let per_node: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n_nodes]);
    let total_bytes = AtomicUsize::new(0);
    let redundant = AtomicUsize::new(0);
    let chaos = schedule.as_deref();
    let sink = config.trace.as_deref().filter(|s| s.enabled());
    let clock = RunClock::start();

    // Cluster-wide defense state: one hedge policy and one health tracker
    // shared by every node, so latency observations feed a single quantile
    // even though backup vertices themselves never cross nodes.
    let hedge_state = config
        .resilience
        .and_then(|p| p.hedge)
        .map(|cfg| Mutex::new(HedgePolicy::new(cfg)));
    let health_state = config
        .resilience
        .and_then(|p| p.quarantine)
        .map(|cfg| Mutex::new(HealthTracker::new(cfg)));

    let ctx = SlotCtx {
        executor: &executor,
        sink,
        chaos,
        clock: &clock,
        config,
        outputs: &outputs,
        failures: &failures,
        failed_ids: &failed_ids,
        retries: &retries,
        attempts_total: &attempts_total,
        deaths: &deaths,
        first_error: &first_error,
        total_bytes: &total_bytes,
    };
    let finished_s = Mutex::new(0f64);
    let defense = config.resilience.map(|policy| Defense {
        policy,
        hedge: hedge_state.as_ref(),
        health: health_state.as_ref(),
        redundant: &redundant,
        finished_s: &finished_s,
        n_tasks,
    });

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (node, node_inputs) in partitions.into_iter().enumerate() {
            let workers = cluster.nodes()[node].workers;
            let node_base = node_bases[node];
            let ctx = &ctx;
            let defense = defense.as_ref();
            let per_node = &per_node;
            scope.spawn(move || {
                let node_start = Instant::now();
                let node_defense = defense.map(|_| NodeDefense {
                    registry: Mutex::new(HashMap::new()),
                    done: Mutex::new(HashSet::new()),
                    remaining: AtomicUsize::new(node_inputs.len()),
                });
                // Within the node, vertices share a local work list.
                let local: Mutex<VecDeque<(TaskSpec, Vec<u8>)>> = Mutex::new(node_inputs.into());
                std::thread::scope(|inner| {
                    for slot in 0..workers {
                        let local = &local;
                        let node_defense = node_defense.as_ref();
                        let worker = (node_base + slot) as u32;
                        inner.spawn(move || match (defense, node_defense) {
                            (Some(d), Some(nd)) => defended_slot_loop(ctx, d, nd, local, worker),
                            _ => legacy_slot_loop(ctx, local, worker),
                        });
                    }
                });
                per_node.lock().unwrap()[node] = node_start.elapsed().as_secs_f64();
            });
        }
    });
    // Under a defense policy the job is done when its last vertex settles;
    // losing duplicate threads may still be draining past that point and
    // must not count against the makespan.
    let makespan = match defense {
        Some(_) => {
            let settled = *finished_s.lock().unwrap();
            if settled > 0.0 {
                settled
            } else {
                start.elapsed().as_secs_f64()
            }
        }
        None => start.elapsed().as_secs_f64(),
    };

    let vertex_failures = failures.load(Ordering::Relaxed);
    if config.fail_fast && vertex_failures > 0 {
        return Err(first_error.into_inner().unwrap().expect("failure recorded"));
    }
    let outputs = outputs.into_inner().unwrap();
    // The meta carries the *same* f64 makespan the summary reports, so
    // Eq. 1 recomputed from the trace matches the engine exactly.
    let trace = sink.and_then(|s| {
        s.set_meta(RunMeta {
            platform: "dryadlinq".into(),
            cores: cluster.total_workers(),
            tasks: outputs.len(),
            makespan_seconds: makespan,
        });
        s.span(Span::job(makespan));
        s.snapshot()
    });
    let vertex_retries = retries.load(Ordering::Relaxed);
    let report = DryadReport {
        core: RunReport {
            summary: RunSummary {
                platform: "dryadlinq".into(),
                cores: cluster.total_workers(),
                tasks: outputs.len(),
                makespan_seconds: makespan,
                redundant_executions: redundant.load(Ordering::Relaxed),
                remote_bytes: 0, // node-local files only
            },
            failed: failed_ids.into_inner().unwrap(),
            total_attempts: attempts_total.load(Ordering::Relaxed),
            worker_deaths: deaths.load(Ordering::Relaxed),
            cost: Some(cluster.cost(makespan)),
            trace,
        },
        per_node_seconds: per_node.into_inner().unwrap(),
        vertex_failures,
        vertex_retries,
    };
    Ok((report, outputs))
}

/// Everything a vertex slot touches, shared across every node's slots.
struct SlotCtx<'a> {
    executor: &'a Arc<dyn Executor>,
    sink: Option<&'a dyn TraceSink>,
    chaos: Option<&'a FaultSchedule>,
    clock: &'a RunClock,
    config: &'a DryadConfig,
    outputs: &'a Mutex<Vec<(String, Vec<u8>)>>,
    failures: &'a AtomicUsize,
    failed_ids: &'a Mutex<Vec<TaskId>>,
    retries: &'a AtomicUsize,
    attempts_total: &'a AtomicUsize,
    deaths: &'a AtomicUsize,
    first_error: &'a Mutex<Option<PpcError>>,
    total_bytes: &'a AtomicUsize,
}

/// Cluster-wide defense state shared by every node when a
/// [`ResiliencePolicy`] is configured.
struct Defense<'a> {
    policy: ResiliencePolicy,
    hedge: Option<&'a Mutex<HedgePolicy>>,
    health: Option<&'a Mutex<HealthTracker>>,
    redundant: &'a AtomicUsize,
    /// Clock time the last vertex settled (committed or permanently
    /// failed). Native threads cannot be interrupted, so losing duplicates
    /// may still be draining after this point; the defended report's
    /// makespan is this settle time, not the join time.
    finished_s: &'a Mutex<f64>,
    n_tasks: usize,
}

/// A vertex some slot on this node is currently running, visible to the
/// node's other slots as a backup candidate.
struct RunningVertex {
    spec: TaskSpec,
    input: Vec<u8>,
    started_s: f64,
    /// Attempts (original + backups) still in flight.
    live: u32,
    hedged: bool,
    cancelled: bool,
    /// Next attempt index to hand a backup; starts past the retry layer's
    /// range so backup spans never collide with primary retries.
    next_attempt: u32,
}

/// Per-node defense state: the running-vertex registry idle slots scan for
/// backup candidates, the first-result-wins commit set, and the count of
/// vertices not yet committed or permanently failed.
struct NodeDefense {
    registry: Mutex<HashMap<u64, RunningVertex>>,
    done: Mutex<HashSet<u64>>,
    remaining: AtomicUsize,
}

/// What an idle slot found while scanning the node's registry.
enum Backup {
    /// Run this backup attempt.
    Run(TaskSpec, Vec<u8>, u32),
    /// Nothing eligible yet, but vertices are still outstanding.
    Wait,
    /// The node's partition is fully settled.
    Done,
}

/// Score a successful attempt with the health tracker, emitting a
/// Quarantine event if this observation benches the worker.
fn note_success(
    health: Option<&Mutex<HealthTracker>>,
    sink: Option<&dyn TraceSink>,
    worker: u32,
    latency_s: f64,
    now_s: f64,
) {
    let Some(health) = health else { return };
    let mut tracker = health.lock().unwrap();
    let before = matches!(tracker.health(worker), Health::Quarantined { .. });
    tracker.record_success(worker, latency_s, now_s);
    let benched = !before && matches!(tracker.health(worker), Health::Quarantined { .. });
    drop(tracker);
    if benched {
        if let Some(s) = sink {
            s.event(TraceEvent {
                at_s: now_s,
                worker,
                kind: EventKind::Quarantine,
            });
        }
    }
}

/// Score a failed attempt with the health tracker, emitting a Quarantine
/// event if this failure benches the worker.
fn note_failure(
    health: Option<&Mutex<HealthTracker>>,
    sink: Option<&dyn TraceSink>,
    worker: u32,
    now_s: f64,
) {
    let Some(health) = health else { return };
    let mut tracker = health.lock().unwrap();
    let before = matches!(tracker.health(worker), Health::Quarantined { .. });
    tracker.record_failure(worker, now_s);
    let benched = !before && matches!(tracker.health(worker), Health::Quarantined { .. });
    drop(tracker);
    if benched {
        if let Some(s) = sink {
            s.event(TraceEvent {
                at_s: now_s,
                worker,
                kind: EventKind::Quarantine,
            });
        }
    }
}

/// One traced vertex attempt: chaos dice (primary first attempts only),
/// local read, execute, and the terminal write mark on success.
fn vertex_attempt(
    ctx: &SlotCtx,
    spec: &TaskSpec,
    input: &[u8],
    worker: u32,
    seq: u32,
    attempt: u32,
    dice: bool,
) -> Result<Vec<u8>> {
    ctx.attempts_total.fetch_add(1, Ordering::Relaxed);
    let attempt_start = Instant::now();
    // Each attempt is its own span subtree; dropping the marker on a
    // failure path still closes it.
    let mut tt = ctx.sink.map(|s| {
        let mut tt = AttemptMarker::new(s, spec.id.0, attempt, worker, ctx.clock.now_s());
        tt.mark(Phase::VertexStart, ctx.clock.now_s());
        tt
    });
    if let Some(schedule) = ctx.chaos {
        // Any death die or a torn output costs exactly one failed attempt;
        // the job manager re-runs the vertex.
        if dice {
            let died = schedule.die_before_execute(worker, seq)
                || schedule.die_mid_execute(worker, seq)
                || schedule.die_before_delete(worker, seq);
            if died || schedule.is_torn_upload(worker, seq) {
                if died {
                    ctx.deaths.fetch_add(1, Ordering::Relaxed);
                    if let Some(s) = ctx.sink {
                        s.event(TraceEvent {
                            at_s: ctx.clock.now_s(),
                            worker,
                            kind: EventKind::Death,
                        });
                    }
                }
                return Err(PpcError::Transient("chaos: vertex attempt killed".into()));
            }
        }
    }
    // Inputs are already in node-local memory: the read phase is an
    // instant, but it keeps the native phase set aligned with the
    // simulator's.
    if let Some(tt) = tt.as_mut() {
        tt.mark(Phase::ReadLocal, ctx.clock.now_s());
    }
    let r = ctx.executor.run(spec, input);
    // Gray degradation stretches the execute phase itself, so a straggling
    // attempt is slow in the trace and loses the commit race for real.
    apply_gray_slowdown(ctx, worker, attempt_start);
    if let Some(tt) = tt.as_mut() {
        tt.mark(Phase::Execute, ctx.clock.now_s());
        if r.is_ok() {
            // Under hedging a backup vertex may race this attempt; the
            // write that reaches the commit set first is the terminal one.
            tt.mark(Phase::Write, ctx.clock.now_s());
        }
    }
    r
}

/// Stretch the slot's wall time under a gray degradation window.
fn apply_gray_slowdown(ctx: &SlotCtx, worker: u32, vertex_start: Instant) {
    if let Some(schedule) = ctx.chaos {
        let factor = schedule.slowdown(worker, ctx.clock.now_s());
        if factor > 1.0 {
            std::thread::sleep(vertex_start.elapsed().mul_f64(factor - 1.0));
        }
    }
}

/// The legacy slot loop: pull vertices off the node's local list until it
/// drains. Exactly the pre-resilience behavior — the `None` policy path.
fn legacy_slot_loop(ctx: &SlotCtx, local: &Mutex<VecDeque<(TaskSpec, Vec<u8>)>>, worker: u32) {
    if let Some(s) = ctx.sink {
        s.event(TraceEvent {
            at_s: ctx.clock.now_s(),
            worker,
            kind: EventKind::WorkerStart,
        });
    }
    // Re-execute a failed vertex (Table 3's Dryad fault tolerance) through
    // the shared retry layer before declaring it failed.
    let policy = RetryPolicy::immediate(ctx.config.max_retries + 1);
    let mut rng = Pcg32::for_stream(ctx.config.seed, worker as u64);
    let mut task_seq: u32 = 0;
    let mut last_kill_s: f64 = 0.0;
    loop {
        let item = local.lock().unwrap().pop_front();
        let (spec, input) = match item {
            Some(x) => x,
            None => break,
        };
        if let Some(schedule) = ctx.chaos {
            let now_s = ctx.clock.now_s();
            if schedule.kills_in(worker, last_kill_s, now_s) {
                // Slot dies: hand the vertex back to a surviving slot on
                // this node.
                ctx.deaths.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = ctx.sink {
                    s.event(TraceEvent {
                        at_s: now_s,
                        worker,
                        kind: EventKind::Death,
                    });
                }
                local.lock().unwrap().push_front((spec, input));
                break;
            }
            last_kill_s = now_s;
        }
        let seq = task_seq;
        task_seq += 1;
        let mut used_attempts = 0u32;
        let out = policy.run_blocking(&mut rng, |attempt| {
            used_attempts = attempt;
            vertex_attempt(ctx, &spec, &input, worker, seq, attempt, attempt == 0)
        });
        match out {
            Ok(out) => {
                if used_attempts > 0 {
                    ctx.retries
                        .fetch_add(used_attempts as usize, Ordering::Relaxed);
                }
                ctx.total_bytes.fetch_add(out.len(), Ordering::Relaxed);
                ctx.outputs
                    .lock()
                    .unwrap()
                    .push((spec.output_key.clone(), out));
            }
            Err(e) => {
                ctx.failures.fetch_add(1, Ordering::Relaxed);
                ctx.failed_ids.lock().unwrap().push(spec.id);
                let mut fe = ctx.first_error.lock().unwrap();
                if fe.is_none() {
                    *fe = Some(e);
                }
            }
        }
    }
}

/// The defended slot loop: like [`legacy_slot_loop`], but every running
/// vertex is registered as a backup candidate, idle slots launch backup
/// vertices for deadline breaches and hedge-eligible stragglers on their
/// own node, the first Ok attempt wins (losers count as redundant work),
/// and quarantined slots are benched off the local list until released.
fn defended_slot_loop(
    ctx: &SlotCtx,
    defense: &Defense,
    node: &NodeDefense,
    local: &Mutex<VecDeque<(TaskSpec, Vec<u8>)>>,
    worker: u32,
) {
    if let Some(s) = ctx.sink {
        s.event(TraceEvent {
            at_s: ctx.clock.now_s(),
            worker,
            kind: EventKind::WorkerStart,
        });
    }
    let retry = RetryPolicy::immediate(ctx.config.max_retries + 1);
    let mut rng = Pcg32::for_stream(ctx.config.seed, worker as u64);
    let mut task_seq: u32 = 0;
    let mut last_kill_s: f64 = 0.0;
    loop {
        if let Some(health) = defense.health {
            // Quarantine gate: a benched slot naps instead of pulling work.
            // Its share of the list is picked up by the node's other slots
            // (within-node balancing is dynamic; across nodes it is not).
            let now_s = ctx.clock.now_s();
            let mut tracker = health.lock().unwrap();
            let was_benched = matches!(tracker.health(worker), Health::Quarantined { .. });
            if !tracker.allow(worker, now_s) {
                drop(tracker);
                if node.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::thread::sleep(Duration::from_micros(500));
                continue;
            }
            drop(tracker);
            if was_benched {
                if let Some(s) = ctx.sink {
                    s.event(TraceEvent {
                        at_s: now_s,
                        worker,
                        kind: EventKind::Release,
                    });
                }
            }
        }
        let item = local.lock().unwrap().pop_front();
        match item {
            Some((spec, input)) => {
                if let Some(schedule) = ctx.chaos {
                    let now_s = ctx.clock.now_s();
                    if schedule.kills_in(worker, last_kill_s, now_s) {
                        ctx.deaths.fetch_add(1, Ordering::Relaxed);
                        if let Some(s) = ctx.sink {
                            s.event(TraceEvent {
                                at_s: now_s,
                                worker,
                                kind: EventKind::Death,
                            });
                        }
                        local.lock().unwrap().push_front((spec, input));
                        break;
                    }
                    last_kill_s = now_s;
                }
                let seq = task_seq;
                task_seq += 1;
                // Register before running so other slots can back this
                // vertex up while it is in flight.
                node.registry.lock().unwrap().insert(
                    spec.id.0,
                    RunningVertex {
                        spec: spec.clone(),
                        input: input.clone(),
                        started_s: ctx.clock.now_s(),
                        live: 1,
                        hedged: false,
                        cancelled: false,
                        next_attempt: ctx.config.max_retries + 1,
                    },
                );
                let vertex_start = Instant::now();
                let mut used_attempts = 0u32;
                let out = retry.run_blocking(&mut rng, |attempt| {
                    used_attempts = attempt;
                    let r = vertex_attempt(ctx, &spec, &input, worker, seq, attempt, attempt == 0);
                    if r.is_err() {
                        note_failure(defense.health, ctx.sink, worker, ctx.clock.now_s());
                    }
                    r
                });
                let latency_s = vertex_start.elapsed().as_secs_f64();
                finish_attempt(
                    ctx,
                    defense,
                    node,
                    &spec,
                    worker,
                    out,
                    used_attempts,
                    latency_s,
                );
            }
            None => match next_backup(ctx, defense, node) {
                Backup::Run(spec, input, attempt) => {
                    let vertex_start = Instant::now();
                    // Backups roll no chaos dice: the dice model per-pull
                    // hazards and this slot already survived its pull.
                    let out = vertex_attempt(ctx, &spec, &input, worker, 0, attempt, false);
                    if out.is_err() {
                        note_failure(defense.health, ctx.sink, worker, ctx.clock.now_s());
                    }
                    let latency_s = vertex_start.elapsed().as_secs_f64();
                    finish_attempt(ctx, defense, node, &spec, worker, out, 0, latency_s);
                }
                Backup::Wait => std::thread::sleep(Duration::from_micros(200)),
                Backup::Done => break,
            },
        }
    }
}

/// Scan the node's registry for a backup candidate: deadline breaches
/// first (cancel-and-re-execute), then hedge-eligible stragglers.
fn next_backup(ctx: &SlotCtx, defense: &Defense, node: &NodeDefense) -> Backup {
    if node.remaining.load(Ordering::Acquire) == 0 {
        return Backup::Done;
    }
    let now_s = ctx.clock.now_s();
    let mut reg = node.registry.lock().unwrap();
    let done = node.done.lock().unwrap();
    if let Some(d) = defense.policy.deadline {
        if let Some(e) = reg.values_mut().find(|e| {
            !done.contains(&e.spec.id.0) && !e.cancelled && now_s - e.started_s > d.timeout_s
        }) {
            // Native threads cannot be interrupted, so "cancel" here means
            // the overdue attempt is logically abandoned: a replacement
            // launches now and whichever finishes first still wins.
            e.cancelled = true;
            e.live += 1;
            let attempt = e.next_attempt;
            e.next_attempt += 1;
            if let Some(s) = ctx.sink {
                s.event(TraceEvent {
                    at_s: now_s,
                    worker: NO_WORKER,
                    kind: EventKind::Cancel,
                });
            }
            return Backup::Run(e.spec.clone(), e.input.clone(), attempt);
        }
    }
    if let Some(hedge) = defense.hedge {
        let mut policy = hedge.lock().unwrap();
        if let Some(e) = reg.values_mut().find(|e| {
            !done.contains(&e.spec.id.0)
                && !e.hedged
                && policy.should_hedge(now_s - e.started_s, e.live, defense.n_tasks)
        }) {
            policy.record_hedge();
            e.hedged = true;
            e.live += 1;
            let attempt = e.next_attempt;
            e.next_attempt += 1;
            if let Some(s) = ctx.sink {
                s.event(TraceEvent {
                    at_s: now_s,
                    worker: NO_WORKER,
                    kind: EventKind::Hedge,
                });
            }
            return Backup::Run(e.spec.clone(), e.input.clone(), attempt);
        }
    }
    Backup::Wait
}

/// Settle one finished attempt (primary or backup): first Ok wins and
/// commits the output, losing duplicates count as redundant work, and a
/// permanent failure is recorded only once every live attempt has failed.
#[allow(clippy::too_many_arguments)]
fn finish_attempt(
    ctx: &SlotCtx,
    defense: &Defense,
    node: &NodeDefense,
    spec: &TaskSpec,
    worker: u32,
    out: Result<Vec<u8>>,
    used_attempts: u32,
    latency_s: f64,
) {
    let now_s = ctx.clock.now_s();
    match out {
        Ok(bytes) => {
            let winner = node.done.lock().unwrap().insert(spec.id.0);
            if winner {
                if used_attempts > 0 {
                    ctx.retries
                        .fetch_add(used_attempts as usize, Ordering::Relaxed);
                }
                ctx.total_bytes.fetch_add(bytes.len(), Ordering::Relaxed);
                ctx.outputs
                    .lock()
                    .unwrap()
                    .push((spec.output_key.clone(), bytes));
                if let Some(hedge) = defense.hedge {
                    hedge.lock().unwrap().observe(latency_s);
                }
                node.remaining.fetch_sub(1, Ordering::AcqRel);
                let mut f = defense.finished_s.lock().unwrap();
                *f = f.max(now_s);
            } else {
                // A duplicate lost the race: its bytes are discarded —
                // exactly-once output, the work was redundant.
                defense.redundant.fetch_add(1, Ordering::Relaxed);
            }
            note_success(defense.health, ctx.sink, worker, latency_s, now_s);
            let mut reg = node.registry.lock().unwrap();
            if let Some(e) = reg.get_mut(&spec.id.0) {
                e.live = e.live.saturating_sub(1);
                if e.live == 0 {
                    reg.remove(&spec.id.0);
                }
            }
        }
        Err(e) => {
            let mut reg = node.registry.lock().unwrap();
            let last_live = match reg.get_mut(&spec.id.0) {
                Some(entry) => {
                    entry.live = entry.live.saturating_sub(1);
                    entry.live == 0
                }
                None => true,
            };
            let done = node.done.lock().unwrap().contains(&spec.id.0);
            if last_live {
                reg.remove(&spec.id.0);
            }
            drop(reg);
            if last_live && !done {
                ctx.failures.fetch_add(1, Ordering::Relaxed);
                ctx.failed_ids.lock().unwrap().push(spec.id);
                let mut fe = ctx.first_error.lock().unwrap();
                if fe.is_none() {
                    *fe = Some(e);
                }
                node.remaining.fetch_sub(1, Ordering::AcqRel);
                let mut f = defense.finished_s.lock().unwrap();
                *f = f.max(now_s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::BARE_HPC16;
    use ppc_core::exec::FnExecutor;
    use ppc_core::task::ResourceProfile;
    use std::time::Duration;

    // Route the legacy-named helpers through the RunContext entry point
    // (explicit items shadow the glob-imported deprecated shims).
    fn run_homomorphic_job(
        cluster: &Cluster,
        inputs: Vec<(TaskSpec, Vec<u8>)>,
        executor: Arc<dyn Executor>,
        config: &DryadConfig,
    ) -> Result<(DryadReport, JobOutputs)> {
        crate::run(&RunContext::new(cluster), inputs, executor, config)
    }

    fn run_homomorphic_job_chaos(
        cluster: &Cluster,
        inputs: Vec<(TaskSpec, Vec<u8>)>,
        executor: Arc<dyn Executor>,
        config: &DryadConfig,
        schedule: Option<Arc<FaultSchedule>>,
    ) -> Result<(DryadReport, JobOutputs)> {
        crate::run(
            &RunContext::new(cluster).with_schedule(schedule),
            inputs,
            executor,
            config,
        )
    }

    fn inputs(n: u64) -> Vec<(TaskSpec, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    TaskSpec::new(i, "t", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                    format!("d{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn processes_all_inputs() {
        let cluster = Cluster::provision(BARE_HPC16, 2, 4);
        let exec = FnExecutor::new("rev", |_s, i: &[u8]| {
            let mut v = i.to_vec();
            v.reverse();
            Ok(v)
        });
        let (report, outputs) =
            run_homomorphic_job(&cluster, inputs(20), exec, &DryadConfig::default()).unwrap();
        assert_eq!(report.summary.tasks, 20);
        assert_eq!(outputs.len(), 20);
        assert_eq!(report.vertex_failures, 0);
        assert_eq!(report.per_node_seconds.len(), 2);
    }

    #[test]
    fn empty_inputs_rejected() {
        let cluster = Cluster::provision(BARE_HPC16, 1, 1);
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        assert!(run_homomorphic_job(&cluster, vec![], exec, &DryadConfig::default()).is_err());
    }

    #[test]
    fn fail_fast_surfaces_error() {
        let cluster = Cluster::provision(BARE_HPC16, 1, 2);
        let exec = FnExecutor::new("boom", |spec: &TaskSpec, i: &[u8]| {
            if spec.id.0 == 3 {
                Err(PpcError::TaskFailed("bad vertex".into()))
            } else {
                Ok(i.to_vec())
            }
        });
        let err = run_homomorphic_job(
            &cluster,
            inputs(6),
            exec.clone(),
            &DryadConfig {
                fail_fast: true,
                max_retries: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.code(), "TaskFailed");
        // Without fail-fast the job completes the rest; the deterministic
        // poison vertex fails permanently even after its retries.
        let (report, outputs) =
            run_homomorphic_job(&cluster, inputs(6), exec, &DryadConfig::default()).unwrap();
        assert_eq!(report.vertex_failures, 1);
        assert_eq!(outputs.len(), 5);
    }

    #[test]
    fn transient_vertex_failures_are_retried() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Every task fails on its first attempt and succeeds on the retry.
        let attempts: Arc<std::sync::Mutex<std::collections::HashMap<u64, AtomicUsize>>> =
            Default::default();
        let attempts2 = attempts.clone();
        let exec = FnExecutor::new("flaky", move |spec: &TaskSpec, i: &[u8]| {
            let map = attempts2.lock().unwrap();
            let n = map
                .get(&spec.id.0)
                .map(|a| a.fetch_add(1, Ordering::Relaxed))
                .unwrap_or_else(|| {
                    drop(map);
                    attempts2
                        .lock()
                        .unwrap()
                        .entry(spec.id.0)
                        .or_insert_with(|| AtomicUsize::new(1));
                    0
                });
            if n == 0 {
                Err(PpcError::Transient("first attempt flakes".into()))
            } else {
                Ok(i.to_vec())
            }
        });
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let (report, outputs) =
            run_homomorphic_job(&cluster, inputs(12), exec, &DryadConfig::default()).unwrap();
        assert_eq!(report.vertex_failures, 0, "retries recovered every vertex");
        assert_eq!(outputs.len(), 12);
        assert_eq!(report.vertex_retries, 12, "one retry per task");
    }

    #[test]
    fn scheduled_kill_recovered_by_surviving_slot() {
        // Kill slot 0 (node 0) almost immediately; its in-hand vertex must
        // be re-run by the node's surviving slot, losing nothing.
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let exec = FnExecutor::new("slow", |_s, i: &[u8]| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(i.to_vec())
        });
        let schedule = Arc::new(FaultSchedule::new(5).kill_at(0, 0.003));
        let (report, outputs) = run_homomorphic_job_chaos(
            &cluster,
            inputs(16),
            exec,
            &DryadConfig::default(),
            Some(schedule),
        )
        .unwrap();
        assert_eq!(report.vertex_failures, 0);
        assert_eq!(outputs.len(), 16, "no vertex may be lost to the kill");
    }

    #[test]
    fn chaos_dice_drive_vertex_retries() {
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let schedule = Arc::new(FaultSchedule::new(7).with_death_probabilities(0.3, 0.2, 0.1));
        let (report, outputs) = run_homomorphic_job_chaos(
            &cluster,
            inputs(40),
            exec,
            &DryadConfig::default(),
            Some(schedule),
        )
        .unwrap();
        assert_eq!(report.vertex_failures, 0);
        assert_eq!(outputs.len(), 40);
        assert!(
            report.vertex_retries > 0,
            "dice must have cost some attempts"
        );
    }

    #[test]
    fn invalid_schedule_rejected_up_front() {
        let cluster = Cluster::provision(BARE_HPC16, 1, 1);
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let schedule = Arc::new(FaultSchedule::new(1).brownout(0.5, 0.1));
        let err = run_homomorphic_job_chaos(
            &cluster,
            inputs(2),
            exec,
            &DryadConfig::default(),
            Some(schedule),
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    fn sleepy(ms: u64) -> Arc<dyn Executor> {
        FnExecutor::new("sleepy", move |_s: &TaskSpec, i: &[u8]| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(i.to_vec())
        })
    }

    #[test]
    fn backup_vertex_rescues_gray_straggler() {
        use ppc_resilience::HedgeConfig;
        use ppc_trace::Recorder;
        // Slot 0 is gray (40x): without hedging its in-hand vertex pins the
        // node for ~200ms; with hedging an idle slot launches a backup and
        // the first Ok wins.
        let cluster = Cluster::provision(BARE_HPC16, 1, 4);
        let schedule = Arc::new(FaultSchedule::new(3).degrade(0, 40.0, 0.0, 1e9));
        let run_with = |resilience: Option<ResiliencePolicy>| {
            let rec = Arc::new(Recorder::new());
            let config = DryadConfig {
                resilience,
                trace: Some(rec.clone()),
                ..Default::default()
            };
            let ctx = RunContext::new(&cluster).with_schedule(schedule.clone());
            crate::run(&ctx, inputs(16), sleepy(5), &config).unwrap()
        };
        let (plain, plain_out) = run_with(None);
        let hedged_policy = ResiliencePolicy::hedged(HedgeConfig::quantile(0.02));
        let (hedged, hedged_out) = run_with(Some(hedged_policy));
        assert_eq!(plain_out.len(), 16);
        assert_eq!(hedged_out.len(), 16, "first-Ok-wins must keep every output");
        assert_eq!(hedged.summary.tasks, 16);
        let trace = hedged.core.trace.as_ref().unwrap();
        assert!(
            trace.events_of_kind(EventKind::Hedge) > 0,
            "an idle slot must have launched a backup vertex"
        );
        assert!(
            hedged.summary.redundant_executions > 0,
            "the losing duplicate counts as redundant work"
        );
        assert!(
            hedged.summary.makespan_seconds < plain.summary.makespan_seconds,
            "hedged {} vs unhedged {}",
            hedged.summary.makespan_seconds,
            plain.summary.makespan_seconds
        );
    }

    #[test]
    fn deadline_cancels_overdue_vertex() {
        // Slot 0 is gray (40x, ~200ms per vertex); a 50ms deadline lets an
        // idle slot cancel the overdue attempt and re-run it.
        let cluster = Cluster::provision(BARE_HPC16, 1, 4);
        let schedule = Arc::new(FaultSchedule::new(3).degrade(0, 40.0, 0.0, 1e9));
        let rec = Arc::new(ppc_trace::Recorder::new());
        let config = DryadConfig {
            resilience: Some(ResiliencePolicy::default().with_deadline(0.05)),
            trace: Some(rec),
            ..Default::default()
        };
        let ctx = RunContext::new(&cluster).with_schedule(schedule);
        let (report, outputs) = crate::run(&ctx, inputs(16), sleepy(5), &config).unwrap();
        assert_eq!(outputs.len(), 16, "cancellation must never lose a vertex");
        let trace = report.core.trace.as_ref().unwrap();
        assert!(
            trace.events_of_kind(EventKind::Cancel) > 0,
            "the overdue vertex must have been cancelled"
        );
    }

    #[test]
    fn static_partitioning_shows_imbalance_on_skew() {
        // Node 0 gets all the slow tasks under round-robin when slow tasks
        // are at even indices and n_nodes divides their stride.
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let exec = FnExecutor::new("skew", |spec: &TaskSpec, i: &[u8]| {
            if spec.id.0.is_multiple_of(2) {
                std::thread::sleep(Duration::from_millis(30));
            }
            Ok(i.to_vec())
        });
        let (report, _) =
            run_homomorphic_job(&cluster, inputs(8), exec, &DryadConfig::default()).unwrap();
        // All 4 slow tasks landed on node 0 (ids 0,2,4,6): strong imbalance.
        assert!(report.imbalance() > 1.5, "imbalance {}", report.imbalance());
    }
}
