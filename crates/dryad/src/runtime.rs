//! The native Dryad-style job runner for the paper's pattern: a homomorphic
//! `select` over statically partitioned inputs.
//!
//! Inputs are split across nodes **before** the job starts (the Windows
//! shared directories of §2.3); each node then processes only its own list
//! using its worker threads. Dynamic balancing happens *within* a node
//! (vertices share the node's cores) but never across nodes — the defining
//! limitation measured in the paper's load-balancing discussion (§4.2).

use ppc_chaos::{FaultSchedule, RunClock};
use ppc_compute::cluster::Cluster;
use ppc_core::exec::Executor;
use ppc_core::json::Json;
use ppc_core::metrics::RunSummary;
use ppc_core::retry::RetryPolicy;
use ppc_core::rng::Pcg32;
use ppc_core::task::{TaskId, TaskSpec};
use ppc_core::{PpcError, Result};
use ppc_exec::{RunContext, RunReport};
use ppc_trace::{AttemptMarker, EventKind, Phase, RunMeta, Span, TraceEvent, TraceSink};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration for the native Dryad runtime.
#[derive(Debug, Clone)]
pub struct DryadConfig {
    /// Fail the whole job on the first unrecoverable vertex failure.
    pub fail_fast: bool,
    /// Re-run a failed vertex up to this many extra times before giving up
    /// — Table 3's "re-execution of failed ... tasks" for Dryad.
    pub max_retries: u32,
    /// Seed for the per-slot retry-backoff RNG streams.
    pub seed: u64,
    /// Deterministic fault schedule. Slots are addressed by flat
    /// node-major index; a scheduled kill takes a vertex slot down (its
    /// in-hand vertex goes back on the node's local list), death dice and
    /// torn outputs fail single vertex attempts.
    pub schedule: Option<Arc<FaultSchedule>>,
    /// Span sink for the run; `None` (or a disabled sink) records nothing
    /// and the report carries the finished [`ppc_trace::Trace`].
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl Default for DryadConfig {
    fn default() -> Self {
        DryadConfig {
            fail_fast: false,
            max_retries: 2,
            seed: 0xd12ad,
            schedule: None,
            trace: None,
        }
    }
}

/// Report of one Dryad job run: the cross-paradigm [`RunReport`] core
/// (summary, failed tasks, attempt/death counters, cost, trace —
/// reachable directly through `Deref`) plus the Dryad-specific extras.
#[derive(Debug, Clone)]
pub struct DryadReport {
    /// The shared report core; `report.summary`, `report.failed`,
    /// `report.total_attempts`, `report.worker_deaths`, `report.cost`,
    /// and `report.trace` all live here.
    pub core: RunReport,
    /// Wall seconds each node took to clear its static partition.
    pub per_node_seconds: Vec<f64>,
    /// Vertices that failed *permanently* (exhausted their retries);
    /// `core.failed` lists their task ids.
    pub vertex_failures: usize,
    /// Vertex re-executions that recovered a transient failure.
    pub vertex_retries: usize,
}

impl std::ops::Deref for DryadReport {
    type Target = RunReport;
    fn deref(&self) -> &RunReport {
        &self.core
    }
}

impl std::ops::DerefMut for DryadReport {
    fn deref_mut(&mut self) -> &mut RunReport {
        &mut self.core
    }
}

impl DryadReport {
    /// Max node time over mean node time — 1.0 is perfect balance. The
    /// paper's inhomogeneous-data studies show this growing for DryadLINQ
    /// while Hadoop's global queue keeps it near 1.
    pub fn imbalance(&self) -> f64 {
        let n = self.per_node_seconds.len();
        if n == 0 {
            return 1.0;
        }
        let max = self.per_node_seconds.iter().cloned().fold(0.0, f64::max);
        let mean = self.per_node_seconds.iter().sum::<f64>() / n as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// JSON rendering: the core's canonical object
    /// ([`RunReport::to_json`]) extended with the Dryad extras.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.core.to_json() else {
            unreachable!("RunReport::to_json returns an object");
        };
        fields.push(("imbalance".into(), Json::from(self.imbalance())));
        fields.push((
            "vertex_retries".into(),
            Json::from(self.vertex_retries as u64),
        ));
        Json::Obj(fields)
    }
}

/// (output key, output bytes) pairs, in completion order.
pub use ppc_exec::JobOutputs;

/// Run `executor` over every input, statically partitioned round-robin
/// across the cluster's nodes. Returns the report and the outputs
/// (output key → bytes), in completion order.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_dryad::run`")]
pub fn run_homomorphic_job(
    cluster: &Cluster,
    inputs: Vec<(TaskSpec, Vec<u8>)>,
    executor: Arc<dyn Executor>,
    config: &DryadConfig,
) -> Result<(DryadReport, JobOutputs)> {
    crate::harness::run(&RunContext::new(cluster), inputs, executor, config)
}

/// [`run_homomorphic_job`] under a deterministic [`FaultSchedule`].
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_dryad::run`")]
pub fn run_homomorphic_job_chaos(
    cluster: &Cluster,
    inputs: Vec<(TaskSpec, Vec<u8>)>,
    executor: Arc<dyn Executor>,
    config: &DryadConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> Result<(DryadReport, JobOutputs)> {
    crate::harness::run(
        &RunContext::new(cluster).with_schedule_opt(schedule),
        inputs,
        executor,
        config,
    )
}

/// The native runtime body, reached through [`crate::run`].
///
/// Workers are addressed by flat slot index (node-major). A scheduled kill
/// takes a vertex slot down: its in-hand vertex goes back on the node's
/// local list for a surviving slot — re-execution never crosses nodes,
/// which is exactly DryadLINQ's static-partitioning constraint. Death dice
/// and torn outputs fail a single vertex attempt, recovered by the shared
/// retry layer. Cloud-storage outage windows do *not* apply: Dryad reads
/// node-local files (the paper's Windows shared directories).
pub(crate) fn run_impl(
    cluster: &Cluster,
    inputs: Vec<(TaskSpec, Vec<u8>)>,
    executor: Arc<dyn Executor>,
    config: &DryadConfig,
) -> Result<(DryadReport, JobOutputs)> {
    if inputs.is_empty() {
        return Err(PpcError::InvalidArgument("no inputs".into()));
    }
    let schedule = config.schedule.clone();
    if let Some(schedule) = &schedule {
        schedule.validate()?;
    }
    let n_nodes = cluster.n_nodes();
    // Static node-level partitioning, fixed before execution.
    let partitions = crate::partition::partition_round_robin(inputs, n_nodes);
    // Flat worker index of each node's first slot.
    let node_bases: Vec<usize> = cluster
        .nodes()
        .iter()
        .scan(0usize, |acc, n| {
            let base = *acc;
            *acc += n.workers;
            Some(base)
        })
        .collect();

    let outputs: Mutex<Vec<(String, Vec<u8>)>> = Mutex::new(Vec::new());
    let failures = AtomicUsize::new(0);
    let failed_ids: Mutex<Vec<TaskId>> = Mutex::new(Vec::new());
    let retries = AtomicUsize::new(0);
    let attempts_total = AtomicUsize::new(0);
    let deaths = AtomicUsize::new(0);
    let first_error: Mutex<Option<PpcError>> = Mutex::new(None);
    let per_node: Mutex<Vec<f64>> = Mutex::new(vec![0.0; n_nodes]);
    let total_bytes = AtomicUsize::new(0);
    let chaos = schedule.as_deref();
    let sink = config.trace.as_deref().filter(|s| s.enabled());
    let clock = RunClock::start();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for (node, node_inputs) in partitions.into_iter().enumerate() {
            let workers = cluster.nodes()[node].workers;
            let node_base = node_bases[node];
            let executor = executor.clone();
            let outputs = &outputs;
            let failures = &failures;
            let failed_ids = &failed_ids;
            let retries = &retries;
            let attempts_total = &attempts_total;
            let deaths = &deaths;
            let first_error = &first_error;
            let per_node = &per_node;
            let total_bytes = &total_bytes;
            let clock = &clock;
            scope.spawn(move || {
                let node_start = Instant::now();
                // Within the node, vertices share a local work list.
                let local: Mutex<std::collections::VecDeque<(TaskSpec, Vec<u8>)>> =
                    Mutex::new(node_inputs.into());
                std::thread::scope(|inner| {
                    for slot in 0..workers {
                        let executor = executor.clone();
                        let local = &local;
                        let worker = (node_base + slot) as u32;
                        inner.spawn(move || {
                            if let Some(s) = sink {
                                s.event(TraceEvent {
                                    at_s: clock.now_s(),
                                    worker,
                                    kind: EventKind::WorkerStart,
                                });
                            }
                            // Re-execute a failed vertex (Table 3's Dryad
                            // fault tolerance) through the shared retry
                            // layer before declaring it failed.
                            let policy = RetryPolicy::immediate(config.max_retries + 1);
                            let mut rng = Pcg32::for_stream(config.seed, worker as u64);
                            let mut task_seq: u32 = 0;
                            let mut last_kill_s: f64 = 0.0;
                            loop {
                                let item = local.lock().unwrap().pop_front();
                                let (spec, input) = match item {
                                    Some(x) => x,
                                    None => break,
                                };
                                if let Some(schedule) = chaos {
                                    let now_s = clock.now_s();
                                    if schedule.kills_in(worker, last_kill_s, now_s) {
                                        // Slot dies: hand the vertex back to
                                        // a surviving slot on this node.
                                        deaths.fetch_add(1, Ordering::Relaxed);
                                        if let Some(s) = sink {
                                            s.event(TraceEvent {
                                                at_s: now_s,
                                                worker,
                                                kind: EventKind::Death,
                                            });
                                        }
                                        local.lock().unwrap().push_front((spec, input));
                                        break;
                                    }
                                    last_kill_s = now_s;
                                }
                                let seq = task_seq;
                                task_seq += 1;
                                let vertex_start = Instant::now();
                                let mut used_attempts = 0u32;
                                let out = policy.run_blocking(&mut rng, |attempt| {
                                    used_attempts = attempt;
                                    attempts_total.fetch_add(1, Ordering::Relaxed);
                                    // Each retry-layer attempt is its own
                                    // span subtree; dropping the marker on
                                    // a failure path still closes it.
                                    let mut tt = sink.map(|s| {
                                        let mut tt = AttemptMarker::new(
                                            s,
                                            spec.id.0,
                                            attempt,
                                            worker,
                                            clock.now_s(),
                                        );
                                        tt.mark(Phase::VertexStart, clock.now_s());
                                        tt
                                    });
                                    if let Some(schedule) = chaos {
                                        // Any death die or a torn output
                                        // costs exactly one failed attempt;
                                        // the job manager re-runs the vertex.
                                        if attempt == 0 {
                                            let died = schedule.die_before_execute(worker, seq)
                                                || schedule.die_mid_execute(worker, seq)
                                                || schedule.die_before_delete(worker, seq);
                                            if died || schedule.is_torn_upload(worker, seq) {
                                                if died {
                                                    deaths.fetch_add(1, Ordering::Relaxed);
                                                    if let Some(s) = sink {
                                                        s.event(TraceEvent {
                                                            at_s: clock.now_s(),
                                                            worker,
                                                            kind: EventKind::Death,
                                                        });
                                                    }
                                                }
                                                return Err(PpcError::Transient(
                                                    "chaos: vertex attempt killed".into(),
                                                ));
                                            }
                                        }
                                    }
                                    // Inputs are already in node-local
                                    // memory: the read phase is an instant,
                                    // but it keeps the native phase set
                                    // aligned with the simulator's.
                                    if let Some(tt) = tt.as_mut() {
                                        tt.mark(Phase::ReadLocal, clock.now_s());
                                    }
                                    let r = executor.run(&spec, &input);
                                    if let Some(tt) = tt.as_mut() {
                                        tt.mark(Phase::Execute, clock.now_s());
                                        if r.is_ok() {
                                            // Dryad has no speculative
                                            // duplicates: the first Ok
                                            // attempt is the terminal one.
                                            tt.mark(Phase::Write, clock.now_s());
                                        }
                                    }
                                    r
                                });
                                if let Some(schedule) = chaos {
                                    // Gray degradation stretches the vertex.
                                    let factor = schedule.slowdown(worker, clock.now_s());
                                    if factor > 1.0 {
                                        std::thread::sleep(
                                            vertex_start.elapsed().mul_f64(factor - 1.0),
                                        );
                                    }
                                }
                                match out {
                                    Ok(out) => {
                                        if used_attempts > 0 {
                                            retries.fetch_add(
                                                used_attempts as usize,
                                                Ordering::Relaxed,
                                            );
                                        }
                                        total_bytes.fetch_add(out.len(), Ordering::Relaxed);
                                        outputs
                                            .lock()
                                            .unwrap()
                                            .push((spec.output_key.clone(), out));
                                    }
                                    Err(e) => {
                                        failures.fetch_add(1, Ordering::Relaxed);
                                        failed_ids.lock().unwrap().push(spec.id);
                                        let mut fe = first_error.lock().unwrap();
                                        if fe.is_none() {
                                            *fe = Some(e);
                                        }
                                    }
                                }
                            }
                        });
                    }
                });
                per_node.lock().unwrap()[node] = node_start.elapsed().as_secs_f64();
            });
        }
    });
    let makespan = start.elapsed().as_secs_f64();

    let vertex_failures = failures.load(Ordering::Relaxed);
    if config.fail_fast && vertex_failures > 0 {
        return Err(first_error.into_inner().unwrap().expect("failure recorded"));
    }
    let outputs = outputs.into_inner().unwrap();
    // The meta carries the *same* f64 makespan the summary reports, so
    // Eq. 1 recomputed from the trace matches the engine exactly.
    let trace = sink.and_then(|s| {
        s.set_meta(RunMeta {
            platform: "dryadlinq".into(),
            cores: cluster.total_workers(),
            tasks: outputs.len(),
            makespan_seconds: makespan,
        });
        s.span(Span::job(makespan));
        s.snapshot()
    });
    let vertex_retries = retries.load(Ordering::Relaxed);
    let report = DryadReport {
        core: RunReport {
            summary: RunSummary {
                platform: "dryadlinq".into(),
                cores: cluster.total_workers(),
                tasks: outputs.len(),
                makespan_seconds: makespan,
                redundant_executions: 0,
                remote_bytes: 0, // node-local files only
            },
            failed: failed_ids.into_inner().unwrap(),
            total_attempts: attempts_total.load(Ordering::Relaxed),
            worker_deaths: deaths.load(Ordering::Relaxed),
            cost: Some(cluster.cost(makespan)),
            trace,
        },
        per_node_seconds: per_node.into_inner().unwrap(),
        vertex_failures,
        vertex_retries,
    };
    Ok((report, outputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::BARE_HPC16;
    use ppc_core::exec::FnExecutor;
    use ppc_core::task::ResourceProfile;
    use std::time::Duration;

    // Route the legacy-named helpers through the RunContext entry point
    // (explicit items shadow the glob-imported deprecated shims).
    fn run_homomorphic_job(
        cluster: &Cluster,
        inputs: Vec<(TaskSpec, Vec<u8>)>,
        executor: Arc<dyn Executor>,
        config: &DryadConfig,
    ) -> Result<(DryadReport, JobOutputs)> {
        crate::run(&RunContext::new(cluster), inputs, executor, config)
    }

    fn run_homomorphic_job_chaos(
        cluster: &Cluster,
        inputs: Vec<(TaskSpec, Vec<u8>)>,
        executor: Arc<dyn Executor>,
        config: &DryadConfig,
        schedule: Option<Arc<FaultSchedule>>,
    ) -> Result<(DryadReport, JobOutputs)> {
        crate::run(
            &RunContext::new(cluster).with_schedule_opt(schedule),
            inputs,
            executor,
            config,
        )
    }

    fn inputs(n: u64) -> Vec<(TaskSpec, Vec<u8>)> {
        (0..n)
            .map(|i| {
                (
                    TaskSpec::new(i, "t", format!("f{i}"), ResourceProfile::cpu_bound(0.0)),
                    format!("d{i}").into_bytes(),
                )
            })
            .collect()
    }

    #[test]
    fn processes_all_inputs() {
        let cluster = Cluster::provision(BARE_HPC16, 2, 4);
        let exec = FnExecutor::new("rev", |_s, i: &[u8]| {
            let mut v = i.to_vec();
            v.reverse();
            Ok(v)
        });
        let (report, outputs) =
            run_homomorphic_job(&cluster, inputs(20), exec, &DryadConfig::default()).unwrap();
        assert_eq!(report.summary.tasks, 20);
        assert_eq!(outputs.len(), 20);
        assert_eq!(report.vertex_failures, 0);
        assert_eq!(report.per_node_seconds.len(), 2);
    }

    #[test]
    fn empty_inputs_rejected() {
        let cluster = Cluster::provision(BARE_HPC16, 1, 1);
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        assert!(run_homomorphic_job(&cluster, vec![], exec, &DryadConfig::default()).is_err());
    }

    #[test]
    fn fail_fast_surfaces_error() {
        let cluster = Cluster::provision(BARE_HPC16, 1, 2);
        let exec = FnExecutor::new("boom", |spec: &TaskSpec, i: &[u8]| {
            if spec.id.0 == 3 {
                Err(PpcError::TaskFailed("bad vertex".into()))
            } else {
                Ok(i.to_vec())
            }
        });
        let err = run_homomorphic_job(
            &cluster,
            inputs(6),
            exec.clone(),
            &DryadConfig {
                fail_fast: true,
                max_retries: 0,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err.code(), "TaskFailed");
        // Without fail-fast the job completes the rest; the deterministic
        // poison vertex fails permanently even after its retries.
        let (report, outputs) =
            run_homomorphic_job(&cluster, inputs(6), exec, &DryadConfig::default()).unwrap();
        assert_eq!(report.vertex_failures, 1);
        assert_eq!(outputs.len(), 5);
    }

    #[test]
    fn transient_vertex_failures_are_retried() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Every task fails on its first attempt and succeeds on the retry.
        let attempts: Arc<std::sync::Mutex<std::collections::HashMap<u64, AtomicUsize>>> =
            Default::default();
        let attempts2 = attempts.clone();
        let exec = FnExecutor::new("flaky", move |spec: &TaskSpec, i: &[u8]| {
            let map = attempts2.lock().unwrap();
            let n = map
                .get(&spec.id.0)
                .map(|a| a.fetch_add(1, Ordering::Relaxed))
                .unwrap_or_else(|| {
                    drop(map);
                    attempts2
                        .lock()
                        .unwrap()
                        .entry(spec.id.0)
                        .or_insert_with(|| AtomicUsize::new(1));
                    0
                });
            if n == 0 {
                Err(PpcError::Transient("first attempt flakes".into()))
            } else {
                Ok(i.to_vec())
            }
        });
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let (report, outputs) =
            run_homomorphic_job(&cluster, inputs(12), exec, &DryadConfig::default()).unwrap();
        assert_eq!(report.vertex_failures, 0, "retries recovered every vertex");
        assert_eq!(outputs.len(), 12);
        assert_eq!(report.vertex_retries, 12, "one retry per task");
    }

    #[test]
    fn scheduled_kill_recovered_by_surviving_slot() {
        // Kill slot 0 (node 0) almost immediately; its in-hand vertex must
        // be re-run by the node's surviving slot, losing nothing.
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let exec = FnExecutor::new("slow", |_s, i: &[u8]| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(i.to_vec())
        });
        let schedule = Arc::new(FaultSchedule::new(5).kill_at(0, 0.003));
        let (report, outputs) = run_homomorphic_job_chaos(
            &cluster,
            inputs(16),
            exec,
            &DryadConfig::default(),
            Some(schedule),
        )
        .unwrap();
        assert_eq!(report.vertex_failures, 0);
        assert_eq!(outputs.len(), 16, "no vertex may be lost to the kill");
    }

    #[test]
    fn chaos_dice_drive_vertex_retries() {
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let schedule = Arc::new(FaultSchedule::new(7).with_death_probabilities(0.3, 0.2, 0.1));
        let (report, outputs) = run_homomorphic_job_chaos(
            &cluster,
            inputs(40),
            exec,
            &DryadConfig::default(),
            Some(schedule),
        )
        .unwrap();
        assert_eq!(report.vertex_failures, 0);
        assert_eq!(outputs.len(), 40);
        assert!(
            report.vertex_retries > 0,
            "dice must have cost some attempts"
        );
    }

    #[test]
    fn invalid_schedule_rejected_up_front() {
        let cluster = Cluster::provision(BARE_HPC16, 1, 1);
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let schedule = Arc::new(FaultSchedule::new(1).brownout(0.5, 0.1));
        let err = run_homomorphic_job_chaos(
            &cluster,
            inputs(2),
            exec,
            &DryadConfig::default(),
            Some(schedule),
        )
        .unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    #[test]
    fn static_partitioning_shows_imbalance_on_skew() {
        // Node 0 gets all the slow tasks under round-robin when slow tasks
        // are at even indices and n_nodes divides their stride.
        let cluster = Cluster::provision(BARE_HPC16, 2, 2);
        let exec = FnExecutor::new("skew", |spec: &TaskSpec, i: &[u8]| {
            if spec.id.0.is_multiple_of(2) {
                std::thread::sleep(Duration::from_millis(30));
            }
            Ok(i.to_vec())
        });
        let (report, _) =
            run_homomorphic_job(&cluster, inputs(8), exec, &DryadConfig::default()).unwrap();
        // All 4 slow tasks landed on node 0 (ids 0,2,4,6): strong imbalance.
        assert!(report.imbalance() > 1.5, "imbalance {}", report.imbalance());
    }
}
