//! Static data partitioning.
//!
//! DryadLINQ required "data for the computations ... be partitioned manually
//! and stored beforehand in the local disks of the computational nodes",
//! with the paper's framework implementing "the data partition and the
//! distribution programs" and "the generation of metadata files for the data
//! partitions" (§2.3, §2.4). These are those programs.

use ppc_core::{PpcError, Result};

/// Deal items round-robin across `n` partitions (even counts, arbitrary
/// content mix — the paper's default distribution).
pub fn partition_round_robin<T>(items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    assert!(n > 0, "need at least one partition");
    let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        parts[i % n].push(item);
    }
    parts
}

/// Split items into `n` contiguous runs (preserves order; uneven tails).
pub fn partition_contiguous<T>(items: Vec<T>, n: usize) -> Vec<Vec<T>> {
    assert!(n > 0, "need at least one partition");
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut parts = Vec::with_capacity(n);
    let mut iter = items.into_iter();
    for i in 0..n {
        let take = base + usize::from(i < extra);
        parts.push(iter.by_ref().take(take).collect());
    }
    parts
}

/// The metadata file describing a partitioned data set — what DryadLINQ
/// reads to know where each partition lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionManifest {
    pub name: String,
    /// Per-partition (node index, item count).
    pub partitions: Vec<(usize, usize)>,
}

impl PartitionManifest {
    pub fn describe<T>(name: impl Into<String>, parts: &[Vec<T>]) -> PartitionManifest {
        PartitionManifest {
            name: name.into(),
            partitions: parts
                .iter()
                .enumerate()
                .map(|(node, p)| (node, p.len()))
                .collect(),
        }
    }

    pub fn total_items(&self) -> usize {
        self.partitions.iter().map(|(_, c)| c).sum()
    }

    /// Serialize in the simple one-line-per-partition text format the
    /// paper's partition tool would emit.
    pub fn to_text(&self) -> String {
        let mut s = format!("{}\n{}\n", self.name, self.partitions.len());
        for (node, count) in &self.partitions {
            s.push_str(&format!("{node}\t{count}\n"));
        }
        s
    }

    pub fn from_text(text: &str) -> Result<PartitionManifest> {
        let mut lines = text.lines();
        let name = lines
            .next()
            .ok_or_else(|| PpcError::Codec("manifest missing name".into()))?
            .to_string();
        let n: usize = lines
            .next()
            .and_then(|l| l.parse().ok())
            .ok_or_else(|| PpcError::Codec("manifest missing partition count".into()))?;
        let mut partitions = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines
                .next()
                .ok_or_else(|| PpcError::Codec("manifest truncated".into()))?;
            let mut f = line.split('\t');
            let node: usize = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| PpcError::Codec("bad node".into()))?;
            let count: usize = f
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| PpcError::Codec("bad count".into()))?;
            partitions.push((node, count));
        }
        Ok(PartitionManifest { name, partitions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_spreads_evenly() {
        let parts = partition_round_robin((0..10).collect(), 3);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn contiguous_preserves_order() {
        let parts = partition_contiguous((0..10).collect(), 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6]);
        assert_eq!(parts[2], vec![7, 8, 9]);
        let flat: Vec<i32> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn more_partitions_than_items() {
        let parts = partition_round_robin(vec![1, 2], 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
        let parts = partition_contiguous(vec![1, 2], 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
    }

    #[test]
    fn manifest_round_trip() {
        let parts = partition_round_robin((0..7).collect(), 3);
        let m = PartitionManifest::describe("pubchem", &parts);
        assert_eq!(m.total_items(), 7);
        let text = m.to_text();
        let back = PartitionManifest::from_text(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(PartitionManifest::from_text("").is_err());
        assert!(PartitionManifest::from_text("name\nnotanumber\n").is_err());
        assert!(PartitionManifest::from_text("name\n2\n0\t1\n").is_err());
    }
}
