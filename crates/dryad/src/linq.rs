//! `DVec<T>` — a DryadLINQ-flavoured distributed collection.
//!
//! A `DVec` is a collection statically split into partitions, one per
//! (conceptual) node. Operators build a new `DVec` by running one vertex per
//! partition, in parallel threads, mirroring how DryadLINQ translates a
//! query operator into a stage of vertices over the existing partitions.
//! `group_by` introduces a repartitioning edge (full bipartite stage
//! connection), the one non-homomorphic operator we need.

use crate::graph::Graph;
use crate::partition::partition_round_robin;
use ppc_core::Result;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Mutex;

/// A statically partitioned distributed collection.
///
/// ```
/// use ppc_dryad::linq::DVec;
/// let squares: Vec<i64> = DVec::distribute((0..10).collect(), 4)
///     .select(|x| x * x)
///     .where_(|x| x % 2 == 0)
///     .collect();
/// let mut sorted = squares.clone();
/// sorted.sort_unstable();
/// assert_eq!(sorted, vec![0, 4, 16, 36, 64]);
/// ```
#[derive(Debug, Clone)]
pub struct DVec<T> {
    partitions: Vec<Vec<T>>,
    /// The dataflow graph accumulated by the operator chain (one stage per
    /// operator, one vertex per partition).
    graph: Graph,
}

impl<T: Send> DVec<T> {
    /// Distribute `items` round-robin over `n_partitions` "nodes".
    pub fn distribute(items: Vec<T>, n_partitions: usize) -> DVec<T> {
        let partitions = partition_round_robin(items, n_partitions);
        let mut graph = Graph::new();
        for p in 0..partitions.len() {
            graph.add_vertex(format!("input-{p}"), 0, p);
        }
        DVec { partitions, graph }
    }

    /// Use existing partitions as-is (the "data already on node-local disks"
    /// starting state of every paper experiment).
    pub fn from_partitions(partitions: Vec<Vec<T>>) -> DVec<T> {
        let mut graph = Graph::new();
        for p in 0..partitions.len() {
            graph.add_vertex(format!("input-{p}"), 0, p);
        }
        DVec { partitions, graph }
    }

    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sizes of each partition — the static-balance diagnostic.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partitions.iter().map(Vec::len).collect()
    }

    /// The accumulated dataflow graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    fn next_stage(&self) -> usize {
        self.graph.stages().len()
    }

    /// Run one vertex per partition, pointwise edges — shared scaffold for
    /// the homomorphic operators. `f` receives `(partition_index, items)`.
    fn pointwise_stage<U: Send>(
        mut self,
        op_name: &str,
        f: impl Fn(usize, Vec<T>) -> Result<Vec<U>> + Send + Sync,
    ) -> Result<DVec<U>> {
        let stage = self.next_stage();
        let n = self.partitions.len();
        // Record graph structure: one vertex per partition, pointwise edges.
        let prev_first = self.graph.n_vertices() - n;
        for p in 0..n {
            let v = self.graph.add_vertex(format!("{op_name}-{p}"), stage, p);
            self.graph.add_edge(prev_first + p, v)?;
        }
        // Execute: one thread per partition (a vertex per partition, run in
        // parallel, as Dryad schedules a stage).
        let results: Mutex<Vec<Option<Result<Vec<U>>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for (p, part) in self.partitions.drain(..).enumerate() {
                let f = &f;
                let results = &results;
                scope.spawn(move || {
                    let r = f(p, part);
                    results.lock().unwrap()[p] = Some(r);
                });
            }
        });
        let mut partitions = Vec::with_capacity(n);
        for r in results.into_inner().unwrap() {
            partitions.push(r.expect("every partition ran")?);
        }
        Ok(DVec {
            partitions,
            graph: self.graph,
        })
    }

    /// DryadLINQ `Select`: apply `f` to every element.
    pub fn select<U: Send>(self, f: impl Fn(T) -> U + Send + Sync) -> DVec<U> {
        self.pointwise_stage("select", |_p, part| Ok(part.into_iter().map(&f).collect()))
            .expect("infallible select")
    }

    /// `Select` with a fallible element function (the paper's vertices run
    /// external programs that can fail).
    pub fn try_select<U: Send>(self, f: impl Fn(T) -> Result<U> + Send + Sync) -> Result<DVec<U>> {
        self.pointwise_stage("select", |_p, part| part.into_iter().map(&f).collect())
    }

    /// DryadLINQ `Where`: keep elements satisfying the predicate.
    pub fn where_(self, pred: impl Fn(&T) -> bool + Send + Sync) -> DVec<T> {
        self.pointwise_stage("where", |_p, part| {
            Ok(part.into_iter().filter(|x| pred(x)).collect())
        })
        .expect("infallible where")
    }

    /// DryadLINQ `Apply`: an arbitrary function over each whole partition.
    pub fn apply<U: Send>(self, f: impl Fn(Vec<T>) -> Vec<U> + Send + Sync) -> DVec<U> {
        self.pointwise_stage("apply", |_p, part| Ok(f(part)))
            .expect("infallible apply")
    }

    /// [`DVec::apply`] with per-vertex wall-time measurement — the
    /// observability hook for diagnosing static load imbalance (returns the
    /// seconds each partition's vertex spent).
    pub fn apply_timed<U: Send>(
        self,
        f: impl Fn(Vec<T>) -> Vec<U> + Send + Sync,
    ) -> (DVec<U>, Vec<f64>) {
        let times: Mutex<Vec<f64>> = Mutex::new(vec![0.0; self.n_partitions()]);
        let out = self
            .pointwise_stage("apply", |p, part| {
                let start = std::time::Instant::now();
                let result = f(part);
                times.lock().unwrap()[p] = start.elapsed().as_secs_f64();
                Ok(result)
            })
            .expect("infallible apply");
        (out, times.into_inner().unwrap())
    }

    /// Gather all partitions to the client, in partition order.
    pub fn collect(self) -> Vec<T> {
        self.partitions.into_iter().flatten().collect()
    }
}

impl<T: Send> DVec<T> {
    /// DryadLINQ `Join`: hash-join two distributed collections on a key.
    /// Both sides are repartitioned by key hash (bipartite edges from both
    /// inputs into the join stage), then joined partition-locally.
    pub fn join<U, K>(
        self,
        other: DVec<U>,
        key_left: impl Fn(&T) -> K + Send + Sync,
        key_right: impl Fn(&U) -> K + Send + Sync,
    ) -> DVec<(K, T, U)>
    where
        T: Clone,
        U: Send + Clone,
        K: Hash + Eq + Clone + Send,
    {
        let n = self.partitions.len().max(other.partitions.len()).max(1);
        // Repartition both sides by key hash with one shared hasher.
        let hasher = std::collections::hash_map::RandomState::new();
        use std::hash::BuildHasher;
        let bucket_of = |k: &K| (hasher.hash_one(k) % n as u64) as usize;

        let mut left: Vec<Vec<(K, T)>> = (0..n).map(|_| Vec::new()).collect();
        for part in self.partitions {
            for item in part {
                let k = key_left(&item);
                left[bucket_of(&k)].push((k, item));
            }
        }
        let mut right: Vec<HashMap<K, Vec<U>>> = (0..n).map(|_| HashMap::new()).collect();
        for part in other.partitions {
            for item in part {
                let k = key_right(&item);
                right[bucket_of(&k)].entry(k).or_default().push(item);
            }
        }
        // Partition-local join.
        let partitions: Vec<Vec<(K, T, U)>> = left
            .into_iter()
            .zip(right)
            .map(|(ls, rs)| {
                let mut out = Vec::new();
                for (k, l) in ls {
                    if let Some(matches) = rs.get(&k) {
                        for r in matches {
                            out.push((k.clone(), l.clone(), r.clone()));
                        }
                    }
                }
                out
            })
            .collect();
        // Fresh graph for the joined collection (a join merges two chains;
        // we record it as a new input stage, which is what the downstream
        // operators care about).
        DVec::from_partitions(partitions)
    }

    /// DryadLINQ `GroupBy`: hash-repartition by key — the full-bipartite
    /// stage edge that makes this a genuine DAG, not a pipeline.
    pub fn group_by<K: Hash + Eq + Send>(
        mut self,
        key: impl Fn(&T) -> K + Send + Sync,
    ) -> DVec<(K, Vec<T>)> {
        let n = self.partitions.len().max(1);
        let stage = self.next_stage();
        let prev_first = self.graph.n_vertices() - self.partitions.len();
        let prev_n = self.partitions.len();
        let mut new_vertices = Vec::new();
        for p in 0..n {
            new_vertices.push(self.graph.add_vertex(format!("groupby-{p}"), stage, p));
        }
        for from in 0..prev_n {
            for &to in &new_vertices {
                self.graph
                    .add_edge(prev_first + from, to)
                    .expect("valid edge");
            }
        }
        // Execute the shuffle on the client side (Dryad would stream through
        // channels; the observable result is identical).
        let mut buckets: Vec<HashMap<K, Vec<T>>> = (0..n).map(|_| HashMap::new()).collect();
        let hasher = std::collections::hash_map::RandomState::new();
        use std::hash::BuildHasher;
        for part in self.partitions.drain(..) {
            for item in part {
                let k = key(&item);
                let b = (hasher.hash_one(&k) % n as u64) as usize;
                buckets[b].entry(k).or_default().push(item);
            }
        }
        let partitions: Vec<Vec<(K, Vec<T>)>> = buckets
            .into_iter()
            .map(|m| m.into_iter().collect())
            .collect();
        DVec {
            partitions,
            graph: self.graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::PpcError;

    #[test]
    fn distribute_and_collect_round_trip() {
        let d = DVec::distribute((0..10).collect(), 3);
        assert_eq!(d.n_partitions(), 3);
        assert_eq!(d.len(), 10);
        let mut got = d.collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn select_maps_all_elements() {
        let d = DVec::distribute((0..100).collect::<Vec<i64>>(), 4);
        let mut out = d.select(|x| x * 2).collect();
        out.sort_unstable();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn where_filters() {
        let d = DVec::distribute((0..100).collect::<Vec<i64>>(), 4);
        let out = d.where_(|x| x % 2 == 0);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn apply_sees_whole_partitions() {
        let d = DVec::from_partitions(vec![vec![1, 2, 3], vec![4, 5]]);
        let sums = d.apply(|part| vec![part.iter().sum::<i32>()]);
        assert_eq!(sums.partition_sizes(), vec![1, 1]);
        let mut out = sums.collect();
        out.sort_unstable();
        assert_eq!(out, vec![6, 9]);
    }

    #[test]
    fn try_select_propagates_errors() {
        let d = DVec::distribute((0..10).collect::<Vec<i64>>(), 2);
        let err = d
            .try_select(|x| {
                if x == 7 {
                    Err(PpcError::TaskFailed("seven".into()))
                } else {
                    Ok(x)
                }
            })
            .unwrap_err();
        assert_eq!(err.code(), "TaskFailed");
    }

    #[test]
    fn group_by_groups_everything() {
        let d = DVec::distribute((0..100).collect::<Vec<i64>>(), 4);
        let grouped = d.group_by(|x| x % 7);
        let collected = grouped.collect();
        assert_eq!(collected.len(), 7);
        let total: usize = collected.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 100);
        for (k, vs) in collected {
            assert!(vs.iter().all(|v| v % 7 == k));
        }
    }

    #[test]
    fn graph_grows_with_operators() {
        let d = DVec::distribute((0..8).collect::<Vec<i64>>(), 2);
        let d = d.select(|x| x + 1).where_(|x| *x > 2);
        let g = d.graph();
        // 3 stages (input, select, where) x 2 partitions.
        assert_eq!(g.n_vertices(), 6);
        assert_eq!(g.n_edges(), 4);
        assert!(g.topological_order().is_ok());
        assert_eq!(g.stages().len(), 3);
    }

    #[test]
    fn group_by_creates_bipartite_edges() {
        let d = DVec::distribute((0..8).collect::<Vec<i64>>(), 2);
        let d = d.group_by(|x| x % 2);
        // input stage: 2 vertices; groupby stage: 2 vertices; 2x2 edges.
        assert_eq!(d.graph().n_edges(), 4);
    }

    #[test]
    fn apply_timed_attributes_time_to_the_right_partition() {
        // Partition 1 sleeps; its slot (and only its slot) shows the time.
        let d = DVec::from_partitions(vec![vec![1], vec![2], vec![3]]);
        let (out, times) = d.apply_timed(|part| {
            if part == vec![2] {
                std::thread::sleep(std::time::Duration::from_millis(40));
            }
            part
        });
        assert_eq!(out.n_partitions(), 3);
        assert!(times[1] >= 0.035, "slow partition timed: {times:?}");
        assert!(
            times[0] < 0.02 && times[2] < 0.02,
            "fast partitions cheap: {times:?}"
        );
    }

    #[test]
    fn join_matches_nested_loop_semantics() {
        let orders: Vec<(u32, &str)> = vec![(1, "cap3"), (2, "blast"), (1, "gtm"), (3, "idle")];
        let users: Vec<(u32, &str)> = vec![(1, "alice"), (2, "bob"), (4, "carol")];
        let joined = DVec::distribute(orders.clone(), 3)
            .join(DVec::distribute(users.clone(), 2), |o| o.0, |u| u.0)
            .collect();
        let mut got: Vec<(u32, &str, &str)> =
            joined.into_iter().map(|(k, o, u)| (k, o.1, u.1)).collect();
        got.sort_unstable();
        let mut expect = Vec::new();
        for o in &orders {
            for u in &users {
                if o.0 == u.0 {
                    expect.push((o.0, o.1, u.1));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn join_with_duplicate_keys_multiplies() {
        let left = DVec::distribute(vec![("a", 1), ("a", 2)], 2);
        let right = DVec::distribute(vec![("a", 10), ("a", 20)], 2);
        let joined = left.join(right, |l| l.0, |r| r.0).collect();
        assert_eq!(joined.len(), 4, "cartesian within key groups");
    }

    #[test]
    fn chained_pipeline_end_to_end() {
        let words = vec!["a", "bb", "ccc", "dd", "e", "ffff"];
        let d = DVec::distribute(words, 3)
            .select(|w| w.len())
            .where_(|l| *l >= 2)
            .group_by(|l| *l)
            .select(|(len, hits)| (len, hits.len()));
        let mut out = d.collect();
        out.sort_unstable();
        assert_eq!(out, vec![(2, 2), (3, 1), (4, 1)]);
    }
}
