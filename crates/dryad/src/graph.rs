//! Directed acyclic dataflow graphs.
//!
//! Dryad expresses computations as DAGs of vertices connected by channels.
//! This module provides the graph bookkeeping: construction, cycle
//! detection, topological staging. The `linq` layer builds these graphs
//! as it chains operators, and the runtime executes stage by stage.

use ppc_core::{PpcError, Result};

/// Vertex metadata (the computation payloads live with the executing layer;
/// the graph only carries structure, as Dryad's graph manager does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexInfo {
    pub name: String,
    /// Which stage (operator) this vertex belongs to.
    pub stage: usize,
    /// Which partition of its stage this vertex processes.
    pub partition: usize,
}

/// A DAG of vertices and channels.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    vertices: Vec<VertexInfo>,
    /// Channel (from, to) pairs by vertex index.
    edges: Vec<(usize, usize)>,
}

impl Graph {
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Add a vertex; returns its index.
    pub fn add_vertex(&mut self, name: impl Into<String>, stage: usize, partition: usize) -> usize {
        self.vertices.push(VertexInfo {
            name: name.into(),
            stage,
            partition,
        });
        self.vertices.len() - 1
    }

    /// Connect `from`'s output channel to `to`'s input.
    pub fn add_edge(&mut self, from: usize, to: usize) -> Result<()> {
        if from >= self.vertices.len() || to >= self.vertices.len() {
            return Err(PpcError::InvalidArgument(
                "edge references unknown vertex".into(),
            ));
        }
        if from == to {
            return Err(PpcError::InvalidArgument(
                "self-loop is not a DAG edge".into(),
            ));
        }
        self.edges.push((from, to));
        Ok(())
    }

    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }

    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    pub fn vertex(&self, i: usize) -> &VertexInfo {
        &self.vertices[i]
    }

    /// Vertices feeding into `v`.
    pub fn inputs_of(&self, v: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == v)
            .map(|(f, _)| *f)
            .collect()
    }

    /// Kahn's algorithm: topological order, or an error if a cycle exists.
    pub fn topological_order(&self) -> Result<Vec<usize>> {
        let n = self.vertices.len();
        let mut indegree = vec![0usize; n];
        for &(_, t) in &self.edges {
            indegree[t] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &(f, t) in &self.edges {
                if f == v {
                    indegree[t] -= 1;
                    if indegree[t] == 0 {
                        queue.push(t);
                    }
                }
            }
        }
        if order.len() != n {
            return Err(PpcError::InvalidState("graph contains a cycle".into()));
        }
        Ok(order)
    }

    /// Group vertex indices by stage, stages sorted ascending — the unit the
    /// runtime executes with a barrier between stages, like Dryad's stage
    /// manager.
    pub fn stages(&self) -> Vec<Vec<usize>> {
        let max_stage = self
            .vertices
            .iter()
            .map(|v| v.stage)
            .max()
            .map(|s| s + 1)
            .unwrap_or(0);
        let mut stages = vec![Vec::new(); max_stage];
        for (i, v) in self.vertices.iter().enumerate() {
            stages[v.stage].push(i);
        }
        stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_topo_sort() {
        let mut g = Graph::new();
        let a = g.add_vertex("read-0", 0, 0);
        let b = g.add_vertex("read-1", 0, 1);
        let c = g.add_vertex("select-0", 1, 0);
        let d = g.add_vertex("select-1", 1, 1);
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        let order = g.topological_order().unwrap();
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 2);
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new();
        let a = g.add_vertex("a", 0, 0);
        let b = g.add_vertex("b", 0, 1);
        g.add_edge(a, b).unwrap();
        g.add_edge(b, a).unwrap();
        assert_eq!(g.topological_order().unwrap_err().code(), "InvalidState");
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Graph::new();
        let a = g.add_vertex("a", 0, 0);
        assert!(g.add_edge(a, a).is_err());
    }

    #[test]
    fn bad_edge_rejected() {
        let mut g = Graph::new();
        let a = g.add_vertex("a", 0, 0);
        assert!(g.add_edge(a, 99).is_err());
    }

    #[test]
    fn stages_group_vertices() {
        let mut g = Graph::new();
        g.add_vertex("r0", 0, 0);
        g.add_vertex("r1", 0, 1);
        g.add_vertex("s0", 1, 0);
        let stages = g.stages();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0], vec![0, 1]);
        assert_eq!(stages[1], vec![2]);
    }

    #[test]
    fn inputs_of() {
        let mut g = Graph::new();
        let a = g.add_vertex("a", 0, 0);
        let b = g.add_vertex("b", 0, 1);
        let c = g.add_vertex("c", 1, 0);
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.inputs_of(c), vec![a, b]);
        assert!(g.inputs_of(a).is_empty());
    }
}
