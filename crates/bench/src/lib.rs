//! # ppc-bench — regenerate every table and figure of the paper
//!
//! Each `figNN_*` / `tableN_*` function reproduces one exhibit of the
//! paper's evaluation as a `ppc_core::report` table; the binaries under
//! `src/bin/` print them (`cargo run -p ppc-bench --bin fig04_...`), and
//! `--bin all` prints the whole evaluation section in order.
//!
//! Absolute values are *modeled* seconds/dollars from the calibrated
//! simulator (DESIGN.md §6 lists the anchors); the claims being reproduced
//! are the paper's *shapes* — orderings, ratios, crossovers — which the
//! tests at the bottom of this crate assert.

pub mod ablations;
pub mod figures;
pub mod tables;
pub mod traces;
pub mod workflows;

pub use figures::*;
pub use tables::*;
