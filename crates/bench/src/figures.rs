//! Figures 3–15.

use ppc_apps::experiment::{
    azure_instance_study, ec2_instance_study, run_platform, InstanceStudyRow, Platform,
};
use ppc_apps::workload;
use ppc_classic::{sequential_baseline_seconds, simulate as classic_sim, SimConfig};
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::{
    InstanceType, AZURE_SMALL, BARE_HPC16, BARE_XEON24, EC2_HCXL, EC2_HM4XL, EC2_LARGE,
};
use ppc_compute::model::AppModel;
use ppc_core::metrics::{avg_time_per_task_per_core, parallel_efficiency};
use ppc_core::report::{Figure, Series};
use ppc_core::task::TaskSpec;
use ppc_dryad::{DryadEngine, DryadSimConfig};
use ppc_exec::{Engine, RunContext};
use ppc_mapreduce::{HadoopEngine, HadoopSimConfig};

fn cost_figure(title: &str, rows: &[InstanceStudyRow]) -> Figure {
    let mut fig = Figure::new(title, "Instance type - n x workers", "cost ($)").with_precision(2);
    let mut compute = Series::new("Compute Cost (hour units)");
    let mut amortized = Series::new("Amortized Cost");
    for r in rows {
        compute.push(r.label.clone(), r.cost.compute_cost.as_f64());
        amortized.push(r.label.clone(), r.cost.amortized_cost.as_f64());
    }
    fig.add(compute);
    fig.add(amortized);
    fig
}

fn time_figure(title: &str, rows: &[InstanceStudyRow]) -> Figure {
    let mut fig =
        Figure::new(title, "Instance type - n x workers", "Compute Time (s)").with_precision(0);
    let mut s = Series::new("Compute Time");
    for r in rows {
        s.push(r.label.clone(), r.makespan_seconds);
    }
    fig.add(s);
    fig
}

// ---------------------------------------------------------------- Cap3

/// Figure 3/4 share the study: 200 files × 200 reads on 16 cores.
pub fn cap3_instance_rows() -> Vec<InstanceStudyRow> {
    let tasks = workload::cap3_sim_tasks(200, 200);
    ec2_instance_study(&tasks, AppModel::cap3(), 3)
}

/// Figure 3: Cap3 cost with different EC2 instance types.
pub fn fig03() -> Figure {
    cost_figure(
        "Figure 3: Cap3 cost with different EC2 instance types",
        &cap3_instance_rows(),
    )
}

/// Figure 4: Cap3 compute time with different instance types.
pub fn fig04() -> Figure {
    time_figure(
        "Figure 4: Cap3 compute time with different EC2 instance types",
        &cap3_instance_rows(),
    )
}

/// Figures 5/6 sweep: 128-core fleets per platform, 458-read files
/// replicated 1..=4 (weak scaling by data, the paper's method).
pub fn cap3_scalability() -> Vec<(usize, Vec<ppc_apps::experiment::ScalePoint>)> {
    let base = workload::cap3_sim_tasks(256, 458);
    (1..=4)
        .map(|rep| {
            let tasks = workload::replicate(&base, rep);
            let points = Platform::ALL
                .iter()
                .map(|&p| run_platform(p, "cap3", &tasks, AppModel::cap3(), 5))
                .collect();
            (tasks.len(), points)
        })
        .collect()
}

/// Figure 5: Cap3 parallel efficiency.
pub fn fig05() -> Figure {
    let mut fig = Figure::new(
        "Figure 5: Cap3 parallel efficiency (128 cores)",
        "files",
        "parallel efficiency",
    )
    .with_precision(3);
    let sweep = cap3_scalability();
    for platform in Platform::ALL {
        let mut s = Series::new(platform.label());
        for (n_files, points) in &sweep {
            let p = points
                .iter()
                .find(|p| p.platform == platform.label())
                .expect("platform present");
            s.push(n_files.to_string(), p.efficiency);
        }
        fig.add(s);
    }
    fig
}

/// Figure 6: Cap3 execution time for a single file per core.
pub fn fig06() -> Figure {
    let mut fig = Figure::new(
        "Figure 6: Cap3 avg time per file per core",
        "files",
        "seconds",
    )
    .with_precision(1);
    let sweep = cap3_scalability();
    for platform in Platform::ALL {
        let mut s = Series::new(platform.label());
        for (n_files, points) in &sweep {
            let p = points
                .iter()
                .find(|p| p.platform == platform.label())
                .expect("platform present");
            s.push(n_files.to_string(), p.per_task_per_core_seconds);
        }
        fig.add(s);
    }
    fig
}

// ---------------------------------------------------------------- BLAST

/// Figures 7/8 study: 64 query files × 100 sequences on 16 cores.
pub fn blast_instance_rows() -> Vec<InstanceStudyRow> {
    let tasks = workload::blast_sim_tasks(64, 100);
    ec2_instance_study(&tasks, AppModel::DEFAULT, 7)
}

/// Figure 7: cost to process 64 query files using BLAST in EC2.
pub fn fig07() -> Figure {
    cost_figure(
        "Figure 7: BLAST cost with different EC2 instance types",
        &blast_instance_rows(),
    )
}

/// Figure 8: time to process 64 query files using BLAST in EC2.
pub fn fig08() -> Figure {
    time_figure(
        "Figure 8: BLAST compute time with different EC2 instance types",
        &blast_instance_rows(),
    )
}

/// Figure 9: time to process 8 query files using BLAST on Azure instance
/// types, split as workers × threads per instance.
pub fn fig09() -> Figure {
    let tasks = workload::blast_sim_tasks(8, 100);
    // The paper's grid: every 2^i x 2^j split that fits each instance.
    let splits = [
        (1, 1),
        (2, 1),
        (1, 2),
        (4, 1),
        (2, 2),
        (1, 4),
        (8, 1),
        (4, 2),
        (2, 4),
        (1, 8),
    ];
    let grid = azure_instance_study(&tasks, AppModel::DEFAULT, &splits, 9);
    let mut fig = Figure::new(
        "Figure 9: BLAST on Azure instance types (workers x threads per instance)",
        "workers x threads",
        "Compute Time (s)",
    )
    .with_precision(0);
    for (itype, rows) in grid {
        let mut s = Series::new(itype);
        for r in rows {
            s.push(r.label.clone(), r.makespan_seconds);
        }
        fig.add(s);
    }
    fig
}

/// Figures 10/11 sweep: the 128-file inhomogeneous base set replicated
/// 1..=6 on 128-core fleets.
pub fn blast_scalability() -> Vec<(usize, Vec<ppc_apps::experiment::ScalePoint>)> {
    let base = workload::blast_sim_base_set(11);
    (1..=6)
        .map(|rep| {
            let tasks = workload::replicate(&base, rep);
            let points = Platform::ALL
                .iter()
                .map(|&p| run_platform(p, "blast", &tasks, AppModel::DEFAULT, 13))
                .collect();
            (tasks.len(), points)
        })
        .collect()
}

/// Figure 10: BLAST parallel efficiency.
pub fn fig10() -> Figure {
    let mut fig = Figure::new(
        "Figure 10: BLAST parallel efficiency (128 cores)",
        "files",
        "parallel efficiency",
    )
    .with_precision(3);
    let sweep = blast_scalability();
    for platform in Platform::ALL {
        let mut s = Series::new(platform.label());
        for (n_files, points) in &sweep {
            let p = points
                .iter()
                .find(|p| p.platform == platform.label())
                .expect("platform present");
            s.push(n_files.to_string(), p.efficiency);
        }
        fig.add(s);
    }
    fig
}

/// Figure 11: BLAST average time to process a single query file.
pub fn fig11() -> Figure {
    let mut fig = Figure::new(
        "Figure 11: BLAST avg time per query file per core",
        "files",
        "seconds",
    )
    .with_precision(1);
    let sweep = blast_scalability();
    for platform in Platform::ALL {
        let mut s = Series::new(platform.label());
        for (n_files, points) in &sweep {
            let p = points
                .iter()
                .find(|p| p.platform == platform.label())
                .expect("platform present");
            s.push(n_files.to_string(), p.per_task_per_core_seconds);
        }
        fig.add(s);
    }
    fig
}

// ---------------------------------------------------------------- GTM

/// Figures 12/13 study: 264 files × 100k points on 16 cores.
pub fn gtm_instance_rows() -> Vec<InstanceStudyRow> {
    let tasks = workload::gtm_sim_tasks(264, 100_000);
    ec2_instance_study(&tasks, AppModel::DEFAULT, 17)
}

/// Figure 12: GTM interpolation cost with different instance types.
pub fn fig12() -> Figure {
    cost_figure(
        "Figure 12: GTM cost with different EC2 instance types",
        &gtm_instance_rows(),
    )
}

/// Figure 13: GTM interpolation compute time with different instance types.
pub fn fig13() -> Figure {
    time_figure(
        "Figure 13: GTM compute time with different EC2 instance types",
        &gtm_instance_rows(),
    )
}

/// One GTM scalability point on an explicit fleet through the Classic sim.
fn gtm_classic_point(
    itype: InstanceType,
    n: usize,
    workers: usize,
    tasks: &[TaskSpec],
) -> (f64, f64) {
    let cluster = Cluster::provision(itype, n, workers);
    let cfg = SimConfig::ec2().with_app(AppModel::DEFAULT).with_seed(19);
    let report = classic_sim(&RunContext::new(&cluster), tasks, &cfg);
    let t1 = sequential_baseline_seconds(&itype, tasks, &AppModel::DEFAULT);
    let cores = cluster.total_workers();
    (
        parallel_efficiency(t1, report.summary.makespan_seconds, cores),
        avg_time_per_task_per_core(report.summary.makespan_seconds, cores, tasks.len()),
    )
}

/// One GTM point on Hadoop / Dryad bare metal.
fn gtm_platform_point(platform: Platform, tasks: &[TaskSpec]) -> (f64, f64) {
    let cluster = platform.fleet("gtm", 128);
    let itype = cluster.itype();
    let app = AppModel::DEFAULT;
    // Platform picks the engine; the simulate call is paradigm-generic.
    let engine: Box<dyn Engine> = match platform {
        Platform::Hadoop => Box::new(HadoopEngine {
            sim: HadoopSimConfig {
                app,
                ..Default::default()
            },
            ..Default::default()
        }),
        Platform::Dryad => Box::new(DryadEngine {
            sim: DryadSimConfig {
                app,
                ..Default::default()
            },
            ..Default::default()
        }),
        _ => unreachable!("classic platforms use gtm_classic_point"),
    };
    let ctx = RunContext::new(&cluster).with_seed(19);
    let summary = engine.simulate(&ctx, tasks).summary;
    let t1 = sequential_baseline_seconds(&itype, tasks, &app);
    let cores = cluster.total_workers();
    (
        parallel_efficiency(t1, summary.makespan_seconds, cores),
        avg_time_per_task_per_core(summary.makespan_seconds, cores, tasks.len()),
    )
}

/// Per-replication scalability points: (n_files, efficiency, per-file-core seconds).
pub type ScalabilitySeries = Vec<(usize, f64, f64)>;

/// GTM scalability series: per-series (label, per-replication points).
pub fn gtm_scalability() -> Vec<(String, ScalabilitySeries)> {
    let base = workload::gtm_sim_tasks(66, 100_000);
    let reps: Vec<Vec<TaskSpec>> = (1..=4).map(|r| workload::replicate(&base, r)).collect();
    // The paper plots EC2 Large / HCXL / HM4XL separately for GTM (§6.2).
    let mut out: Vec<(String, ScalabilitySeries)> = Vec::new();
    let classic: [(&str, InstanceType, usize, usize); 4] = [
        ("EC2 Large", EC2_LARGE, 64, 2),
        ("EC2 HCXL", EC2_HCXL, 16, 8),
        ("EC2 HM4XL", EC2_HM4XL, 16, 8),
        ("Azure Small", AZURE_SMALL, 128, 1),
    ];
    for (label, itype, n, w) in classic {
        let pts = reps
            .iter()
            .map(|tasks| {
                let (eff, per) = gtm_classic_point(itype, n, w, tasks);
                (tasks.len(), eff, per)
            })
            .collect();
        out.push((label.to_string(), pts));
    }
    for platform in [Platform::Hadoop, Platform::Dryad] {
        let pts = reps
            .iter()
            .map(|tasks| {
                let (eff, per) = gtm_platform_point(platform, tasks);
                (tasks.len(), eff, per)
            })
            .collect();
        out.push((platform.label().to_string(), pts));
    }
    out
}

/// Figure 14: GTM interpolation parallel efficiency.
pub fn fig14() -> Figure {
    let mut fig = Figure::new(
        "Figure 14: GTM interpolation parallel efficiency",
        "files",
        "parallel efficiency",
    )
    .with_precision(3);
    for (label, pts) in gtm_scalability() {
        let mut s = Series::new(label);
        for (files, eff, _) in pts {
            s.push(files.to_string(), eff);
        }
        fig.add(s);
    }
    fig
}

/// Figure 15: GTM interpolation performance per core.
pub fn fig15() -> Figure {
    let mut fig = Figure::new(
        "Figure 15: GTM avg time per file per core",
        "files",
        "seconds",
    )
    .with_precision(1);
    for (label, pts) in gtm_scalability() {
        let mut s = Series::new(label);
        for (files, _, per) in pts {
            s.push(files.to_string(), per);
        }
        fig.add(s);
    }
    fig
}

/// §5.2's cost footnote: "The amortized cost to process 768*100 queries
/// using Classic Cloud-BLAST was ~10$ using EC2 and ~12.50$ using Azure."
/// EC2 ran 16 HCXL; Azure ran 16 Large instances.
pub fn blast_cost_at_scale() -> (ppc_core::Usd, ppc_core::Usd) {
    use ppc_compute::instance::AZURE_LARGE;
    let tasks = {
        let base = workload::blast_sim_base_set(11);
        workload::replicate(&base, 6)
    };
    let ec2_cluster = Cluster::provision_per_core(EC2_HCXL, 16);
    let ec2 = classic_sim(
        &RunContext::new(&ec2_cluster),
        &tasks,
        &SimConfig::ec2().with_seed(21),
    );
    let az_cluster = Cluster::provision_per_core(AZURE_LARGE, 16);
    let az = classic_sim(
        &RunContext::new(&az_cluster),
        &tasks,
        &SimConfig::azure().with_seed(21),
    );
    (
        ec2_cluster
            .cost(ec2.summary.makespan_seconds)
            .amortized_cost,
        az_cluster.cost(az.summary.makespan_seconds).amortized_cost,
    )
}

/// The bare-metal node type used by the GTM Dryad baseline — re-exported
/// for the ablation binaries.
pub fn dryad_gtm_node() -> InstanceType {
    BARE_HPC16
}

/// The bare-metal node type used by the GTM Hadoop baseline.
pub fn hadoop_gtm_node() -> InstanceType {
    BARE_XEON24
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_value(fig: &Figure, series: &str, x: &str) -> f64 {
        fig.series
            .iter()
            .find(|s| s.label == series)
            .unwrap_or_else(|| panic!("series {series}"))
            .value_at(x)
            .unwrap_or_else(|| panic!("x {x}"))
    }

    #[test]
    fn fig04_ordering_matches_paper() {
        let rows = cap3_instance_rows();
        let by = |p: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(p))
                .unwrap()
                .makespan_seconds
        };
        assert!(by("HM4XL") < by("HCXL"));
        assert!(by("HCXL") < by("XL"));
        // Figure 4's scale: on the order of 1000-2000 s.
        assert!((600.0..2500.0).contains(&by("HCXL")), "{}", by("HCXL"));
    }

    #[test]
    fn fig03_hcxl_most_cost_effective() {
        let rows = cap3_instance_rows();
        let cheapest = rows.iter().min_by_key(|r| r.cost.compute_cost).unwrap();
        assert!(cheapest.label.starts_with("HCXL"));
        // Amortized always <= compute cost.
        for r in &rows {
            assert!(r.cost.amortized_cost <= r.cost.compute_cost);
        }
    }

    #[test]
    fn fig05_efficiencies_within_20_percent_band() {
        let fig = fig05();
        // The paper: "all four implementations exhibit comparable parallel
        // efficiency (within 20%) with low parallelization overheads".
        let effs: Vec<f64> = Platform::ALL
            .iter()
            .map(|p| series_value(&fig, p.label(), "1024"))
            .collect();
        for &e in &effs {
            assert!(e > 0.6 && e <= 1.05, "efficiency {e}");
        }
        let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = effs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min <= 0.25, "platform spread {min}..{max}");
    }

    #[test]
    fn fig06_windows_cap3_faster_per_file() {
        let fig = fig06();
        // Cap3 runs ~12.5% faster on Windows: Azure/Dryad per-file times
        // undercut EC2/Hadoop.
        let ec2 = series_value(&fig, "EC2", "1024");
        let azure = series_value(&fig, "Azure", "1024");
        let hadoop = series_value(&fig, "Hadoop", "1024");
        let dryad = series_value(&fig, "DryadLINQ", "1024");
        assert!(azure < ec2, "azure {azure} vs ec2 {ec2}");
        assert!(dryad < hadoop, "dryad {dryad} vs hadoop {hadoop}");
    }

    #[test]
    fn fig08_memory_pressure_shapes_blast() {
        let rows = blast_instance_rows();
        let by = |p: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(p))
                .unwrap()
                .makespan_seconds
        };
        // HM4XL fastest (clock + memory); HCXL roughly comparable to XL
        // (clock advantage offsets memory-pressure penalty, §5.1).
        assert!(by("HM4XL") < by("HCXL"));
        let ratio = by("HCXL") / by("XL");
        assert!((0.7..1.4).contains(&ratio), "HCXL/XL ratio {ratio}");
        // HCXL still most cost-effective (§5.1).
        let cheapest = rows.iter().min_by_key(|r| r.cost.compute_cost).unwrap();
        assert!(cheapest.label.starts_with("HCXL"), "{}", cheapest.label);
    }

    #[test]
    fn fig09_large_memory_wins_blast_on_azure() {
        let fig = fig09();
        let best = |series: &str| {
            fig.series
                .iter()
                .find(|s| s.label == series)
                .unwrap()
                .points
                .iter()
                .map(|&(_, v)| v)
                .fold(f64::INFINITY, f64::min)
        };
        // "Azure Large and Extra-Large instances deliver the best
        // performance for BLAST" — the DB fits in memory there.
        assert!(best("azure-large") < best("azure-small"));
        assert!(best("azure-xlarge") < best("azure-medium"));
    }

    #[test]
    fn fig10_shapes() {
        let fig = fig10();
        // EC2 BLAST efficiency lowest of the four (§5.2: HCXL memory limits),
        // Windows platforms (Azure/Dryad) at or above the others.
        let at = |p: &str| series_value(&fig, p, "768");
        assert!(
            at("EC2") < at("Azure"),
            "ec2 {} vs azure {}",
            at("EC2"),
            at("Azure")
        );
        assert!(at("EC2") < at("DryadLINQ"));
        for p in Platform::ALL {
            let e = at(p.label());
            assert!(e > 0.45 && e <= 1.05, "{}: {e}", p.label());
        }
    }

    #[test]
    fn fig13_gtm_memory_bottleneck() {
        let rows = gtm_instance_rows();
        let by = |p: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(p))
                .unwrap()
                .makespan_seconds
        };
        // HM4XL best performance; HCXL most economical (§6.1).
        assert!(by("HM4XL") < by("HCXL"));
        assert!(by("HM4XL") < by("L -"));
        let cheapest = gtm_instance_rows()
            .iter()
            .min_by_key(|r| r.cost.compute_cost)
            .unwrap()
            .label
            .clone();
        assert!(cheapest.starts_with("HCXL"), "{cheapest}");
    }

    #[test]
    fn fig14_efficiency_ordering() {
        let fig = fig14();
        let at = |s: &str| series_value(&fig, s, "264");
        // §6.2: Azure Small best overall efficiency; EC2 Large best among
        // EC2 types; DryadLINQ (16-core nodes) lowest.
        assert!(at("Azure Small") > at("EC2 HCXL"));
        assert!(at("EC2 Large") > at("EC2 HCXL"));
        assert!(at("DryadLINQ") < at("Hadoop"));
        assert!(at("DryadLINQ") < at("EC2 Large"));
    }

    #[test]
    fn blast_cost_at_scale_matches_paper_ratio() {
        // Paper: ~$10 EC2 vs ~$12.50 Azure amortized for 768 query files —
        // Azure costs ~25% more. Our modeled dollars are lower in absolute
        // terms, but the provider ratio must hold.
        let (ec2, azure) = blast_cost_at_scale();
        assert!(azure > ec2, "azure {azure} vs ec2 {ec2}");
        let ratio = azure.as_f64() / ec2.as_f64();
        assert!(
            (1.02..1.7).contains(&ratio),
            "azure/ec2 amortized ratio {ratio}"
        );
        // Same order of magnitude as the paper's dollars.
        assert!((3.0..20.0).contains(&ec2.as_f64()), "ec2 {ec2}");
        assert!((4.0..25.0).contains(&azure.as_f64()), "azure {azure}");
    }

    #[test]
    fn instance_orderings_robust_across_seeds() {
        // The headline orderings must not be artifacts of one RNG seed.
        for seed in [1u64, 7, 99, 1234, 777] {
            let cap3 =
                ec2_instance_study(&workload::cap3_sim_tasks(200, 200), AppModel::cap3(), seed);
            let by = |rows: &[InstanceStudyRow], p: &str| {
                rows.iter()
                    .find(|r| r.label.starts_with(p))
                    .unwrap()
                    .makespan_seconds
            };
            assert!(by(&cap3, "HM4XL") < by(&cap3, "HCXL"), "seed {seed}");
            assert!(by(&cap3, "HCXL") < by(&cap3, "L -"), "seed {seed}");
            let cheapest = cap3.iter().min_by_key(|r| r.cost.compute_cost).unwrap();
            assert!(
                cheapest.label.starts_with("HCXL"),
                "seed {seed}: {}",
                cheapest.label
            );

            let gtm = ec2_instance_study(
                &workload::gtm_sim_tasks(264, 100_000),
                AppModel::DEFAULT,
                seed,
            );
            assert!(by(&gtm, "HM4XL") < by(&gtm, "HCXL"), "seed {seed}");
            let gtm_slowest = gtm
                .iter()
                .max_by(|a, b| a.makespan_seconds.total_cmp(&b.makespan_seconds))
                .unwrap();
            assert!(
                gtm_slowest.label.starts_with("HCXL"),
                "seed {seed}: {}",
                gtm_slowest.label
            );
        }
    }

    #[test]
    fn figures_render_non_empty() {
        for fig in [fig03(), fig04(), fig09(), fig12(), fig15()] {
            let table = fig.to_table();
            assert!(!table.is_empty(), "{}", fig.title);
            assert!(!fig.to_csv().is_empty());
        }
    }
}
