//! Traced reference runs: one span trace per paradigm simulator on the
//! same Cap3 workload, plus their overhead decompositions.
//!
//! This is the module behind `--bin trace_artifact`, which CI runs to
//! publish a `chrome://tracing` / Perfetto JSON of a full run.

use ppc_apps::workload;
use ppc_classic::{simulate as classic_sim, SimConfig};
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc_compute::model::AppModel;
use ppc_dryad::{simulate as dryad_sim, DryadSimConfig};
use ppc_exec::RunContext;
use ppc_mapreduce::{simulate as hadoop_sim, HadoopSimConfig};
use ppc_trace::{OverheadReport, Trace};

/// One traced Cap3 run per paradigm simulator, in Table 3 order.
pub fn traced_cap3_runs() -> Vec<Trace> {
    let tasks = workload::cap3_sim_tasks(128, 200);

    let classic_cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let mut classic_cfg = SimConfig::ec2().with_app(AppModel::cap3());
    classic_cfg.trace = true;
    let classic = classic_sim(&RunContext::new(&classic_cluster), &tasks, &classic_cfg);

    let bare_cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let hadoop_cfg = HadoopSimConfig {
        app: AppModel::cap3(),
        trace: true,
        ..HadoopSimConfig::default()
    };
    let hadoop = hadoop_sim(&RunContext::new(&bare_cluster), &tasks, &hadoop_cfg);

    let dryad_cfg = DryadSimConfig {
        app: AppModel::cap3(),
        trace: true,
        ..DryadSimConfig::default()
    };
    let dryad = dryad_sim(&RunContext::new(&bare_cluster), &tasks, &dryad_cfg);

    vec![
        classic.core.trace.expect("classic sim trace"),
        hadoop.core.trace.expect("hadoop sim trace"),
        dryad.core.trace.expect("dryad sim trace"),
    ]
}

/// The rendered overhead decompositions for every traced run.
pub fn overhead_decompositions() -> String {
    traced_cap3_runs()
        .iter()
        .map(|t| OverheadReport::from_trace(t).render())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_runs_are_sound_and_decompose() {
        for trace in traced_cap3_runs() {
            let problems = trace.check_well_formed();
            assert!(problems.is_empty(), "{problems:?}");
            let report = OverheadReport::from_trace(&trace);
            assert!(report.compute_s > 0.0, "{}", report.platform);
            // The decomposition never invents core-time. The bound is the
            // horizon (last span end), not the makespan: speculative
            // duplicates keep running (and burning cores) after the job
            // completes, and the report accounts for exactly that.
            assert!(report.horizon_s >= report.makespan_s);
            let total = report.compute_s + report.overhead_s() + report.idle_s;
            assert!(
                (total - report.cores as f64 * report.horizon_s).abs()
                    <= report.cores as f64 * report.horizon_s * 1e-9 + 1e-6,
                "{}: buckets must tile cores x horizon exactly",
                report.platform
            );
            let json = ppc_trace::chrome_trace_json(&trace);
            assert!(json.contains("traceEvents"));
        }
    }
}
