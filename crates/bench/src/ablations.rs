//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures: each isolates one mechanism the
//! paper's architecture discussion credits, and measures what happens
//! without it.

use ppc_apps::workload;
use ppc_autoscale::{AutoscaleConfig, Policy as ScalePolicy, StepRule};
use ppc_chaos::FaultSchedule;
use ppc_classic::{simulate as classic_sim, SimConfig};
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::{BARE_CAP3, EC2_HCXL};
use ppc_compute::model::AppModel;
use ppc_core::json::Json;
use ppc_core::report::{Figure, Series};
use ppc_dryad::{simulate as dryad_sim, DryadSimConfig};
use ppc_exec::RunContext;
use ppc_mapreduce::{simulate as hadoop_sim, HadoopSimConfig};
use ppc_storage::latency::LatencyModel;
use std::sync::Arc;

/// Visibility timeout vs wasted work (§2.1.3's fault-tolerance knob): with
/// worker failures on, a short timeout re-executes tasks aggressively, while
/// a long one idles before recovering. Reports makespan and redundant
/// executions across timeouts.
pub fn ablate_visibility_timeout() -> Figure {
    let tasks = workload::cap3_sim_tasks(256, 200);
    let cluster = Cluster::provision_per_core(EC2_HCXL, 4);
    let mut fig = Figure::new(
        "Ablation: visibility timeout under 5% worker failure",
        "visibility timeout (s)",
        "value",
    )
    .with_precision(1);
    let mut makespan = Series::new("makespan (s)");
    let mut redundant = Series::new("redundant executions");
    for timeout in [30.0, 60.0, 120.0, 300.0, 600.0, 1800.0] {
        let cfg = SimConfig::ec2()
            .with_app(AppModel::cap3())
            .with_failures(0.05, timeout);
        let report = classic_sim(&RunContext::new(&cluster), &tasks, &cfg);
        makespan.push(format!("{timeout}"), report.summary.makespan_seconds);
        redundant.push(format!("{timeout}"), report.redundant_executions() as f64);
    }
    fig.add(makespan);
    fig.add(redundant);
    fig
}

/// Chaos ablation: the same i.i.d. worker-death dice (one shared
/// [`FaultSchedule`] per rate) swept across all three paradigm simulators.
/// Each paradigm pays for recovery with its own mechanism — queue
/// redelivery after the visibility timeout (Classic), immediate attempt
/// re-execution (Hadoop), vertex re-runs within the static partition
/// (Dryad) — so the makespan curves separate exactly where Table 3's
/// fault-tolerance rows differ.
pub fn ablate_fault_rate() -> Figure {
    let tasks = workload::cap3_sim_tasks(256, 200);
    let mut fig = Figure::new(
        "Ablation: worker-death rate across paradigms (shared chaos dice)",
        "P(worker death per task attempt)",
        "makespan (s)",
    )
    .with_precision(0);
    let classic_cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let bare_cluster = Cluster::provision(BARE_CAP3, 4, 8);
    let classic_cfg = SimConfig::ec2()
        .with_app(AppModel::cap3())
        .with_failures(0.0, 300.0);
    let hadoop_cfg = HadoopSimConfig {
        app: AppModel::cap3(),
        ..HadoopSimConfig::default()
    };
    let dryad_cfg = DryadSimConfig {
        app: AppModel::cap3(),
        ..DryadSimConfig::default()
    };
    let mut classic = Series::new("Classic Cloud (queue redelivery)");
    let mut hadoop = Series::new("Hadoop (attempt re-execution)");
    let mut dryad = Series::new("DryadLINQ (vertex re-run)");
    for rate in [0.0, 0.02, 0.05, 0.1, 0.2] {
        let schedule = Arc::new(FaultSchedule::new(7).with_death_probabilities(rate, 0.0, 0.0));
        let label = format!("{rate}");
        let c = classic_sim(
            &RunContext::new(&classic_cluster).with_schedule(schedule.clone()),
            &tasks,
            &classic_cfg,
        );
        classic.push(label.clone(), c.summary.makespan_seconds);
        let h = hadoop_sim(
            &RunContext::new(&bare_cluster).with_schedule(schedule.clone()),
            &tasks,
            &hadoop_cfg,
        );
        hadoop.push(label.clone(), h.summary.makespan_seconds);
        let d = dryad_sim(
            &RunContext::new(&bare_cluster).with_schedule(schedule),
            &tasks,
            &dryad_cfg,
        );
        dryad.push(label, d.summary.makespan_seconds);
    }
    fig.add(classic);
    fig.add(hadoop);
    fig.add(dryad);
    fig
}

/// Inhomogeneous tasks with a *bounded* spread: log-normal service times
/// clamped to [mean/6, 3·mean] so that no single task dominates the
/// makespan — the regime where scheduling policy (not task size) decides
/// the outcome, matching the paper's inhomogeneous-data study.
fn bounded_skew_tasks(
    n: usize,
    mean_s: f64,
    sigma: f64,
    seed: u64,
) -> Vec<ppc_core::task::TaskSpec> {
    let mut rng = ppc_core::rng::Pcg32::new(seed);
    (0..n)
        .map(|i| {
            let mu = mean_s.ln() - sigma * sigma / 2.0;
            let secs = rng.log_normal(mu, sigma).clamp(mean_s / 6.0, mean_s * 3.0);
            let mut p = ppc_core::task::ResourceProfile::cpu_bound(secs);
            p.input_bytes = 256 << 10;
            ppc_core::task::TaskSpec::new(i as u64, "cap3", format!("skew/f{i:05}"), p)
        })
        .collect()
}

/// Dynamic global queue (Hadoop/Classic) vs static partitioning (Dryad) on
/// increasingly inhomogeneous data — the §4.2 load-balancing discussion.
pub fn ablate_load_balance() -> Figure {
    let mut fig = Figure::new(
        "Ablation: dynamic vs static scheduling on inhomogeneous data",
        "task-time log-normal sigma",
        "makespan (s)",
    )
    .with_precision(0);
    let cluster = Cluster::provision(BARE_CAP3, 32, 8);
    let mut hadoop = Series::new("Hadoop (dynamic global queue)");
    let mut dryad = Series::new("DryadLINQ (static partitions)");
    for sigma in [0.0, 0.3, 0.6, 0.9, 1.2] {
        let tasks = bounded_skew_tasks(1024, 300.0, sigma, 23);
        let h = hadoop_sim(
            &RunContext::new(&cluster),
            &tasks,
            &HadoopSimConfig {
                app: AppModel::cap3(),
                ..Default::default()
            },
        );
        let d = dryad_sim(
            &RunContext::new(&cluster),
            &tasks,
            &DryadSimConfig {
                app: AppModel::cap3(),
                ..Default::default()
            },
        );
        hadoop.push(format!("{sigma}"), h.summary.makespan_seconds);
        dryad.push(format!("{sigma}"), d.summary.makespan_seconds);
    }
    fig.add(hadoop);
    fig.add(dryad);
    fig
}

/// Data-locality scheduling on/off vs input size (§6.2: "Hadoop and
/// DryadLINQ applications have an advantage of data locality-based
/// scheduling over EC2" when inputs grow).
pub fn ablate_locality() -> Figure {
    let mut fig = Figure::new(
        "Ablation: Hadoop data-locality scheduling vs input file size",
        "input MB per task",
        "makespan (s)",
    )
    .with_precision(0);
    let cluster = Cluster::provision(BARE_CAP3, 16, 8);
    let mut with_locality = Series::new("locality-aware scheduling");
    let mut without = Series::new("locality-blind scheduling");
    for mb in [1u64, 8, 32, 128, 512] {
        let mut tasks = workload::cap3_sim_tasks(512, 100);
        for t in tasks.iter_mut() {
            t.profile.input_bytes = mb << 20;
        }
        let on = HadoopSimConfig {
            app: AppModel::cap3(),
            ..Default::default()
        };
        let off = HadoopSimConfig {
            app: AppModel::cap3(),
            ignore_locality: true,
            ..Default::default()
        };
        let a = hadoop_sim(&RunContext::new(&cluster), &tasks, &on);
        let b = hadoop_sim(&RunContext::new(&cluster), &tasks, &off);
        with_locality.push(format!("{mb}"), a.summary.makespan_seconds);
        without.push(format!("{mb}"), b.summary.makespan_seconds);
    }
    fig.add(with_locality);
    fig.add(without);
    fig
}

/// Task granularity vs overhead share (the paper's "sufficiently coarser
/// grain task decompositions" conclusion, §8): same total work split into
/// ever finer tasks on the Classic Cloud.
pub fn ablate_granularity() -> Figure {
    let mut fig = Figure::new(
        "Ablation: task granularity on the Classic Cloud",
        "queries per task file",
        "parallel efficiency",
    )
    .with_precision(3);
    let cluster = Cluster::provision_per_core(EC2_HCXL, 16);
    let mut eff = Series::new("efficiency");
    let total_queries = 12_800;
    for per_file in [3usize, 12, 25, 100, 400] {
        let n_files = total_queries / per_file;
        let tasks = workload::blast_sim_tasks(n_files, per_file);
        let cfg = SimConfig::ec2().with_seed(29);
        let report = classic_sim(&RunContext::new(&cluster), &tasks, &cfg);
        let t1 =
            ppc_classic::sim::sequential_baseline_seconds(&EC2_HCXL, &tasks, &AppModel::DEFAULT);
        eff.push(
            per_file.to_string(),
            ppc_core::metrics::parallel_efficiency(
                t1,
                report.summary.makespan_seconds,
                cluster.total_workers(),
            ),
        );
    }
    fig.add(eff);
    fig
}

/// Shared-NIC contention vs input size: the Classic Cloud moves every
/// input through the instance's uplink; past some transfer volume the NIC,
/// not the cores, sets the makespan — the flip side of the paper's §6.2
/// "Hadoop and DryadLINQ bring computation to the data" observation.
pub fn ablate_nic_contention() -> Figure {
    let mut fig = Figure::new(
        "Ablation: shared NIC (125 MB/s per instance) vs input size",
        "input MB per task",
        "makespan (s)",
    )
    .with_precision(0);
    let cluster = Cluster::provision_per_core(EC2_HCXL, 2);
    let mut free = Series::new("unconstrained transfers");
    let mut nic = Series::new("shared 125 MB/s NIC per instance");
    for mb in [1u64, 16, 64, 256, 1024] {
        // Light compute (50-read files) so transfers can dominate at the
        // top of the sweep.
        let mut tasks = workload::cap3_sim_tasks(128, 50);
        for t in tasks.iter_mut() {
            t.profile.input_bytes = mb << 20;
        }
        let base = SimConfig {
            jitter_sigma: 0.0,
            ..SimConfig::ec2().with_app(AppModel::cap3())
        };
        let with_nic = SimConfig {
            nic_bandwidth_bytes_per_s: Some(125e6),
            ..base
        };
        free.push(
            format!("{mb}"),
            classic_sim(&RunContext::new(&cluster), &tasks, &base)
                .summary
                .makespan_seconds,
        );
        nic.push(
            format!("{mb}"),
            classic_sim(&RunContext::new(&cluster), &tasks, &with_nic)
                .summary
                .makespan_seconds,
        );
    }
    fig.add(free);
    fig.add(nic);
    fig
}

/// Speculative execution on/off under a straggler-prone cluster — the
/// mechanism the paper credits Hadoop and Dryad with ("duplicate execution
/// of slower executing tasks"), isolated.
#[allow(deprecated)] // deliberately ablates the legacy `speculative` knob
pub fn ablate_speculation() -> Figure {
    let mut fig = Figure::new(
        "Ablation: speculative execution vs straggler probability",
        "P(attempt is 10x slower)",
        "makespan (s)",
    )
    .with_precision(0);
    let cluster = Cluster::provision(BARE_CAP3, 16, 8);
    let tasks = workload::cap3_sim_tasks(512, 200);
    let mut with_spec = Series::new("speculative execution on");
    let mut without = Series::new("speculative execution off");
    for p in [0.0, 0.01, 0.03, 0.05, 0.10] {
        let base = HadoopSimConfig {
            app: AppModel::cap3(),
            straggler_p: p,
            straggler_factor: 10.0,
            ..Default::default()
        };
        let on = hadoop_sim(
            &RunContext::new(&cluster),
            &tasks,
            &HadoopSimConfig {
                speculative: true,
                ..base
            },
        );
        let off = hadoop_sim(
            &RunContext::new(&cluster),
            &tasks,
            &HadoopSimConfig {
                speculative: false,
                ..base
            },
        );
        with_spec.push(format!("{p}"), on.summary.makespan_seconds);
        without.push(format!("{p}"), off.summary.makespan_seconds);
    }
    fig.add(with_spec);
    fig.add(without);
    fig
}

/// Storage latency sensitivity: how slow can the cloud store get before the
/// Classic Cloud loses its efficiency parity (the paper's headline result
/// is that 2010 S3 latencies were *not* disqualifying).
pub fn ablate_storage_latency() -> Figure {
    let mut fig = Figure::new(
        "Ablation: Classic Cloud efficiency vs storage latency",
        "per-request latency (ms)",
        "parallel efficiency",
    )
    .with_precision(3);
    let cluster = Cluster::provision_per_core(EC2_HCXL, 16);
    let tasks = workload::cap3_sim_tasks(1024, 458);
    let mut eff = Series::new("efficiency");
    for ms in [0u64, 30, 100, 300, 1000, 3000, 10000] {
        let mut cfg = SimConfig::ec2().with_app(AppModel::cap3());
        cfg.storage_latency = LatencyModel {
            request_latency_s: ms as f64 / 1e3,
            bandwidth_bytes_per_s: 25e6,
        };
        let report = classic_sim(&RunContext::new(&cluster), &tasks, &cfg);
        let t1 =
            ppc_classic::sim::sequential_baseline_seconds(&EC2_HCXL, &tasks, &AppModel::cap3());
        eff.push(
            ms.to_string(),
            ppc_core::metrics::parallel_efficiency(
                t1,
                report.summary.makespan_seconds,
                cluster.total_workers(),
            ),
        );
    }
    fig.add(eff);
    fig
}

/// Why TwisterAzure (the paper's §8 future work) exists: an iterative
/// computation run as N successive Hadoop jobs re-pays job launch, task
/// dispatch, and input re-reads every round; a Twister-style runtime caches
/// the static input and only re-broadcasts the (small) model. This models
/// both styles for k-means-shaped rounds on the paper's bare-metal cluster.
pub fn ablate_iterative_caching() -> Figure {
    let mut fig = Figure::new(
        "Ablation: iterative MapReduce — per-round job relaunch vs Twister-style caching",
        "iterations",
        "total time (s)",
    )
    .with_precision(0);
    let cluster = Cluster::provision(BARE_CAP3, 16, 8);
    // 512 splits of 64 MB each, ~10 s of compute per split per round.
    let mut tasks = workload::cap3_sim_tasks(512, 48);
    for t in tasks.iter_mut() {
        t.profile.input_bytes = 64 << 20;
    }
    let per_job = HadoopSimConfig {
        app: AppModel::DEFAULT,
        jitter_sigma: 0.0,
        ..Default::default()
    };
    // One Hadoop round (reads inputs, pays dispatch).
    let round_with_io = hadoop_sim(&RunContext::new(&cluster), &tasks, &per_job)
        .summary
        .makespan_seconds;
    // A cached round: no input read, no per-task JVM launch (Twister keeps
    // long-lived workers), just compute + a small broadcast barrier.
    let mut cached_tasks = tasks.clone();
    for t in cached_tasks.iter_mut() {
        t.profile.input_bytes = 0;
    }
    let cached_cfg = HadoopSimConfig {
        dispatch_overhead_s: 0.0,
        ..per_job
    };
    let round_cached = hadoop_sim(&RunContext::new(&cluster), &cached_tasks, &cached_cfg)
        .summary
        .makespan_seconds;

    const HADOOP_JOB_LAUNCH_S: f64 = 15.0; // per-job JobTracker round trip
    const TWISTER_BROADCAST_S: f64 = 0.5; // model re-broadcast per round

    let mut hadoop = Series::new("Hadoop (new job per iteration)");
    let mut twister = Series::new("Twister-style (cached static data)");
    for iters in [1u32, 2, 5, 10, 20, 50] {
        let h = iters as f64 * (HADOOP_JOB_LAUNCH_S + round_with_io);
        let t = round_with_io + (iters as f64 - 1.0) * (TWISTER_BROADCAST_S + round_cached);
        hadoop.push(iters.to_string(), h);
        twister.push(iters.to_string(), t);
    }
    fig.add(hadoop);
    fig.add(twister);
    fig
}

/// The bursty Cap3 workload every autoscaling strategy is judged on: two
/// arrival waves separated by an idle valley, the regime where a fixed
/// fleet sized for the peak pays for capacity the valley never uses.
fn bursty_cap3() -> (Vec<ppc_core::task::TaskSpec>, Vec<f64>) {
    let tasks = workload::cap3_sim_tasks_inhomogeneous(96, 400, 0.6, 11);
    let arrivals = (0..tasks.len())
        .map(|i| if i < 48 { 0.0 } else { 3000.0 })
        .collect();
    (tasks, arrivals)
}

/// Shared controller shape for [`ablate_autoscale`]: quarter-hour billing
/// quanta so the compressed experiment spans several billing boundaries.
fn elastic_cfg(policy: ScalePolicy, min: u32, billing_aware: bool) -> AutoscaleConfig {
    AutoscaleConfig {
        policy,
        min_workers: min,
        max_workers: 8,
        interval_s: 15.0,
        scale_up_cooldown_s: 60.0,
        scale_down_cooldown_s: 120.0,
        warmup_s: 45.0,
        billing_aware,
        billing_window_s: 180.0,
        billing_hour_s: 900.0,
    }
}

/// The four fleet strategies [`ablate_autoscale`] and
/// [`autoscale_timeline_demo`] compare, in display order. "fixed max"
/// pins `min == max`, which degenerates the controller into a static
/// peak-sized fleet billed for the whole run.
fn autoscale_strategies() -> Vec<(&'static str, AutoscaleConfig)> {
    let target = ScalePolicy::TargetBacklog { per_worker: 4.0 };
    let steps = ScalePolicy::StepOnAge {
        rules: vec![
            StepRule {
                min_age_s: 60.0,
                add: 2,
            },
            StepRule {
                min_age_s: 300.0,
                add: 4,
            },
        ],
    };
    vec![
        ("fixed max", elastic_cfg(target.clone(), 8, false)),
        ("target-tracking", elastic_cfg(target.clone(), 1, false)),
        ("step-on-age", elastic_cfg(steps, 1, false)),
        ("billing-aware", elastic_cfg(target, 1, true)),
    ]
}

/// Elastic worker fleets (beyond the paper): the paper provisions a fixed
/// fleet per experiment; `ppc-autoscale` grows and shrinks it from queue
/// telemetry. On a bursty workload a peak-sized fixed fleet buys idle
/// billed hours through the valley, while the elastic policies ride the
/// demand curve — and the billing-aware variant retires instances only
/// near their billing boundary, converting paid-for remainders into work
/// instead of waste.
pub fn ablate_autoscale() -> Figure {
    let (tasks, arrivals) = bursty_cap3();
    let cfg = SimConfig::ec2().with_app(AppModel::cap3());
    let mut fig = Figure::new(
        "Ablation: elastic fleet strategies on a bursty Cap3 workload",
        "strategy",
        "value",
    )
    .with_precision(2);
    let mut makespan = Series::new("makespan (s)");
    let mut cost = Series::new("compute cost (cents)");
    let mut wasted = Series::new("wasted billed hours");
    let mut mean_fleet = Series::new("mean fleet size");
    for (label, autoscale) in autoscale_strategies() {
        let report = classic_sim(
            &RunContext::elastic(EC2_HCXL, autoscale.clone(), arrivals.clone()),
            &tasks,
            &cfg,
        );
        let fleet = report.fleet.as_ref().expect("elastic run reports a fleet");
        makespan.push(label, report.summary.makespan_seconds);
        cost.push(label, fleet.cost.compute_cost.as_f64() * 100.0);
        wasted.push(label, fleet.wasted_hours);
        mean_fleet.push(label, fleet.mean_fleet());
    }
    fig.add(makespan);
    fig.add(cost);
    fig.add(wasted);
    fig.add(mean_fleet);
    fig
}

/// Fleet-size timelines for every strategy in [`ablate_autoscale`], as
/// ASCII step charts over a shared horizon — the visual companion to the
/// figure's aggregate numbers.
pub fn autoscale_timeline_demo() -> String {
    let (tasks, arrivals) = bursty_cap3();
    let cfg = SimConfig::ec2().with_app(AppModel::cap3());
    let runs: Vec<(&str, ppc_classic::report::FleetReport)> = autoscale_strategies()
        .into_iter()
        .map(|(label, autoscale)| {
            let report = classic_sim(
                &RunContext::elastic(EC2_HCXL, autoscale.clone(), arrivals.clone()),
                &tasks,
                &cfg,
            );
            (label, report.fleet.expect("fleet report"))
        })
        .collect();
    let horizon = runs.iter().map(|(_, f)| f.horizon_s).fold(0.0f64, f64::max);
    let mut out = String::from("Fleet-size timelines (billed instances over virtual time)\n");
    for (label, fleet) in &runs {
        out.push_str(&format!(
            "\n{label:>16} | peak {} mean {:.2} | {} billed hours, {:.2} wasted\n",
            fleet.peak_fleet(),
            fleet.mean_fleet(),
            fleet.billed_hours,
            fleet.wasted_hours,
        ));
        out.push_str(&fleet.timeline.render_ascii(72, horizon));
    }
    out
}

/// Sustained-performance variation (paper §3): the authors measured the
/// clouds repeatedly over a week and found CVs of 1.56% (AWS) and 2.25%
/// (Azure). Here: the same job under many seeds of the calibrated jitter
/// model; the reported CV justifies treating single runs as representative.
pub fn sustained_variation() -> Figure {
    let mut fig = Figure::new(
        "Sustained performance: makespan CV over 20 repeated runs",
        "platform",
        "CV (%)",
    )
    .with_precision(2);
    let tasks = workload::cap3_sim_tasks(256, 458);
    let mut series = Series::new("coefficient of variation");
    for (label, jitter) in [("aws", 0.0156f64), ("azure", 0.0225f64)] {
        let cluster = Cluster::provision_per_core(EC2_HCXL, 16);
        let makespans: Vec<f64> = (0..20)
            .map(|seed| {
                let mut cfg = SimConfig::ec2()
                    .with_app(AppModel::cap3())
                    .with_seed(1000 + seed);
                cfg.jitter_sigma = jitter;
                classic_sim(&RunContext::new(&cluster), &tasks, &cfg)
                    .summary
                    .makespan_seconds
            })
            .collect();
        let stats = ppc_core::metrics::Stats::from_sample(&makespans).expect("non-empty");
        series.push(label, stats.cv_percent());
    }
    fig.add(series);
    fig
}

/// Hedged vs unhedged task-latency quantiles under a gray straggler: one
/// slot in sixteen silently computes 30x slower (no crash, no error — the
/// failure mode §3's fault tolerance rows never priced). Returns the
/// headline figure (p99 per paradigm) plus the full machine-readable
/// `BENCH_resilience.json` payload: p50/p95/p99 winner latency, makespan,
/// and wasted-work fraction, hedged vs unhedged, for all three paradigms.
pub fn resilience_bench() -> (Figure, Json) {
    use ppc_core::task::{ResourceProfile, TaskSpec};
    use ppc_resilience::{HedgeConfig, ResiliencePolicy};
    use ppc_trace::{Trace, JOB_TASK};
    use std::collections::HashMap;

    // Winner-based per-task latency: first terminal (committing) span end
    // minus first attempt start; losing duplicates do not count.
    fn winner_latencies(trace: &Trace) -> Vec<f64> {
        let mut started: HashMap<u64, f64> = HashMap::new();
        let mut committed: HashMap<u64, f64> = HashMap::new();
        for s in trace.spans() {
            if s.task == JOB_TASK {
                continue;
            }
            let e = started.entry(s.task).or_insert(f64::INFINITY);
            *e = e.min(s.start_s);
            if s.phase.is_terminal() {
                let d = committed.entry(s.task).or_insert(f64::INFINITY);
                *d = d.min(s.end_s);
            }
        }
        committed
            .iter()
            .map(|(t, done)| done - started[t])
            .collect()
    }
    fn percentile(xs: &mut [f64], q: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1]
    }

    struct Mode {
        latencies: Vec<f64>,
        makespan: f64,
        attempts: usize,
        redundant: usize,
    }
    impl Mode {
        fn to_json(&self) -> Json {
            let mut xs = self.latencies.clone();
            Json::Obj(vec![
                ("p50_s".into(), Json::Float(percentile(&mut xs, 0.50))),
                ("p95_s".into(), Json::Float(percentile(&mut xs, 0.95))),
                ("p99_s".into(), Json::Float(percentile(&mut xs, 0.99))),
                ("makespan_s".into(), Json::Float(self.makespan)),
                ("total_attempts".into(), Json::Int(self.attempts as i128)),
                (
                    "redundant_executions".into(),
                    Json::Int(self.redundant as i128),
                ),
                (
                    "wasted_work_fraction".into(),
                    Json::Float(self.redundant as f64 / self.attempts.max(1) as f64),
                ),
            ])
        }
    }

    // 64 tasks on 16 slots: the gray slot owns a few percent of the job,
    // so its stragglers are exactly the latency tail the quantiles watch.
    let gray = Arc::new(FaultSchedule::new(7).degrade(0, 30.0, 0.0, 1e9));
    let tasks: Vec<TaskSpec> = (0..64)
        .map(|i| TaskSpec::new(i, "t", format!("f{i}"), ResourceProfile::cpu_bound(10.0)))
        .collect();
    let hedged = ResiliencePolicy::hedged(HedgeConfig::quantile(30.0));
    let ctx_of = |cluster: &Cluster, policy: Option<ResiliencePolicy>| {
        let mut ctx = RunContext::new(cluster).with_schedule(gray.clone());
        if let Some(p) = policy {
            ctx = ctx.with_resilience(p);
        }
        ctx
    };

    let classic = |policy: Option<ResiliencePolicy>| {
        let cluster = Cluster::provision(EC2_HCXL, 1, 16);
        let cfg = SimConfig {
            storage_latency: LatencyModel::FREE,
            queue_latency: LatencyModel::FREE,
            jitter_sigma: 0.0,
            trace: true,
            ..SimConfig::ec2()
        };
        let r = classic_sim(&ctx_of(&cluster, policy), &tasks, &cfg);
        Mode {
            latencies: winner_latencies(r.core.trace.as_ref().unwrap()),
            makespan: r.summary.makespan_seconds,
            attempts: r.total_attempts,
            redundant: r.redundant_executions(),
        }
    };
    let hadoop = |policy: Option<ResiliencePolicy>| {
        let cluster = Cluster::provision(BARE_CAP3, 1, 16);
        let cfg = HadoopSimConfig {
            straggler_p: 0.0,
            jitter_sigma: 0.0,
            trace: true,
            // The empty policy disables legacy speculation, so "unhedged"
            // really is undefended rather than Hadoop's built-in guess.
            resilience: Some(policy.unwrap_or_default()),
            ..Default::default()
        };
        let r = hadoop_sim(
            &RunContext::new(&cluster).with_schedule(gray.clone()),
            &tasks,
            &cfg,
        );
        Mode {
            latencies: winner_latencies(r.core.trace.as_ref().unwrap()),
            makespan: r.summary.makespan_seconds,
            attempts: r.total_attempts,
            redundant: r.summary.redundant_executions,
        }
    };
    let dryad = |policy: Option<ResiliencePolicy>| {
        let cluster = Cluster::provision(BARE_CAP3, 1, 16);
        let cfg = DryadSimConfig {
            jitter_sigma: 0.0,
            trace: true,
            ..Default::default()
        };
        let r = dryad_sim(&ctx_of(&cluster, policy), &tasks, &cfg);
        Mode {
            latencies: winner_latencies(r.core.trace.as_ref().unwrap()),
            makespan: r.summary.makespan_seconds,
            attempts: r.core.total_attempts,
            redundant: r.summary.redundant_executions,
        }
    };

    let runs: [(&str, Mode, Mode); 3] = [
        ("classic", classic(None), classic(Some(hedged))),
        ("mapreduce", hadoop(None), hadoop(Some(hedged))),
        ("dryad", dryad(None), dryad(Some(hedged))),
    ];

    let mut fig = Figure::new(
        "Ablation: hedged attempts vs a 30x gray straggler (1 of 16 slots)",
        "paradigm",
        "p99 task latency (s)",
    )
    .with_precision(1);
    let mut un = Series::new("unhedged p99 (s)");
    let mut he = Series::new("hedged p99 (s)");
    let mut paradigms = Vec::new();
    for (name, unhedged, hedged) in &runs {
        un.push(*name, percentile(&mut unhedged.latencies.clone(), 0.99));
        he.push(*name, percentile(&mut hedged.latencies.clone(), 0.99));
        paradigms.push(Json::Obj(vec![
            ("paradigm".into(), Json::Str((*name).into())),
            ("unhedged".into(), unhedged.to_json()),
            ("hedged".into(), hedged.to_json()),
        ]));
    }
    fig.add(un);
    fig.add(he);
    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("resilience".into())),
        (
            "scenario".into(),
            Json::Str("gray straggler: worker 0 of 16 at 30x slowdown".into()),
        ),
        ("tasks".into(), Json::Int(64)),
        (
            "policy".into(),
            Json::Str("hedge: 0.75-quantile x 1.5, budget 50%, 2 live attempts".into()),
        ),
        ("paradigms".into(), Json::Arr(paradigms)),
    ]);
    (fig, json)
}

/// The figure half of [`resilience_bench`], for the `all` bin.
pub fn ablate_hedging() -> Figure {
    resilience_bench().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilience_bench_shape_and_headline() {
        let (fig, json) = resilience_bench();
        assert_eq!(fig.series.len(), 2);
        let paradigms = json.field("paradigms").unwrap().as_arr().unwrap();
        assert_eq!(paradigms.len(), 3);
        for p in paradigms {
            let name = p.field("paradigm").unwrap().as_str().unwrap();
            let q = |mode: &str, key: &str| {
                p.field(mode).unwrap().field(key).unwrap().as_f64().unwrap()
            };
            // The headline claim the JSON artifact exists to publish:
            // hedging beats the gray straggler's tail on every paradigm,
            // and the budget keeps duplicate work bounded.
            assert!(
                q("hedged", "p99_s") < q("unhedged", "p99_s"),
                "{name}: hedged p99 {} vs unhedged {}",
                q("hedged", "p99_s"),
                q("unhedged", "p99_s"),
            );
            assert!(
                q("hedged", "wasted_work_fraction") <= 0.5,
                "{name}: wasted {}",
                q("hedged", "wasted_work_fraction"),
            );
            for key in ["p50_s", "p95_s", "p99_s"] {
                assert!(q("hedged", key) > 0.0 && q("unhedged", key) > 0.0);
            }
        }
        // The report round-trips through the workspace JSON parser.
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }

    #[test]
    fn iterative_caching_pays_off_with_iterations() {
        let fig = ablate_iterative_caching();
        let hadoop = &fig.series[0];
        let twister = &fig.series[1];
        let ratio = |x: &str| hadoop.value_at(x).unwrap() / twister.value_at(x).unwrap();
        // One iteration: roughly a wash (Twister still pays the first read).
        assert!(
            (0.8..1.6).contains(&ratio("1")),
            "1 iter ratio {}",
            ratio("1")
        );
        // Fifty iterations: caching wins big.
        assert!(ratio("50") > 1.3, "50 iter ratio {}", ratio("50"));
        assert!(ratio("50") > ratio("5"), "advantage grows with iterations");
    }

    #[test]
    fn autoscale_billing_aware_beats_fixed_max() {
        // The ablation's headline claim: on the bursty workload the
        // billing-aware elastic fleet matches the fixed peak-sized fleet's
        // makespan (within 15%) while costing meaningfully less and
        // wasting fewer billed hours.
        let fig = ablate_autoscale();
        let at = |s: usize, label: &str| fig.series[s].value_at(label).unwrap();
        let (m_fixed, m_aware) = (at(0, "fixed max"), at(0, "billing-aware"));
        let (c_fixed, c_aware) = (at(1, "fixed max"), at(1, "billing-aware"));
        assert!(
            m_aware <= m_fixed * 1.15,
            "makespan not comparable: {m_aware} vs {m_fixed}"
        );
        assert!(c_aware < c_fixed * 0.85, "cost: {c_aware} vs {c_fixed}");
        assert!(at(2, "billing-aware") < at(2, "fixed max"), "wasted hours");
        // And the timelines render for every strategy.
        let demo = autoscale_timeline_demo();
        assert!(demo.contains("billing-aware") && demo.contains("fixed max"));
    }

    #[test]
    fn fault_rate_costs_time_on_every_paradigm() {
        let fig = ablate_fault_rate();
        assert_eq!(fig.series.len(), 3);
        for series in &fig.series {
            assert_eq!(series.points.len(), 5, "{}", series.label);
            let clean = series.value_at("0").unwrap();
            let hostile = series.value_at("0.2").unwrap();
            assert!(
                hostile > clean,
                "{}: death rate 0.2 should cost time ({hostile} vs {clean})",
                series.label
            );
        }
    }

    #[test]
    fn sustained_variation_is_small() {
        // The paper's premise: run-to-run variation is ~1.5–2.3%, so single
        // measurements are trustworthy. Our jittered sim must agree in
        // magnitude (makespans average out per-task jitter, so the job-level
        // CV comes out below the per-task sigma).
        let fig = sustained_variation();
        for (platform, cv) in &fig.series[0].points {
            assert!(*cv < 3.0, "{platform} CV {cv}%");
            assert!(*cv > 0.0, "{platform} CV should be nonzero");
        }
    }

    #[test]
    fn visibility_timeout_tradeoff() {
        let fig = ablate_visibility_timeout();
        let makespan = &fig.series[0];
        let redundant = &fig.series[1];
        // Long timeouts recover slower: makespan grows with timeout.
        let short = makespan.value_at("30").unwrap();
        let long = makespan.value_at("1800").unwrap();
        assert!(long > short, "long {long} vs short {short}");
        // Redundant work exists whenever failures do.
        assert!(redundant.points.iter().all(|&(_, v)| v > 0.0));
    }

    #[test]
    fn dynamic_beats_static_on_skew() {
        let fig = ablate_load_balance();
        let hadoop = &fig.series[0];
        let dryad = &fig.series[1];
        // Homogeneous: comparable (within ~15%).
        let h0 = hadoop.value_at("0").unwrap();
        let d0 = dryad.value_at("0").unwrap();
        assert!((d0 / h0 - 1.0).abs() < 0.2, "homogeneous d={d0} h={h0}");
        // Heavy skew: static partitioning falls behind. (The effect is
        // modest — within-node dynamic sharing softens it — matching the
        // paper's qualitative "better natural load balancing in Hadoop".)
        let h = hadoop.value_at("1.2").unwrap();
        let d = dryad.value_at("1.2").unwrap();
        assert!(d > 1.05 * h, "skewed d={d} h={h}");
        // And the gap widens with skew.
        let gap = |s: &str| dryad.value_at(s).unwrap() / hadoop.value_at(s).unwrap();
        assert!(
            gap("1.2") > gap("0") + 0.03,
            "gap grows: {} vs {}",
            gap("1.2"),
            gap("0")
        );
    }

    #[test]
    fn locality_matters_more_with_big_inputs() {
        let fig = ablate_locality();
        let on = &fig.series[0];
        let off = &fig.series[1];
        let ratio_small = off.value_at("1").unwrap() / on.value_at("1").unwrap();
        let ratio_big = off.value_at("512").unwrap() / on.value_at("512").unwrap();
        assert!(
            ratio_big > ratio_small,
            "big {ratio_big} vs small {ratio_small}"
        );
        assert!(
            ratio_big > 1.1,
            "big inputs punish remote reads: {ratio_big}"
        );
    }

    #[test]
    fn coarser_grain_is_more_efficient() {
        let fig = ablate_granularity();
        let eff = &fig.series[0];
        let fine = eff.value_at("3").unwrap();
        let coarse = eff.value_at("100").unwrap();
        assert!(coarse > fine, "coarse {coarse} vs fine {fine}");
        // The absolute ceiling is below 1.0 because BLAST's shared DB
        // overflows HCXL memory with 8 workers (the paper's §5.2 point).
        assert!(coarse > 0.8, "coarse-grained efficiency {coarse}");
    }

    #[test]
    fn nic_contention_grows_with_input_size() {
        let fig = ablate_nic_contention();
        let free = &fig.series[0];
        let nic = &fig.series[1];
        let ratio = |x: &str| nic.value_at(x).unwrap() / free.value_at(x).unwrap();
        assert!(ratio("1") < 1.05, "tiny inputs unaffected: {}", ratio("1"));
        assert!(
            ratio("1024") > 1.2,
            "1 GB inputs NIC-bound: {}",
            ratio("1024")
        );
        assert!(ratio("1024") > ratio("16"), "grows with input size");
    }

    #[test]
    fn speculation_pays_off_under_stragglers() {
        let fig = ablate_speculation();
        let on = &fig.series[0];
        let off = &fig.series[1];
        // No stragglers: speculation costs (almost) nothing.
        let ratio0 = off.value_at("0").unwrap() / on.value_at("0").unwrap();
        assert!((0.9..1.1).contains(&ratio0), "clean ratio {ratio0}");
        // Rare stragglers (the regime speculation is designed for): big win.
        let ratio1 = off.value_at("0.01").unwrap() / on.value_at("0.01").unwrap();
        assert!(ratio1 > 1.5, "rare-straggler ratio {ratio1}");
        // Speculation never hurts (with one duplicate per task it stops
        // helping once *both* attempts are likely to straggle).
        for (x, off_v) in &off.points {
            let on_v = on.value_at(x).unwrap();
            assert!(on_v <= off_v * 1.05, "at {x}: on {on_v} vs off {off_v}");
        }
    }

    #[test]
    fn storage_latency_eventually_bites() {
        let fig = ablate_storage_latency();
        let eff = &fig.series[0];
        let at_2010 = eff.value_at("30").unwrap();
        let at_awful = eff.value_at("10000").unwrap();
        // The paper's claim: 2010 latencies keep efficiency high...
        assert!(at_2010 > 0.9, "2010-latency efficiency {at_2010}");
        // ...but the result is not latency-insensitive in general.
        assert!(
            at_awful < at_2010 - 0.02,
            "awful {at_awful} vs 2010 {at_2010}"
        );
    }
}
