//! Tables 1–4.

use ppc_apps::workload;
use ppc_classic::{simulate as classic_sim, SimConfig};
use ppc_compute::billing::OwnedClusterCost;
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::{AZURE_SMALL, AZURE_TYPES, BARE_XEON24, EC2_HCXL, EC2_TYPES};
use ppc_compute::model::AppModel;
use ppc_core::pricing::{AWS_2010, AZURE_2010, GIB};
use ppc_core::report::Table;
use ppc_exec::RunContext;
use ppc_mapreduce::{simulate as hadoop_sim, HadoopSimConfig};

/// Table 1: selected EC2 instance types.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1: Selected EC2 instance types",
        &[
            "Instance Type",
            "Memory",
            "EC2 compute units",
            "Actual CPU cores",
            "Cost per hour",
        ],
    );
    for it in EC2_TYPES {
        t.row(vec![
            it.name.to_string(),
            format!("{:.1} GB", it.memory_bytes as f64 / 1e9),
            format!("{}", it.ecu),
            format!("{} x (~{}Ghz)", it.cores, it.clock_ghz),
            it.cost_per_hour.to_string(),
        ]);
    }
    t
}

/// Table 2: Azure instance types.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2: Microsoft Windows Azure instance types",
        &[
            "Instance Type",
            "CPU Cores",
            "Memory",
            "Local Disk Space",
            "Cost per hour",
        ],
    );
    for it in AZURE_TYPES {
        t.row(vec![
            it.name.to_string(),
            format!("{}", it.cores),
            format!("{:.1} GB", it.memory_bytes as f64 / 1e9),
            format!("{} GB", it.local_disk_bytes / 1_000_000_000),
            it.cost_per_hour.to_string(),
        ]);
    }
    t
}

/// Table 3: summary of cloud technology features (qualitative).
pub fn table3() -> Table {
    let mut t = Table::new(
        "Table 3: Summary of cloud technology features",
        &["", "AWS/Azure (Classic Cloud)", "Hadoop", "DryadLINQ"],
    );
    t.row(vec![
        "Programming patterns".into(),
        "Independent job execution via task queue".into(),
        "MapReduce".into(),
        "DAG execution, extensible to MapReduce".into(),
    ]);
    t.row(vec![
        "Fault tolerance".into(),
        "Task re-execution on configurable visibility timeout".into(),
        "Re-execution of failed and slow tasks".into(),
        "Re-execution of failed and slow tasks".into(),
    ]);
    t.row(vec![
        "Data storage".into(),
        "S3/Azure Storage over HTTP".into(),
        "HDFS parallel file system".into(),
        "Node-local files (Windows shares)".into(),
    ]);
    t.row(vec![
        "Scheduling & load balancing".into(),
        "Dynamic global queue: natural balancing".into(),
        "Data-locality-aware dynamic global queue".into(),
        "Static node-level partitions: suboptimal balancing".into(),
    ]);
    t
}

/// Table 4: cost to assemble 4096 Cap3 files on EC2, Azure, and an owned
/// cluster at 60/70/80% utilization.
pub fn table4() -> Table {
    let tasks = workload::cap3_sim_tasks(4096, 200);
    let app = AppModel::cap3();

    // EC2: 16 HCXL instances.
    let ec2_cluster = Cluster::provision_per_core(EC2_HCXL, 16);
    let ec2 = classic_sim(
        &RunContext::new(&ec2_cluster),
        &tasks,
        &SimConfig::ec2().with_app(app),
    );
    let ec2_bill = ec2.bill(&ec2_cluster, &AWS_2010, 1.0);

    // Azure: 128 Small instances.
    let az_cluster = Cluster::provision_per_core(AZURE_SMALL, 128);
    let az = classic_sim(
        &RunContext::new(&az_cluster),
        &tasks,
        &SimConfig::azure().with_app(app),
    );
    let az_bill = az.bill(&az_cluster, &AZURE_2010, 1.0);

    // Owned cluster: Hadoop on 32 × 24-core nodes.
    let owned_cluster = Cluster::provision(BARE_XEON24, 32, 24);
    let hadoop = hadoop_sim(
        &RunContext::new(&owned_cluster),
        &tasks,
        &HadoopSimConfig {
            app,
            ..HadoopSimConfig::default()
        },
    );
    let job_hours = hadoop.summary.makespan_seconds / 3600.0;
    let tco = OwnedClusterCost::paper_internal_cluster();

    let mut t = Table::new(
        "Table 4: Cost comparison (4096 Cap3 files)",
        &[
            "Line item",
            "Amazon Web Services",
            "Azure",
            "Owned cluster (Hadoop)",
        ],
    );
    t.row(vec![
        "Compute cost".into(),
        format!(
            "{} ({} x 16 HCXL)",
            ec2_bill.instances.compute_cost, EC2_HCXL.cost_per_hour
        ),
        format!(
            "{} ({} x 128 Small)",
            az_bill.instances.compute_cost, AZURE_SMALL.cost_per_hour
        ),
        format!("{} @80% util", tco.job_cost(job_hours, 0.8)),
    ]);
    t.row(vec![
        "Queue messages".into(),
        AWS_2010.queue_requests(ec2.queue_requests).to_string(),
        AZURE_2010.queue_requests(az.queue_requests).to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "Storage (1GB, 1 month)".into(),
        AWS_2010.storage(GIB, 1.0).to_string(),
        AZURE_2010.storage(GIB, 1.0).to_string(),
        "-".into(),
    ]);
    t.row(vec![
        "Data transfer in/out (1GB)".into(),
        AWS_2010.transfer_in(GIB).to_string(),
        (AZURE_2010.transfer_in(GIB) + AZURE_2010.transfer_out(GIB)).to_string(),
        "-".into(),
    ]);
    let ec2_total = ec2_bill.instances.compute_cost
        + AWS_2010.queue_requests(ec2.queue_requests)
        + AWS_2010.storage(GIB, 1.0)
        + AWS_2010.transfer_in(GIB);
    let az_total = az_bill.instances.compute_cost
        + AZURE_2010.queue_requests(az.queue_requests)
        + AZURE_2010.storage(GIB, 1.0)
        + AZURE_2010.transfer_in(GIB)
        + AZURE_2010.transfer_out(GIB);
    t.row(vec![
        "Total".into(),
        ec2_total.to_string(),
        az_total.to_string(),
        format!(
            "{} / {} / {} (80/70/60% util)",
            tco.job_cost(job_hours, 0.8),
            tco.job_cost(job_hours, 0.7),
            tco.job_cost(job_hours, 0.6)
        ),
    ]);
    t
}

/// Generalized cost comparison: what Table 4 would look like for BLAST and
/// GTM (the paper only charts Cap3). Returns (app label, EC2 total, Azure
/// total, owned@80%) — instance counts follow each app's §5.2/§6.2 fleets.
pub fn cost_comparison(app_name: &str) -> (String, ppc_core::Usd, ppc_core::Usd, ppc_core::Usd) {
    use ppc_apps::workload::{blast_sim_tasks, cap3_sim_tasks, gtm_sim_tasks};
    let (tasks, app, azure_type, azure_n) = match app_name {
        "blast" => (
            blast_sim_tasks(768, 100),
            AppModel::DEFAULT,
            ppc_compute::instance::AZURE_LARGE,
            16,
        ),
        "gtm" => (
            gtm_sim_tasks(264, 100_000),
            AppModel::DEFAULT,
            AZURE_SMALL,
            128,
        ),
        _ => (
            cap3_sim_tasks(4096, 200),
            AppModel::cap3(),
            AZURE_SMALL,
            128,
        ),
    };
    let ec2_cluster = Cluster::provision_per_core(EC2_HCXL, 16);
    let ec2 = classic_sim(
        &RunContext::new(&ec2_cluster),
        &tasks,
        &SimConfig::ec2().with_app(app),
    );
    let ec2_total = ec2.bill(&ec2_cluster, &AWS_2010, 1.0).total();

    let az_cluster = Cluster::provision_per_core(azure_type, azure_n);
    let az = classic_sim(
        &RunContext::new(&az_cluster),
        &tasks,
        &SimConfig::azure().with_app(app),
    );
    let az_total = az.bill(&az_cluster, &AZURE_2010, 1.0).total();

    let owned_cluster = Cluster::provision(BARE_XEON24, 32, 24);
    let hadoop = hadoop_sim(
        &RunContext::new(&owned_cluster),
        &tasks,
        &HadoopSimConfig {
            app,
            ..HadoopSimConfig::default()
        },
    );
    let owned = OwnedClusterCost::paper_internal_cluster()
        .job_cost(hadoop.summary.makespan_seconds / 3600.0, 0.8);
    (app_name.to_string(), ec2_total, az_total, owned)
}

/// Render the generalized cost comparison as a table.
pub fn cost_comparison_table() -> Table {
    let mut t = Table::new(
        "Extended cost comparison (whole-workload totals, paper fleets)",
        &[
            "Application",
            "EC2 (16 HCXL)",
            "Azure (paper fleet)",
            "Owned cluster @80%",
        ],
    );
    for app in ["cap3", "blast", "gtm"] {
        let (name, ec2, az, owned) = cost_comparison(app);
        t.row(vec![
            name,
            ec2.to_string(),
            az.to_string(),
            owned.to_string(),
        ]);
    }
    t
}

/// The modeled numbers behind Table 4, for tests and EXPERIMENTS.md.
pub struct Table4Numbers {
    pub ec2_compute: ppc_core::Usd,
    pub azure_compute: ppc_core::Usd,
    pub owned_at_80: ppc_core::Usd,
    pub owned_at_60: ppc_core::Usd,
}

pub fn table4_numbers() -> Table4Numbers {
    let tasks = workload::cap3_sim_tasks(4096, 200);
    let app = AppModel::cap3();
    let ec2_cluster = Cluster::provision_per_core(EC2_HCXL, 16);
    let ec2 = classic_sim(
        &RunContext::new(&ec2_cluster),
        &tasks,
        &SimConfig::ec2().with_app(app),
    );
    let az_cluster = Cluster::provision_per_core(AZURE_SMALL, 128);
    let az = classic_sim(
        &RunContext::new(&az_cluster),
        &tasks,
        &SimConfig::azure().with_app(app),
    );
    let owned_cluster = Cluster::provision(BARE_XEON24, 32, 24);
    let hadoop = hadoop_sim(
        &RunContext::new(&owned_cluster),
        &tasks,
        &HadoopSimConfig {
            app,
            ..HadoopSimConfig::default()
        },
    );
    let tco = OwnedClusterCost::paper_internal_cluster();
    let job_hours = hadoop.summary.makespan_seconds / 3600.0;
    Table4Numbers {
        ec2_compute: ec2_cluster.cost(ec2.summary.makespan_seconds).compute_cost,
        azure_compute: az_cluster.cost(az.summary.makespan_seconds).compute_cost,
        owned_at_80: tco.job_cost(job_hours, 0.8),
        owned_at_60: tco.job_cost(job_hours, 0.6),
    }
}

/// Sanity anchor used by tests: the calibrated Cap3 anchor must make the
/// Figure 4 workload take on the order of 1000 s on 16 HCXL cores.
pub fn cap3_reference_makespan() -> f64 {
    let tasks = workload::cap3_sim_tasks(200, 200);
    let cluster = Cluster::provision_per_core(EC2_HCXL, 2);
    classic_sim(
        &RunContext::new(&cluster),
        &tasks,
        &SimConfig::ec2().with_app(AppModel::cap3()),
    )
    .summary
    .makespan_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::Usd;

    #[test]
    fn tables_1_2_3_shape() {
        assert_eq!(table1().n_rows(), 4);
        assert_eq!(table2().n_rows(), 4);
        assert_eq!(table3().n_rows(), 4);
        let t1 = table1().to_string();
        assert!(t1.contains("HCXL"));
        assert!(t1.contains("0.68$"));
        let t2 = table2().to_string();
        assert!(t2.contains("azure-small"));
        assert!(t2.contains("0.12$"));
    }

    #[test]
    fn table4_reproduces_paper_shape() {
        let n = table4_numbers();
        // Paper: EC2 $10.88, Azure $15.36 — ours must match exactly when the
        // job fits in one billed hour.
        assert_eq!(
            n.ec2_compute,
            Usd::cents(1088),
            "EC2 compute {}",
            n.ec2_compute
        );
        assert_eq!(
            n.azure_compute,
            Usd::cents(1536),
            "Azure compute {}",
            n.azure_compute
        );
        // Owned cluster at high utilization beats both clouds; low
        // utilization erodes the advantage (the paper's $8.25..$11.01 span).
        assert!(n.owned_at_80 < n.ec2_compute, "owned@80 {}", n.owned_at_80);
        assert!(n.owned_at_60 > n.owned_at_80);
    }

    #[test]
    fn extended_cost_comparison_shapes() {
        let t = cost_comparison_table();
        assert_eq!(t.n_rows(), 3);
        // For every app: owned-at-80% beats both clouds (the Table 4
        // relation generalizes), and totals are positive dollars.
        for app in ["cap3", "blast", "gtm"] {
            let (_, ec2, az, owned) = cost_comparison(app);
            assert!(ec2 > Usd::ZERO && az > Usd::ZERO && owned > Usd::ZERO);
            assert!(owned < ec2, "{app}: owned {owned} vs ec2 {ec2}");
            assert!(owned < az, "{app}: owned {owned} vs azure {az}");
        }
    }

    #[test]
    fn cap3_anchor_holds() {
        let m = cap3_reference_makespan();
        assert!((800.0..1400.0).contains(&m), "16-core Cap3 makespan {m}");
    }

    #[test]
    fn table4_renders() {
        let t = table4();
        let s = t.to_string();
        assert!(s.contains("Compute cost"));
        assert!(s.contains("10.88$"), "{s}");
        assert!(s.contains("15.36$"), "{s}");
    }
}
