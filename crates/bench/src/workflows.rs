//! Multi-stage pipeline benchmark: the Cap3 → BLAST → GTM workflow on all
//! three paradigms, decomposed so the inter-stage materialization cost is
//! a first-class, machine-readable number.
//!
//! The paper prices each application standalone; chaining them makes the
//! stage *barriers* — write everything to storage, read it back — show up
//! in the makespan. `pipeline_bench` runs the simulated workflow per
//! paradigm, pulls the `inter-stage materialization` bucket out of the
//! Eq. 1 overhead decomposition of the merged workflow trace, and checks
//! that it reconciles with the driver's own barrier accounting.

use ppc_compute::cluster::Cluster;
use ppc_compute::instance::EC2_HCXL;
use ppc_core::json::Json;
use ppc_core::report::{Figure, Series};
use ppc_exec::RunContext;
use ppc_trace::{OverheadReport, INTER_STAGE_MATERIALIZATION};

/// One paradigm's pipeline numbers, already cross-checked.
pub struct PipelineRow {
    pub paradigm: String,
    pub makespan_s: f64,
    /// Driver-side sum of materialization barriers.
    pub materialize_s: f64,
    /// The `inter-stage materialization` bucket of the trace decomposition
    /// (must agree with `materialize_s` — asserted by [`pipeline_bench`]).
    pub materialize_bucket_s: f64,
    /// Per-stage (name, stage makespan seconds).
    pub stages: Vec<(String, f64)>,
    /// Eq. 1 closure error, relative to cores × horizon.
    pub eq1_residual: f64,
}

/// Simulate the bio pipeline on every engine; verify the materialization
/// bucket against the driver's barrier accounting and the Eq. 1 identity
/// (`cores × horizon = compute + Σ overheads + idle`) per paradigm.
///
/// Panics if any engine drops tasks, reports a zero materialization
/// bucket, or fails reconciliation — this is a benchmark with its own
/// referee, so CI can trust the JSON it emits.
pub fn pipeline_bench(n_files: usize) -> Vec<PipelineRow> {
    let wf = ppc_apps::pipeline::bio_pipeline_sim(n_files);
    let cluster = Cluster::provision(EC2_HCXL, 4, 8);
    let ctx = RunContext::new(&cluster).with_seed(42).with_trace(true);
    let mut rows = Vec::new();
    for engine in engines() {
        let report = engine
            .simulate_workflow(&ctx, &wf)
            .unwrap_or_else(|e| panic!("{}: {e}", engine.name()));
        assert!(report.is_complete(), "{} dropped tasks", engine.name());
        let trace = report
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{} produced no workflow trace", engine.name()));
        let overhead = OverheadReport::from_trace(trace);
        let bucket = overhead
            .categories
            .iter()
            .find(|c| c.name == INTER_STAGE_MATERIALIZATION)
            .expect("taxonomy carries the materialization bucket")
            .seconds;
        assert!(
            bucket > 0.0,
            "{}: pipeline ran with a zero materialization bucket",
            engine.name()
        );
        assert!(
            (bucket - report.materialize_s).abs() < 1e-6,
            "{}: bucket {bucket} != driver accounting {}",
            engine.name(),
            report.materialize_s
        );
        // Eq. 1: the decomposition must close over the core-time budget.
        let budget = overhead.cores as f64 * overhead.horizon_s;
        let accounted = overhead.compute_s
            + overhead.categories.iter().map(|c| c.seconds).sum::<f64>()
            + overhead.idle_s;
        let eq1_residual = (budget - accounted).abs() / budget.max(1e-12);
        assert!(
            eq1_residual < 1e-6,
            "{}: Eq. 1 does not close: budget {budget} vs accounted {accounted}",
            engine.name()
        );
        rows.push(PipelineRow {
            paradigm: engine.name().to_string(),
            makespan_s: report.makespan_seconds,
            materialize_s: report.materialize_s,
            materialize_bucket_s: bucket,
            stages: report
                .stages
                .iter()
                .map(|s| (s.name.clone(), s.end_s - s.start_s))
                .collect(),
            eq1_residual,
        });
    }
    rows
}

fn engines() -> Vec<Box<dyn ppc_exec::Engine>> {
    vec![
        Box::new(ppc_classic::ClassicEngine::default()),
        Box::new(ppc_mapreduce::HadoopEngine::default()),
        Box::new(ppc_dryad::DryadEngine::default()),
    ]
}

/// Human-readable exhibit: pipeline makespan and its materialization share
/// per paradigm.
pub fn pipeline_figure(rows: &[PipelineRow], n_files: usize) -> Figure {
    let mut fig = Figure::new(
        format!("Cap3 -> BLAST -> GTM pipeline, {n_files} files/stage"),
        "paradigm",
        "seconds",
    )
    .with_precision(1);
    let mut makespan = Series::new("pipeline makespan (s)");
    let mut mat = Series::new("inter-stage materialization (s)");
    for r in rows {
        makespan.push(r.paradigm.clone(), r.makespan_s);
        mat.push(r.paradigm.clone(), r.materialize_s);
    }
    fig.add(makespan);
    fig.add(mat);
    fig
}

/// Machine-readable report for CI (`BENCH_workflow.json`).
pub fn pipeline_json(rows: &[PipelineRow], n_files: usize) -> Json {
    Json::Obj(vec![
        ("bench".into(), Json::Str("workflow_pipeline".into())),
        ("pipeline".into(), Json::Str("cap3-blast-gtm-sim".into())),
        ("files_per_stage".into(), Json::Int(n_files as i128)),
        (
            "paradigms".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("paradigm".into(), Json::Str(r.paradigm.clone())),
                            ("makespan_s".into(), Json::Float(r.makespan_s)),
                            ("materialize_s".into(), Json::Float(r.materialize_s)),
                            (
                                "materialize_bucket_s".into(),
                                Json::Float(r.materialize_bucket_s),
                            ),
                            ("eq1_residual".into(), Json::Float(r.eq1_residual)),
                            (
                                "stages".into(),
                                Json::Arr(
                                    r.stages
                                        .iter()
                                        .map(|(name, s)| {
                                            Json::Obj(vec![
                                                ("name".into(), Json::Str(name.clone())),
                                                ("makespan_s".into(), Json::Float(*s)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The benchmark referees itself (reconciliation is asserted inside
    /// `pipeline_bench`); here we pin the shape of what it reports.
    #[test]
    fn pipeline_bench_reports_every_paradigm_with_nonzero_barriers() {
        let rows = pipeline_bench(24);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.makespan_s > 0.0, "{}", r.paradigm);
            assert!(r.materialize_s > 0.0, "{}", r.paradigm);
            assert_eq!(r.stages.len(), 3, "{}", r.paradigm);
            // Barriers are real but not the whole story.
            assert!(r.materialize_s < r.makespan_s, "{}", r.paradigm);
        }
        let json = pipeline_json(&rows, 24).to_string();
        assert!(json.contains("materialize_bucket_s"));
        let fig = pipeline_figure(&rows, 24).to_string();
        assert!(fig.contains("materialization"));
    }
}
