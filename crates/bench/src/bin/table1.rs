//! Regenerates the paper's Table 1 (EC2 instance types).
fn main() {
    println!("{}", ppc_bench::table1());
}
