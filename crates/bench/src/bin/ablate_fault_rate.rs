//! Ablation: worker-death rate vs recovery cost across all three paradigms.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_fault_rate());
}
