//! Workflow pipeline benchmark: per-paradigm makespan and inter-stage
//! materialization for the Cap3 → BLAST → GTM pipeline, written as the
//! machine-readable `BENCH_workflow.json` CI tracks.
//!
//! The reconciliation is built into the library call: `pipeline_bench`
//! panics unless the trace decomposition's `inter-stage materialization`
//! bucket matches the driver's barrier accounting and the Eq. 1 identity
//! closes per paradigm, so a successful run *is* the verification.
//!
//! ```bash
//! cargo run --release -p ppc-bench --bin bench_workflow              # writes BENCH_workflow.json
//! cargo run --release -p ppc-bench --bin bench_workflow -- --smoke   # reduced CI size
//! ```

use ppc_bench::workflows::{pipeline_bench, pipeline_figure, pipeline_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .rfind(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_workflow.json".into());
    let n_files = if smoke { 32 } else { 256 };

    let rows = pipeline_bench(n_files);
    eprintln!("{}", pipeline_figure(&rows, n_files));
    for r in &rows {
        eprintln!(
            "{:<10} makespan {:>8.1}s | materialize {:>6.1}s (bucket {:>6.1}s, eq1 residual {:.1e})",
            r.paradigm, r.makespan_s, r.materialize_s, r.materialize_bucket_s, r.eq1_residual
        );
    }
    let json = pipeline_json(&rows, n_files);
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");
}
