//! Figure 13: GTM interpolation compute time with different instance types.
fn main() {
    println!("{}", ppc_bench::fig13());
}
