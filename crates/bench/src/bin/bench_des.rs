//! Event-core benchmark: the per-PR perf trajectory for `ppc-des`.
//!
//! Measures every [`QueueKind`] backend on three layers and writes the
//! machine-readable `BENCH_des.json` CI tracks:
//!
//! 1. **Dense-timer hold model** (raw [`EventQueue`]): a steady-state
//!    population of near-horizon timers, each pop immediately replaced —
//!    the access pattern the paradigm sims generate (visibility timeouts,
//!    hedge checks, heartbeats). This is the headline: the timing wheel
//!    must beat the binary-heap oracle by ≥ 2× here.
//! 2. **Full engine** (slab + closures): self-rechaining timers fired
//!    through [`Engine::run`], counting events/sec end to end.
//! 3. **Paradigm sweep**: the Classic Cloud simulator over a paper-scale
//!    task grid, counting simulated tasks/sec and sweep wall-clock.
//!
//! ```bash
//! cargo run --release -p ppc-bench --bin bench_des                 # full, writes BENCH_des.json
//! cargo run --release -p ppc-bench --bin bench_des -- --smoke      # reduced CI sizes
//! cargo run --release -p ppc-bench --bin bench_des -- --smoke --check BENCH_des.json
//! ```
//!
//! `--check <baseline>` compares the fresh run against the committed
//! baseline and exits non-zero if the wheel's dense-timer advantage over
//! the heap regressed by more than 20% — a machine-independent ratio, so
//! CI hardware changes don't false-alarm the gate.

use ppc_compute::cluster::Cluster;
use ppc_compute::instance::EC2_HCXL;
use ppc_core::json::Json;
use ppc_core::rng::Pcg32;
use ppc_core::task::{ResourceProfile, TaskSpec};
use ppc_des::queue::EventEntry;
use ppc_des::{Engine, EventQueue, QueueKind, SimTime};
use ppc_exec::RunContext;
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

struct Sizes {
    /// Steady-state pending population in the hold model.
    hold_population: usize,
    /// Pop+push rounds timed in the hold model.
    hold_ops: usize,
    /// Self-rechaining timer chains × fires per chain in the engine bench.
    chains: usize,
    fires_per_chain: usize,
    /// Tasks per simulator run, and runs in the sweep.
    sim_tasks: u64,
    sweep_runs: usize,
}

const FULL: Sizes = Sizes {
    hold_population: 1 << 18,
    hold_ops: 2_000_000,
    chains: 256,
    fires_per_chain: 4_000,
    sim_tasks: 8_192,
    sweep_runs: 6,
};

// Smoke keeps the full hold population — the pending-set size is what
// gives the heap its log-n cost, so shrinking it would shift the
// wheel/heap ratio the --check gate compares against the committed
// full-mode baseline. Only the measured op counts shrink.
const SMOKE: Sizes = Sizes {
    hold_population: 1 << 18,
    hold_ops: 1_000_000,
    chains: 64,
    fires_per_chain: 1_000,
    sim_tasks: 1_024,
    sweep_runs: 2,
};

/// Dense-timer hold model: `population` pending timers, `ops` rounds of
/// pop-min + push-replacement with a near-horizon delta. Returns events
/// (pops) per second, best of three trials — the maximum is the standard
/// noise filter for throughput micro-benchmarks (scheduler preemption and
/// frequency dips only ever push a trial *down*).
fn bench_hold(kind: QueueKind, sizes: &Sizes) -> f64 {
    let mut best = 0.0f64;
    for trial in 0..3u64 {
        let mut q = kind.boxed();
        let mut rng = Pcg32::new(0xDE5B ^ (kind as u64) ^ (trial << 32));
        let mut seq = 0u64;
        let push = |q: &mut Box<dyn EventQueue>, at: u64, seq: &mut u64| {
            q.push(EventEntry {
                at: SimTime::from_micros(at),
                seq: *seq,
                idx: *seq as u32,
            });
            *seq += 1;
        };
        for _ in 0..sizes.hold_population {
            let at = rng.next_below(4096) as u64;
            push(&mut q, at, &mut seq);
        }
        let start = Instant::now();
        for _ in 0..sizes.hold_ops {
            let e = q.pop().expect("hold model never drains");
            let at = e.at.as_micros() + rng.next_below(4096) as u64;
            push(&mut q, at, &mut seq);
        }
        best = best.max(sizes.hold_ops as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Full-engine events/sec: `chains` concurrent self-rechaining timers,
/// each firing `fires_per_chain` times through the slab + closure path.
fn bench_engine(kind: QueueKind, sizes: &Sizes) -> f64 {
    fn rechain(engine: &mut Engine, remaining: usize, stride_us: u64, fired: Rc<Cell<u64>>) {
        fired.set(fired.get() + 1);
        if remaining > 0 {
            engine.schedule_in(SimTime::from_micros(stride_us), move |e| {
                rechain(e, remaining - 1, stride_us, fired);
            });
        }
    }
    let mut engine = Engine::with_queue(kind);
    let fired = Rc::new(Cell::new(0u64));
    let mut rng = Pcg32::new(0xE91 ^ kind as u64);
    for _ in 0..sizes.chains {
        let stride = 1 + rng.next_below(97) as u64;
        let f = fired.clone();
        let n = sizes.fires_per_chain;
        engine.schedule_in(SimTime::from_micros(stride), move |e| {
            rechain(e, n - 1, stride, f);
        });
    }
    let start = Instant::now();
    engine.run();
    let total = fired.get();
    assert_eq!(total, (sizes.chains * sizes.fires_per_chain) as u64);
    total as f64 / start.elapsed().as_secs_f64()
}

/// Paradigm sweep: Classic Cloud sims at paper scale. Returns
/// (simulated tasks/sec, total sweep wall-clock seconds).
fn bench_sim_sweep(kind: QueueKind, sizes: &Sizes) -> (f64, f64) {
    let tasks: Vec<TaskSpec> = (0..sizes.sim_tasks)
        .map(|i| {
            let mut p = ResourceProfile::cpu_bound(10.0 + (i % 7) as f64);
            p.input_bytes = 200 << 10;
            p.output_bytes = 100 << 10;
            TaskSpec::new(i, "cap3", format!("f{i}"), p)
        })
        .collect();
    let cfg = ppc_classic::SimConfig::ec2();
    let start = Instant::now();
    let mut simulated = 0u64;
    for run in 0..sizes.sweep_runs {
        let workers = 8 << (run % 3); // 8, 16, 32 slots per fleet
        let cluster = Cluster::provision(EC2_HCXL, 4, workers);
        let ctx = RunContext::new(&cluster).with_event_queue(kind);
        let report = ppc_classic::simulate(&ctx, &tasks, &cfg);
        assert!(report.is_complete(), "sweep run {run} dropped tasks");
        simulated += sizes.sim_tasks;
    }
    let wall = start.elapsed().as_secs_f64();
    (simulated as f64 / wall, wall)
}

fn get_f64(json: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = json;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64().ok()
}

/// The dense-timer wheel-over-heap ratio from a report's backend list.
fn dense_ratio(json: &Json) -> Option<f64> {
    let backends = json.get("backends")?.as_arr().ok()?;
    let rate = |name: &str| -> Option<f64> {
        backends
            .iter()
            .find(|b| b.get("queue").and_then(|q| q.as_str().ok()) == Some(name))
            .and_then(|b| get_f64(b, &["dense_timer_events_per_sec"]))
    };
    Some(rate("wheel")? / rate("heap")?)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check: Option<&String> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));
    let out = args
        .iter()
        .rfind(|a| !a.starts_with("--") && Some(*a) != check)
        .cloned()
        .unwrap_or_else(|| "BENCH_des.json".into());
    let sizes = if smoke { &SMOKE } else { &FULL };

    let mut backends = Vec::new();
    for kind in QueueKind::ALL {
        eprintln!("benching {} ...", kind.name());
        let dense = bench_hold(kind, sizes);
        let engine = bench_engine(kind, sizes);
        let (tasks_per_s, sweep_wall) = bench_sim_sweep(kind, sizes);
        eprintln!(
            "  {:<8} dense {:>12.0} ev/s | engine {:>12.0} ev/s | sim {:>9.0} tasks/s | sweep {:.2}s",
            kind.name(),
            dense,
            engine,
            tasks_per_s,
            sweep_wall
        );
        backends.push(Json::Obj(vec![
            ("queue".into(), Json::Str(kind.name().into())),
            ("dense_timer_events_per_sec".into(), Json::Float(dense)),
            ("engine_events_per_sec".into(), Json::Float(engine)),
            ("sim_tasks_per_sec".into(), Json::Float(tasks_per_s)),
            ("sweep_wall_s".into(), Json::Float(sweep_wall)),
        ]));
    }

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("des_core".into())),
        (
            "mode".into(),
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        (
            "workload".into(),
            Json::Obj(vec![
                (
                    "hold_population".into(),
                    Json::Int(sizes.hold_population as i128),
                ),
                ("hold_ops".into(), Json::Int(sizes.hold_ops as i128)),
                (
                    "engine_events".into(),
                    Json::Int((sizes.chains * sizes.fires_per_chain) as i128),
                ),
                ("sim_tasks".into(), Json::Int(sizes.sim_tasks as i128)),
                ("sweep_runs".into(), Json::Int(sizes.sweep_runs as i128)),
            ]),
        ),
        ("backends".into(), Json::Arr(backends)),
    ]);
    let ratio = dense_ratio(&json).expect("report always carries both backends");
    eprintln!("wheel/heap dense-timer ratio: {ratio:.2}x");

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = Json::parse(&text).expect("baseline parses");
        let want = dense_ratio(&baseline).expect("baseline carries the ratio");
        let floor = want * 0.8;
        eprintln!("baseline ratio {want:.2}x; regression floor {floor:.2}x");
        if ratio < floor {
            eprintln!("FAIL: dense-timer ratio {ratio:.2}x regressed below {floor:.2}x");
            std::process::exit(1);
        }
        if ratio < 1.0 {
            eprintln!("FAIL: wheel slower than the heap oracle ({ratio:.2}x)");
            std::process::exit(1);
        }
        eprintln!("OK: ratio {ratio:.2}x within 20% of baseline {want:.2}x");
        return; // a check run never overwrites the committed baseline
    }

    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");
}
