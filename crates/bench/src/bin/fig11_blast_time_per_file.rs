//! Figure 11: BLAST average time to process a single query file.
fn main() {
    println!("{}", ppc_bench::fig11());
}
