//! Ablation: why iterative MapReduce needs static-data caching (the
//! motivation for the paper's announced TwisterAzure follow-up).
fn main() {
    println!("{}", ppc_bench::ablations::ablate_iterative_caching());
}
