//! Figure 5: Cap3 parallel efficiency across the four platforms.
fn main() {
    println!("{}", ppc_bench::fig05());
}
