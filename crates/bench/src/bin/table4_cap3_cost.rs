//! Regenerates the paper's Table 4 (cost to assemble 4096 Cap3 files).
fn main() {
    println!("{}", ppc_bench::table4());
}
