//! Regenerates the paper's Table 2 (Azure instance types).
fn main() {
    println!("{}", ppc_bench::table2());
}
