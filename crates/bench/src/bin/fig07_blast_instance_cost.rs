//! Figure 7: cost to process 64 BLAST query files in EC2.
fn main() {
    println!("{}", ppc_bench::fig07());
}
