//! Figure 15: GTM interpolation performance per core.
fn main() {
    println!("{}", ppc_bench::fig15());
}
