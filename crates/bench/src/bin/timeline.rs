//! Render a per-worker execution timeline (Gantt view) of a simulated
//! Classic Cloud run — the observability view operators use to spot load
//! imbalance. Compare a homogeneous run against an inhomogeneous one.
use ppc_apps::workload;
use ppc_classic::{simulate, SimConfig};
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::EC2_HCXL;
use ppc_compute::model::AppModel;
use ppc_exec::RunContext;

fn show(title: &str, tasks: &[ppc_core::TaskSpec]) {
    let cluster = Cluster::provision(EC2_HCXL, 1, 8);
    let mut cfg = SimConfig::ec2().with_app(AppModel::cap3());
    cfg.trace = true;
    let report = simulate(&RunContext::new(&cluster), tasks, &cfg);
    let timeline = report.timeline.as_ref().expect("traced");
    println!("## {title}");
    println!(
        "makespan {:.0} s, utilization {:.0}%",
        report.summary.makespan_seconds,
        100.0 * timeline.utilization(8)
    );
    print!("{}", timeline.render_ascii(64));
    println!();
}

fn main() {
    show(
        "Homogeneous Cap3 files (8 workers)",
        &workload::cap3_sim_tasks(40, 200),
    );
    show(
        "Inhomogeneous Cap3 files (8 workers)",
        &workload::cap3_sim_tasks_inhomogeneous(40, 200, 0.8, 7),
    );
}
