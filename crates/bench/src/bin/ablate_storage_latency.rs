//! Ablation: Classic Cloud efficiency vs cloud-storage latency.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_storage_latency());
}
