//! Figure 14: GTM interpolation parallel efficiency.
fn main() {
    println!("{}", ppc_bench::fig14());
}
