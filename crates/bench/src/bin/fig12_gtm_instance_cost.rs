//! Figure 12: GTM interpolation cost with different EC2 instance types.
fn main() {
    println!("{}", ppc_bench::fig12());
}
