//! Ablation: Hadoop data-locality scheduling on/off vs input size.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_locality());
}
