//! Ablation: shared per-instance NIC contention vs input size — at what
//! transfer volume does the Classic Cloud's bring-data-to-compute design
//! start paying for its shared uplink?
fn main() {
    println!("{}", ppc_bench::ablations::ablate_nic_contention());
}
