//! Figure 3: Cap3 cost with different EC2 instance types.
fn main() {
    println!("{}", ppc_bench::fig03());
}
