//! Figure 10: BLAST parallel efficiency across the four platforms.
fn main() {
    println!("{}", ppc_bench::fig10());
}
