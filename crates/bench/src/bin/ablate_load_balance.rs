//! Ablation: dynamic global queue vs static partitioning on skewed data.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_load_balance());
}
