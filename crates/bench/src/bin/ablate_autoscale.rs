//! Ablation: elastic fleet strategies vs a fixed peak-sized fleet.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_autoscale());
    println!("{}", ppc_bench::ablations::autoscale_timeline_demo());
}
