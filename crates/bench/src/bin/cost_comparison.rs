//! Extended cost comparison: the paper's Table 4 generalized to all three
//! applications on their paper-specified fleets.
fn main() {
    println!("{}", ppc_bench::cost_comparison_table());
}
