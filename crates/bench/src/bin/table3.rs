//! Regenerates the paper's Table 3 (framework feature comparison).
fn main() {
    println!("{}", ppc_bench::table3());
}
