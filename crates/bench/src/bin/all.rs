//! Prints the entire reproduced evaluation section — every table, figure,
//! and ablation — in paper order.
//!
//! ```bash
//! cargo run --release -p ppc-bench --bin all             # print to stdout
//! cargo run --release -p ppc-bench --bin all -- --csv results/
//! ```
//!
//! With `--csv <dir>` each exhibit is also written as a CSV file for
//! downstream plotting.

use ppc_core::report::{Figure, Table};
use std::path::PathBuf;

enum Exhibit {
    Table(&'static str, Table),
    Figure(&'static str, Figure),
}

fn exhibits() -> Vec<Exhibit> {
    use Exhibit::*;
    vec![
        Table("table1", ppc_bench::table1()),
        Table("table2", ppc_bench::table2()),
        Table("table3", ppc_bench::table3()),
        Figure("fig03", ppc_bench::fig03()),
        Figure("fig04", ppc_bench::fig04()),
        Figure("fig05", ppc_bench::fig05()),
        Figure("fig06", ppc_bench::fig06()),
        Table("table4", ppc_bench::table4()),
        Figure("fig07", ppc_bench::fig07()),
        Figure("fig08", ppc_bench::fig08()),
        Figure("fig09", ppc_bench::fig09()),
        Figure("fig10", ppc_bench::fig10()),
        Figure("fig11", ppc_bench::fig11()),
        Figure("fig12", ppc_bench::fig12()),
        Figure("fig13", ppc_bench::fig13()),
        Figure("fig14", ppc_bench::fig14()),
        Figure("fig15", ppc_bench::fig15()),
        Figure(
            "ablate_visibility_timeout",
            ppc_bench::ablations::ablate_visibility_timeout(),
        ),
        Figure(
            "ablate_fault_rate",
            ppc_bench::ablations::ablate_fault_rate(),
        ),
        Figure(
            "ablate_load_balance",
            ppc_bench::ablations::ablate_load_balance(),
        ),
        Figure("ablate_locality", ppc_bench::ablations::ablate_locality()),
        Figure(
            "ablate_granularity",
            ppc_bench::ablations::ablate_granularity(),
        ),
        Figure(
            "ablate_speculation",
            ppc_bench::ablations::ablate_speculation(),
        ),
        Figure("ablate_hedging", ppc_bench::ablations::ablate_hedging()),
        Figure(
            "ablate_nic_contention",
            ppc_bench::ablations::ablate_nic_contention(),
        ),
        Figure(
            "ablate_storage_latency",
            ppc_bench::ablations::ablate_storage_latency(),
        ),
        Figure("ablate_autoscale", ppc_bench::ablations::ablate_autoscale()),
        Figure(
            "sustained_variation",
            ppc_bench::ablations::sustained_variation(),
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .map(|i| PathBuf::from(args.get(i + 1).map(String::as_str).unwrap_or("results")));
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    for exhibit in exhibits() {
        let (name, rendered, csv) = match &exhibit {
            Exhibit::Table(name, t) => (*name, t.to_string(), t.to_csv()),
            Exhibit::Figure(name, f) => (*name, f.to_string(), f.to_csv()),
        };
        println!("{rendered}");
        if let Some(dir) = &csv_dir {
            std::fs::write(dir.join(format!("{name}.csv")), csv).expect("write csv");
        }
    }
    if let Some(dir) = &csv_dir {
        eprintln!("CSV files written to {}", dir.display());
    }
}
