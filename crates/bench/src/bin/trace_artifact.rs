//! Generate the span-trace artifact: a `chrome://tracing` / Perfetto JSON
//! per paradigm simulator (written next to the given output stem) and the
//! overhead decomposition tables on stdout.
//!
//! ```bash
//! cargo run --release -p ppc-bench --bin trace_artifact -- target/cap3
//! # -> target/cap3-classic.trace.json, -hadoop, -dryad
//! ```

fn main() {
    let stem = std::env::args().nth(1).unwrap_or_else(|| "cap3".into());
    for trace in ppc_bench::traces::traced_cap3_runs() {
        let paradigm = ppc_trace::Paradigm::detect(&trace.meta().platform).expect("stamped");
        let suffix = match paradigm {
            ppc_trace::Paradigm::Classic => "classic",
            ppc_trace::Paradigm::Hadoop => "hadoop",
            ppc_trace::Paradigm::Dryad => "dryad",
        };
        let path = format!("{stem}-{suffix}.trace.json");
        std::fs::write(&path, ppc_trace::chrome_trace_json(&trace))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
        println!("{}", ppc_trace::OverheadReport::from_trace(&trace).render());
    }
}
