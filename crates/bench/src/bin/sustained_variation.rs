//! Sustained-performance variation study (paper §3's CV measurements).
fn main() {
    println!("{}", ppc_bench::ablations::sustained_variation());
}
