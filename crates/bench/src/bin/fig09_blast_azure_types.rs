//! Figure 9: BLAST on Azure instance types (workers x threads grid).
fn main() {
    println!("{}", ppc_bench::fig09());
}
