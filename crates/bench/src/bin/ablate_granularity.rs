//! Ablation: task granularity vs Classic Cloud efficiency.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_granularity());
}
