//! Ablation: Hadoop speculative execution on/off under stragglers.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_speculation());
}
