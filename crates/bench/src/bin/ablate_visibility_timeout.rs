//! Ablation: visibility timeout vs recovery latency and wasted work.
fn main() {
    println!("{}", ppc_bench::ablations::ablate_visibility_timeout());
}
