//! Figure 4: Cap3 compute time with different EC2 instance types.
fn main() {
    println!("{}", ppc_bench::fig04());
}
