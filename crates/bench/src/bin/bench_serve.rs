//! Job-service benchmark: the serving-path trajectory for `ppc-serve`.
//!
//! Drives the deterministic closed-loop load generator through the DES at
//! two operating points against the same 64-instance fleet and writes the
//! machine-readable `BENCH_serve.json` CI tracks:
//!
//! 1. **Underload** (~0.5× fleet capacity offered): the service should be
//!    a pass-through — zero rejections, job latency ≈ service time.
//! 2. **Overload** (~2× fleet capacity offered): the bounded per-tenant
//!    buffers shed the excess, the weighted fair-share scheduler keeps
//!    Jain's index high, and p99 latency stays *bounded* by queue depth —
//!    the whole point of admission control over an open queue.
//!
//! In full mode the two scenarios together drive ≥ 1M submissions through
//! one process. Every metric is a deterministic function of the seed
//! (virtual time, not wall-clock), so the gate thresholds hold on any
//! machine.
//!
//! ```bash
//! cargo run --release -p ppc-bench --bin bench_serve                 # full, writes BENCH_serve.json
//! cargo run --release -p ppc-bench --bin bench_serve -- --smoke      # reduced CI sizes
//! cargo run --release -p ppc-bench --bin bench_serve -- --smoke --check BENCH_serve.json
//! ```
//!
//! `--check <baseline>` verifies the structural overload contract on the
//! fresh run (underload sheds nothing; overload sheds but keeps p99 under
//! the queue-depth bound and fairness above 0.85) and that the committed
//! baseline still records the same regime split.

use ppc_core::json::Json;
use ppc_exec::RunContext;
use ppc_serve::{
    simulate_serve, ServeFleet, ServeReport, ServeSimConfig, TenantLoad, TenantQuota, TenantSpec,
};
use std::time::Instant;

/// Fleet size; with 8-core instances and 8-task jobs each job occupies
/// exactly one instance.
const INSTANCES: u32 = 64;
/// Mean per-job service time: dispatch overhead + 8 tasks x 4 s / 8 cores.
const SERVICE_S: f64 = 1.0 + 32.0 / 8.0;
/// Per-tenant DRR weights.
const WEIGHTS: [u32; 4] = [4, 2, 2, 1];

struct Sizes {
    underload_clients: u32,
    underload_jobs: u32,
    overload_clients: u32,
    overload_jobs: u32,
}

// 4 tenants x 32 x 2500 + 4 x 64 x 2700 = 1,011,200 submissions.
const FULL: Sizes = Sizes {
    underload_clients: 32,
    underload_jobs: 2500,
    overload_clients: 64,
    overload_jobs: 2700,
};

// Smoke keeps the client populations (they set the operating point and
// the queue depths the gate bounds) and only shortens each client's
// submission budget.
const SMOKE: Sizes = Sizes {
    underload_clients: 32,
    underload_jobs: 150,
    overload_clients: 64,
    overload_jobs: 160,
};

/// Build one operating point. Both share the fleet, quotas, and job shape;
/// only the client population and think time move, so underload offers
/// ~0.5× fleet capacity and overload ~2×.
fn scenario(sizes: &Sizes, overload: bool) -> ServeSimConfig {
    let quota = TenantQuota {
        max_queued: 32,
        max_running: INSTANCES as usize,
    };
    let (clients, jobs, think_s) = if overload {
        (sizes.overload_clients, sizes.overload_jobs, SERVICE_S)
    } else {
        (
            sizes.underload_clients,
            sizes.underload_jobs,
            3.0 * SERVICE_S,
        )
    };
    let loads = WEIGHTS
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let spec = TenantSpec::new(format!("tenant-{i}"), w).with_quota(quota);
            let mut load = TenantLoad::new(spec, clients, jobs);
            load.think_s = think_s;
            load
        })
        .collect();
    ServeSimConfig::new(
        ppc_compute::instance::EC2_HCXL,
        ServeFleet::Fixed {
            instances: INSTANCES,
        },
        loads,
    )
}

/// Structural p99 bound under overload: the slowest-share tenant's full
/// buffer drains at its weighted share of fleet throughput, plus a
/// generous service-time tail allowance. Anything above this means jobs
/// waited on an *unbounded* queue — exactly what admission control exists
/// to prevent.
fn overload_p99_bound() -> f64 {
    let capacity = INSTANCES as f64 / SERVICE_S; // jobs/sec
    let total_w: u32 = WEIGHTS.iter().sum();
    let min_w = *WEIGHTS.iter().min().expect("weights nonempty") as f64;
    let worst_drain = 32.0 * total_w as f64 / min_w / capacity;
    worst_drain + 10.0 * SERVICE_S
}

fn offered_x_capacity(cfg: &ServeSimConfig) -> f64 {
    let clients: f64 = cfg.tenants.iter().map(|t| t.clients as f64).sum();
    let cycle = cfg.tenants[0].think_s + SERVICE_S;
    (clients / cycle) / (INSTANCES as f64 / SERVICE_S)
}

fn run_scenario(name: &str, cfg: &ServeSimConfig) -> (ServeReport, f64) {
    eprintln!(
        "benching {name}: {} submissions, offered ~{:.1}x capacity ...",
        cfg.submissions(),
        offered_x_capacity(cfg)
    );
    let start = Instant::now();
    let run = simulate_serve(&RunContext::local(), cfg);
    let wall = start.elapsed().as_secs_f64();
    let r = &run.report;
    eprintln!(
        "  {name:<9} p50/p95/p99 {:>6.1}/{:>6.1}/{:>6.1} s | rejected {:>5.1}% | jain {:.3} | {:>8.0} jobs/s wall",
        r.latency_p50_s,
        r.latency_p95_s,
        r.latency_p99_s,
        r.rejection_rate * 100.0,
        r.fairness_jain,
        r.submitted as f64 / wall,
    );
    (run.report, wall)
}

fn scenario_json(name: &str, cfg: &ServeSimConfig, report: &ServeReport, wall: f64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        (
            "offered_x_capacity".into(),
            Json::Float(offered_x_capacity(cfg)),
        ),
        ("wall_s".into(), Json::Float(wall)),
        (
            "submissions_per_sec_wall".into(),
            Json::Float(report.submitted as f64 / wall),
        ),
        ("report".into(), report.to_json()),
    ])
}

fn get_f64(json: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = json;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_f64().ok()
}

fn scenario_metric(json: &Json, name: &str, path: &[&str]) -> Option<f64> {
    let scenarios = json.get("scenarios")?.as_arr().ok()?;
    let s = scenarios
        .iter()
        .find(|s| s.get("name").and_then(|n| n.as_str().ok()) == Some(name))?;
    get_f64(s, path)
}

/// The regime contract both fresh runs and committed baselines must obey.
fn check_regimes(json: &Json, label: &str) -> std::result::Result<(), String> {
    let m = |name: &str, path: &[&str]| {
        scenario_metric(json, name, path)
            .ok_or_else(|| format!("{label}: missing {name} {}", path.join(".")))
    };
    let under_rej = m("underload", &["report", "rejection_rate"])?;
    let over_rej = m("overload", &["report", "rejection_rate"])?;
    let under_p99 = m("underload", &["report", "latency_p99_s"])?;
    let over_p99 = m("overload", &["report", "latency_p99_s"])?;
    let over_jain = m("overload", &["report", "fairness_jain"])?;
    if under_rej != 0.0 {
        return Err(format!("{label}: underload shed {under_rej:.4} of jobs"));
    }
    if over_rej <= 0.0 {
        return Err(format!("{label}: overload shed nothing"));
    }
    if over_p99 < under_p99 {
        return Err(format!(
            "{label}: overload p99 {over_p99:.1}s below underload {under_p99:.1}s"
        ));
    }
    let bound = overload_p99_bound();
    if over_p99 > bound {
        return Err(format!(
            "{label}: overload p99 {over_p99:.1}s exceeds queue-depth bound {bound:.1}s"
        ));
    }
    if over_jain < 0.85 {
        return Err(format!(
            "{label}: overload fairness {over_jain:.3} below 0.85"
        ));
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check: Option<&String> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1));
    let out = args
        .iter()
        .rfind(|a| !a.starts_with("--") && Some(*a) != check)
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".into());
    let sizes = if smoke { &SMOKE } else { &FULL };

    let under_cfg = scenario(sizes, false);
    let over_cfg = scenario(sizes, true);
    let total = under_cfg.submissions() + over_cfg.submissions();
    if !smoke {
        assert!(
            total >= 1_000_000,
            "full mode must drive >= 1M submissions, got {total}"
        );
    }
    let (under, under_wall) = run_scenario("underload", &under_cfg);
    let (over, over_wall) = run_scenario("overload", &over_cfg);

    let json = Json::Obj(vec![
        ("bench".into(), Json::Str("serve".into())),
        (
            "mode".into(),
            Json::Str(if smoke { "smoke" } else { "full" }.into()),
        ),
        ("total_submissions".into(), Json::Int(total as i128)),
        (
            "overload_p99_bound_s".into(),
            Json::Float(overload_p99_bound()),
        ),
        (
            "scenarios".into(),
            Json::Arr(vec![
                scenario_json("underload", &under_cfg, &under, under_wall),
                scenario_json("overload", &over_cfg, &over, over_wall),
            ]),
        ),
    ]);

    if let Err(e) = check_regimes(&json, "fresh run") {
        eprintln!("FAIL: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "regime contract holds: overload p99 {:.1}s <= bound {:.1}s",
        over.latency_p99_s,
        overload_p99_bound()
    );

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = Json::parse(&text).expect("baseline parses");
        if let Err(e) = check_regimes(&baseline, "baseline") {
            eprintln!("FAIL: {e}");
            std::process::exit(1);
        }
        eprintln!("OK: fresh run and committed baseline both hold the regime contract");
        return; // a check run never overwrites the committed baseline
    }

    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");
}
