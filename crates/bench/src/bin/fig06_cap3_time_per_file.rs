//! Figure 6: Cap3 execution time for a single file per core.
fn main() {
    println!("{}", ppc_bench::fig06());
}
