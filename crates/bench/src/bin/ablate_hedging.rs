//! Hedged vs unhedged tail latency under a gray straggler, across all
//! three paradigm simulators. Prints the figure and writes the full
//! machine-readable quantile report.
//!
//! ```bash
//! cargo run --release -p ppc-bench --bin ablate_hedging -- BENCH_resilience.json
//! ```

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_resilience.json".into());
    let (fig, json) = ppc_bench::ablations::resilience_bench();
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| panic!("write {out}: {e}"));
    eprintln!("wrote {out}");
    println!("{fig}");
}
