//! # ppc-exec — the unified execution harness
//!
//! The paper's contribution is a *comparison* of three paradigms on
//! identical workloads, yet every cross-cutting layer (autoscaling, chaos,
//! tracing) used to be threaded into each engine as a new variant
//! function — Classic Cloud alone grew nine entry points. This crate is
//! the shared runtime abstraction that stops the multiplication:
//!
//! * [`RunContext`] carries everything previously passed ad-hoc — the run
//!   seed, the fleet layout (fixed clusters or an elastic plan), an
//!   optional [`FaultSchedule`], an optional [`TraceSink`]/`trace` flag —
//!   so each paradigm exposes exactly two entry points: `run(ctx, …)`
//!   (native) and `simulate(ctx, …)` (discrete-event).
//! * [`Engine`] is the object-safe paradigm trait (`name`/`run`/
//!   `simulate`) implemented by Classic, Hadoop, and Dryad, letting
//!   cross-framework studies iterate paradigms generically.
//! * [`RunReport`] is the report core every paradigm embeds (makespan
//!   summary, failed tasks, attempt/death counters, cost, optional
//!   trace), with the one JSON serializer in place of per-crate copies.
//!
//! Context fields *override* the per-paradigm config when set and fall
//! back to it when not, so legacy configs keep meaning what they meant:
//! the deprecated variant functions are one-line shims that build an
//! equivalent `RunContext` and call the new entry points.

use ppc_autoscale::AutoscaleConfig;
use ppc_chaos::{FaultSchedule, RunClock};
use ppc_compute::billing::CostBreakdown;
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::InstanceType;
use ppc_core::exec::Executor;
use ppc_core::json::Json;
use ppc_core::metrics::RunSummary;
use ppc_core::task::{TaskId, TaskSpec};
use ppc_core::{PpcError, Result};
use ppc_des::QueueKind;
use ppc_resilience::ResiliencePolicy;
use ppc_trace::{Trace, TraceSink};
use std::sync::Arc;

pub mod workflow;

pub use ppc_workflow::{
    DataPolicy, FnAdapter, MaterializeModel, Stage, StageAdapter, StageEdge, Workflow,
};
pub use workflow::{
    drive_workflow, run_workflow_with, simulate_workflow_with, StageReport, WorkflowReport,
};

/// Version stamp emitted as the `"schema"` key of every report JSON
/// object in the workspace ([`RunReport`], [`WorkflowReport`], and
/// ppc-serve's `ServeReport`). Bump when a key is added, removed, or
/// renamed so downstream consumers can pin what they parse.
pub const REPORT_SCHEMA: i64 = 2;

/// The worker fleet a run executes on.
#[derive(Clone)]
pub enum FleetPlan {
    /// One or more fixed clusters (several = the hybrid-cloud layout).
    Fixed(Vec<Cluster>),
    /// An elastic Classic Cloud fleet: instance type, autoscaling policy,
    /// and per-task arrival times (empty = all tasks available at t=0).
    Elastic {
        itype: InstanceType,
        autoscale: AutoscaleConfig,
        arrivals: Vec<f64>,
    },
}

impl std::fmt::Debug for FleetPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetPlan::Fixed(fleets) => f.debug_tuple("Fixed").field(&fleets.len()).finish(),
            FleetPlan::Elastic { itype, .. } => f
                .debug_struct("Elastic")
                .field("itype", &itype.name)
                .finish(),
        }
    }
}

/// Everything a run needs beyond its workload and paradigm config: seed,
/// fleet layout, fault schedule, trace sink. Build one with the
/// constructors and `with_*` builders; pass it to a paradigm's `run` /
/// `simulate` (or through the [`Engine`] trait).
#[derive(Clone)]
pub struct RunContext {
    pub fleet: FleetPlan,
    /// Run seed. When set it overrides the paradigm config's seed and
    /// every RNG stream of the run (per-worker streams, client stream,
    /// fault dice) derives from it; when `None` the config's own seed is
    /// the single source.
    pub seed: Option<u64>,
    /// Deterministic fault schedule; overrides the config's when set.
    pub schedule: Option<Arc<FaultSchedule>>,
    /// Span sink for native runs; overrides the config's when set.
    pub sink: Option<Arc<dyn TraceSink>>,
    /// Record spans in simulated runs (ORed with the sim config's flag).
    pub trace: bool,
    /// Straggler / gray-failure defense (hedged attempts, health-scored
    /// quarantine, per-task deadlines); overrides the config's when set.
    /// `None` leaves each paradigm's legacy behavior untouched.
    pub resilience: Option<ResiliencePolicy>,
    /// Event-queue backend for simulated runs; overrides the sim config's
    /// when set. All backends produce bit-identical results (pinned by
    /// `tests/des_differential.rs`), so this only affects speed.
    pub queue: Option<QueueKind>,
}

impl RunContext {
    /// A run on one fixed cluster.
    pub fn new(cluster: &Cluster) -> RunContext {
        RunContext::on_fleets(vec![cluster.clone()])
    }

    /// A run across several fixed fleets (the hybrid-cloud layout).
    pub fn on_fleets(fleets: Vec<Cluster>) -> RunContext {
        RunContext {
            fleet: FleetPlan::Fixed(fleets),
            seed: None,
            schedule: None,
            sink: None,
            trace: false,
            resilience: None,
            queue: None,
        }
    }

    /// A context with an empty fixed-fleet plan, for runtimes whose
    /// worker topology comes from elsewhere (e.g. the native MapReduce
    /// runtime, where compute is co-located with the HDFS datanodes):
    /// only the seed / schedule / trace settings apply.
    pub fn local() -> RunContext {
        RunContext::on_fleets(Vec::new())
    }

    /// An elastic run: the fleet grows and shrinks under `autoscale`.
    pub fn elastic(
        itype: InstanceType,
        autoscale: AutoscaleConfig,
        arrivals: Vec<f64>,
    ) -> RunContext {
        RunContext {
            fleet: FleetPlan::Elastic {
                itype,
                autoscale,
                arrivals,
            },
            seed: None,
            schedule: None,
            sink: None,
            trace: false,
            resilience: None,
            queue: None,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> RunContext {
        self.seed = Some(seed);
        self
    }

    /// Attach a fault schedule. Takes either a bare `Arc<FaultSchedule>`
    /// or the `Option` a chaos entry point may already hold; passing
    /// `None` clears any schedule set earlier.
    pub fn with_schedule(mut self, schedule: impl Into<Option<Arc<FaultSchedule>>>) -> RunContext {
        self.schedule = schedule.into();
        self
    }

    #[deprecated(since = "0.1.0", note = "with_schedule now accepts an Option directly")]
    pub fn with_schedule_opt(self, schedule: Option<Arc<FaultSchedule>>) -> RunContext {
        self.with_schedule(schedule)
    }

    /// Attach a trace sink. Takes either a bare `Arc<dyn TraceSink>` or
    /// the `Option` a native config may already carry; passing `None`
    /// clears any sink set earlier.
    pub fn with_sink(mut self, sink: impl Into<Option<Arc<dyn TraceSink>>>) -> RunContext {
        self.sink = sink.into();
        self
    }

    #[deprecated(since = "0.1.0", note = "with_sink now accepts an Option directly")]
    pub fn with_sink_opt(self, sink: Option<Arc<dyn TraceSink>>) -> RunContext {
        self.with_sink(sink)
    }

    pub fn with_trace(mut self, on: bool) -> RunContext {
        self.trace = on;
        self
    }

    pub fn with_resilience(mut self, policy: ResiliencePolicy) -> RunContext {
        self.resilience = Some(policy);
        self
    }

    /// Pin the event-queue backend for simulated runs.
    pub fn with_event_queue(mut self, kind: QueueKind) -> RunContext {
        self.queue = Some(kind);
        self
    }

    /// A fresh wall-clock for a native run starting now.
    pub fn clock(&self) -> RunClock {
        RunClock::start()
    }

    /// Effective seed: the context's when set, else the config's.
    pub fn seed_or(&self, config_seed: u64) -> u64 {
        self.seed.unwrap_or(config_seed)
    }

    /// Effective fault schedule: the context's when set, else the config's.
    pub fn schedule_or(
        &self,
        config_schedule: &Option<Arc<FaultSchedule>>,
    ) -> Option<Arc<FaultSchedule>> {
        self.schedule.clone().or_else(|| config_schedule.clone())
    }

    /// Effective trace sink: the context's when set, else the config's.
    pub fn sink_or(&self, config_sink: &Option<Arc<dyn TraceSink>>) -> Option<Arc<dyn TraceSink>> {
        self.sink.clone().or_else(|| config_sink.clone())
    }

    /// Effective sim-trace flag: context OR config.
    pub fn trace_or(&self, config_trace: bool) -> bool {
        self.trace || config_trace
    }

    /// Effective resilience policy: the context's when set, else the
    /// config's.
    pub fn resilience_or(
        &self,
        config_policy: &Option<ResiliencePolicy>,
    ) -> Option<ResiliencePolicy> {
        self.resilience.or(*config_policy)
    }

    /// Effective event-queue backend: the context's when set, else the
    /// sim config's.
    pub fn queue_or(&self, config_queue: QueueKind) -> QueueKind {
        self.queue.unwrap_or(config_queue)
    }

    /// The fixed fleets of this plan, or an error for elastic plans (for
    /// paradigms without an elastic mode).
    pub fn fixed_fleets(&self) -> Result<&[Cluster]> {
        match &self.fleet {
            FleetPlan::Fixed(fleets) if !fleets.is_empty() => Ok(fleets),
            FleetPlan::Fixed(_) => Err(PpcError::InvalidArgument(
                "run context has an empty fleet list".into(),
            )),
            FleetPlan::Elastic { .. } => Err(PpcError::InvalidArgument(
                "this paradigm does not support elastic fleets".into(),
            )),
        }
    }

    /// The single cluster of this plan; errors on hybrid or elastic plans
    /// (for paradigms that run on exactly one cluster).
    pub fn single_cluster(&self) -> Result<&Cluster> {
        let fleets = self.fixed_fleets()?;
        if fleets.len() == 1 {
            Ok(&fleets[0])
        } else {
            Err(PpcError::InvalidArgument(format!(
                "this paradigm runs on a single cluster, got {} fleets",
                fleets.len()
            )))
        }
    }
}

/// The report core shared by all three paradigms. `ClassicReport`,
/// `MapReduceReport`, and `DryadReport` embed one (exposed through
/// `Deref`), adding only their paradigm-specific extras.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub summary: RunSummary,
    /// Tasks that exhausted their attempt budget.
    pub failed: Vec<TaskId>,
    /// Attempts actually executed (≥ tasks when retries or duplicates ran).
    pub total_attempts: usize,
    /// Worker/slot deaths observed (injected or scheduled).
    pub worker_deaths: usize,
    /// Compute cost of the run where the fleet's pricing is known.
    pub cost: Option<CostBreakdown>,
    /// Full span trace for traced runs.
    pub trace: Option<Trace>,
}

impl RunReport {
    /// Whether every task eventually completed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Re-executed attempt count: wasted (but harmless) work.
    pub fn redundant_attempts(&self) -> usize {
        self.total_attempts.saturating_sub(self.summary.tasks)
    }

    /// The one report→JSON serializer. Embeds
    /// [`RunSummary::to_json`](ppc_core::metrics::RunSummary::to_json);
    /// paradigm reports append their extras to this object.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::from(REPORT_SCHEMA)),
            ("summary".into(), self.summary.to_json()),
            (
                "failed".into(),
                Json::Arr(self.failed.iter().map(|t| Json::from(t.0)).collect()),
            ),
            ("total_attempts".into(), Json::from(self.total_attempts)),
            ("worker_deaths".into(), Json::from(self.worker_deaths)),
            (
                "cost".into(),
                match &self.cost {
                    Some(c) => Json::Obj(vec![
                        ("compute".into(), Json::Float(c.compute_cost.as_f64())),
                        ("amortized".into(), Json::Float(c.amortized_cost.as_f64())),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "trace_spans".into(),
                match &self.trace {
                    Some(t) => Json::from(t.spans().len()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// (output key, output bytes) pairs, in completion order.
pub type JobOutputs = Vec<(String, Vec<u8>)>;

/// A paradigm-neutral pleasingly-parallel workload: independent inputs
/// plus the executor that maps each to its output.
#[derive(Clone)]
pub struct Workload {
    pub name: String,
    pub inputs: Vec<(TaskSpec, Vec<u8>)>,
    pub executor: Arc<dyn Executor>,
    /// Attempt budget per task (each paradigm maps this onto its own
    /// fault-tolerance mechanism).
    pub max_attempts: u32,
    /// Message-redelivery timeout for queue-based engines (the Classic
    /// Cloud visibility timeout). `None` keeps the engine's own default;
    /// engines without a redelivery queue ignore it.
    pub visibility_timeout: Option<std::time::Duration>,
}

impl Workload {
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<(TaskSpec, Vec<u8>)>,
        executor: Arc<dyn Executor>,
    ) -> Workload {
        Workload {
            name: name.into(),
            inputs,
            executor,
            max_attempts: 4,
            visibility_timeout: None,
        }
    }

    pub fn with_max_attempts(mut self, n: u32) -> Workload {
        self.max_attempts = n;
        self
    }

    pub fn with_visibility_timeout(mut self, t: std::time::Duration) -> Workload {
        self.visibility_timeout = Some(t);
        self
    }

    /// The task specs alone (what the simulators consume).
    pub fn specs(&self) -> Vec<TaskSpec> {
        self.inputs.iter().map(|(t, _)| t.clone()).collect()
    }
}

/// One cloud paradigm, viewed uniformly: run a workload natively or
/// simulate a task set, both under one [`RunContext`]. Object-safe so
/// studies can hold `Vec<Box<dyn Engine>>` and iterate paradigms instead
/// of copy-pasting three call sites per scenario. Multi-stage
/// [`Workflow`]s run through the same trait via `run_workflow` /
/// `simulate_workflow` — a [`Workload`] is just the single-stage case
/// (`Workflow::from(workload)`).
pub trait Engine {
    /// Short platform name ("classic", "hadoop", "dryadlinq").
    fn name(&self) -> &str;

    /// Execute `workload` natively (real threads, real services) and
    /// return the shared report core plus the outputs.
    fn run(&self, ctx: &RunContext, workload: &Workload) -> Result<(RunReport, JobOutputs)>;

    /// Simulate `tasks` in virtual time and return the report core.
    fn simulate(&self, ctx: &RunContext, tasks: &[TaskSpec]) -> RunReport;

    /// Execute a multi-stage [`Workflow`] natively: topological stage
    /// order, adapter-resolved inter-stage payloads, materialization
    /// barriers, merged trace. The default drives every stage through
    /// [`Engine::run`]; engines with a native staged runtime (Dryad's
    /// vertex graph) override it.
    fn run_workflow(
        &self,
        ctx: &RunContext,
        wf: &Workflow,
    ) -> Result<(WorkflowReport, JobOutputs)> {
        run_workflow_with(self, ctx, wf)
    }

    /// Simulate a multi-stage [`Workflow`]: each stage through
    /// [`Engine::simulate`], stage start times from the DAG schedule plus
    /// the modeled materialization transfer on `Materialize` edges.
    fn simulate_workflow(&self, ctx: &RunContext, wf: &Workflow) -> Result<WorkflowReport> {
        simulate_workflow_with(self, ctx, wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::EC2_HCXL;

    fn summary() -> RunSummary {
        RunSummary {
            platform: "classic-ec2".into(),
            cores: 16,
            tasks: 10,
            makespan_seconds: 12.5,
            redundant_executions: 1,
            remote_bytes: 1024,
        }
    }

    #[test]
    fn context_overrides_and_fallbacks() {
        let cluster = Cluster::provision(EC2_HCXL, 2, 8);
        let ctx = RunContext::new(&cluster);
        // Unset context → config values win.
        assert_eq!(ctx.seed_or(42), 42);
        assert!(ctx.schedule_or(&None).is_none());
        assert!(!ctx.trace_or(false));
        assert!(ctx.trace_or(true));
        // Set context → context wins.
        let sched = Arc::new(FaultSchedule::new(7));
        let ctx = ctx
            .with_seed(9)
            .with_schedule(sched.clone())
            .with_trace(true);
        assert_eq!(ctx.seed_or(42), 9);
        let cfg_sched = Some(Arc::new(FaultSchedule::new(1)));
        assert!(Arc::ptr_eq(&ctx.schedule_or(&cfg_sched).unwrap(), &sched));
        assert!(ctx.trace_or(false));

        // Resilience: config fallback, then context override.
        assert!(ctx.resilience_or(&None).is_none());
        let cfg_policy = Some(ResiliencePolicy::legacy_speculation());
        assert_eq!(ctx.resilience_or(&cfg_policy), cfg_policy);
        let hedged = ResiliencePolicy::hedged(ppc_resilience::HedgeConfig::quantile(0.5));
        let ctx = ctx.with_resilience(hedged);
        assert_eq!(ctx.resilience_or(&cfg_policy), Some(hedged));

        // Event queue: config fallback, then context override.
        assert_eq!(ctx.queue_or(QueueKind::BinaryHeap), QueueKind::BinaryHeap);
        let ctx = ctx.with_event_queue(QueueKind::Calendar);
        assert_eq!(ctx.queue_or(QueueKind::BinaryHeap), QueueKind::Calendar);
    }

    #[test]
    fn fleet_accessors_enforce_shape() {
        let cluster = Cluster::provision(EC2_HCXL, 2, 8);
        let one = RunContext::new(&cluster);
        assert_eq!(one.fixed_fleets().unwrap().len(), 1);
        assert!(one.single_cluster().is_ok());

        let hybrid = RunContext::on_fleets(vec![cluster.clone(), cluster.clone()]);
        assert_eq!(hybrid.fixed_fleets().unwrap().len(), 2);
        assert!(hybrid.single_cluster().is_err());

        let elastic = RunContext::elastic(
            EC2_HCXL,
            AutoscaleConfig::target_tracking(1, 4, 4.0),
            vec![],
        );
        assert!(elastic.fixed_fleets().is_err());
        assert!(elastic.single_cluster().is_err());

        assert!(RunContext::on_fleets(vec![]).fixed_fleets().is_err());
    }

    #[test]
    fn report_json_embeds_summary() {
        let report = RunReport {
            summary: summary(),
            failed: vec![TaskId(3)],
            total_attempts: 11,
            worker_deaths: 2,
            cost: Some(CostBreakdown {
                compute_cost: ppc_core::money::Usd::cents(136),
                amortized_cost: ppc_core::money::Usd::cents(68),
            }),
            trace: None,
        };
        assert!(!report.is_complete());
        assert_eq!(report.redundant_attempts(), 1);
        let j = Json::parse(&report.to_json().to_string()).unwrap();
        let s = j.field("summary").unwrap();
        assert_eq!(
            s.field("platform").unwrap().as_str().unwrap(),
            "classic-ec2"
        );
        assert_eq!(s.field("tasks").unwrap().as_usize().unwrap(), 10);
        assert_eq!(
            j.field("failed").unwrap().as_arr().unwrap()[0]
                .as_u64()
                .unwrap(),
            3
        );
        assert_eq!(j.field("total_attempts").unwrap().as_usize().unwrap(), 11);
        assert!(
            (j.field("cost")
                .unwrap()
                .field("compute")
                .unwrap()
                .as_f64()
                .unwrap()
                - 1.36)
                .abs()
                < 1e-9
        );
        assert!(matches!(j.field("trace_spans").unwrap(), Json::Null));
    }

    /// Consumers parse report JSON by key; this pins the exact versioned
    /// key set so adding/removing/renaming one forces a schema bump here.
    #[test]
    fn report_json_key_set_is_versioned() {
        let report = RunReport {
            summary: summary(),
            failed: Vec::new(),
            total_attempts: 10,
            worker_deaths: 0,
            cost: None,
            trace: None,
        };
        let Json::Obj(fields) = report.to_json() else {
            panic!("report JSON must be an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema",
                "summary",
                "failed",
                "total_attempts",
                "worker_deaths",
                "cost",
                "trace_spans",
            ]
        );
        assert_eq!(fields[0].1, Json::from(REPORT_SCHEMA));
    }
}
