//! Workflow drivers: run a [`Workflow`] of stages on any [`Engine`],
//! natively or in the DES, through the engine's existing per-stage
//! `run`/`simulate` entry points.
//!
//! The orchestration is deliberately engine-agnostic: resolve each stage's
//! input payloads (seed inputs for sources, the in-edge adapter over the
//! upstream stage's outputs otherwise), pay the materialization barrier on
//! `Materialize` edges, run the stage under a per-stage [`RunContext`]
//! (resilience override, fresh trace recorder), and stitch the per-stage
//! traces into one workflow trace with `stage_start`/`materialize`/
//! `stage_done` boundary spans. Engines with a native staged runtime (Dryad)
//! override [`Engine::run_workflow`] but reuse [`drive_workflow`] with their
//! own per-stage runner, so the DAG semantics stay identical everywhere.

use crate::{Engine, JobOutputs, RunContext, RunReport, Workload};
use ppc_compute::billing::CostBreakdown;
use ppc_core::json::Json;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_trace::{Phase, Recorder, RunMeta, Span, Trace, TraceEvent, JOB_TASK, NO_WORKER};
use ppc_workflow::{DataPolicy, Stage, Workflow};
use std::sync::Arc;

/// A [`Workload`] is the degenerate workflow: one map-only stage, no edges.
/// Existing call sites lift into the workflow layer for free.
impl From<Workload> for Workflow {
    fn from(w: Workload) -> Workflow {
        let mut wf = Workflow::new(w.name.clone());
        let (specs, inputs): (Vec<TaskSpec>, Vec<Vec<u8>>) = w.inputs.into_iter().unzip();
        let mut stage = Stage::new(w.name, specs)
            .with_executor(w.executor)
            .with_inputs(inputs)
            .with_max_attempts(w.max_attempts);
        stage.visibility_timeout = w.visibility_timeout;
        wf.add_stage(stage);
        wf
    }
}

/// Per-stage slice of a workflow run.
#[derive(Debug, Clone)]
pub struct StageReport {
    pub name: String,
    /// When the stage started, on the workflow clock (wall seconds for
    /// native runs, virtual seconds for simulated ones).
    pub start_s: f64,
    /// When the stage finished, on the workflow clock.
    pub end_s: f64,
    /// Materialization barrier paid *before* this stage could start.
    pub materialize_s: f64,
    /// The engine's ordinary per-stage report.
    pub report: RunReport,
}

/// Outcome of a whole workflow run on one engine.
#[derive(Debug, Clone)]
pub struct WorkflowReport {
    pub name: String,
    pub platform: String,
    pub stages: Vec<StageReport>,
    /// End-to-end makespan including inter-stage barriers.
    pub makespan_seconds: f64,
    /// Total inter-stage materialization time across all edges.
    pub materialize_s: f64,
    /// Merged workflow trace (present when the context asked for tracing):
    /// per-stage spans shifted onto the workflow clock plus stage-boundary
    /// markers, decomposable by `OverheadReport` like any engine trace.
    pub trace: Option<Trace>,
    /// Summed per-stage cost, where every stage priced its fleet.
    pub cost: Option<CostBreakdown>,
}

impl WorkflowReport {
    /// Whether every stage completed every task.
    pub fn is_complete(&self) -> bool {
        self.stages.iter().all(|s| s.report.is_complete())
    }

    /// Attempts across all stages.
    pub fn total_attempts(&self) -> usize {
        self.stages.iter().map(|s| s.report.total_attempts).sum()
    }

    /// Worker deaths across all stages.
    pub fn worker_deaths(&self) -> usize {
        self.stages.iter().map(|s| s.report.worker_deaths).sum()
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::from(crate::REPORT_SCHEMA)),
            ("name".into(), Json::Str(self.name.clone())),
            ("platform".into(), Json::Str(self.platform.clone())),
            (
                "makespan_seconds".into(),
                Json::Float(self.makespan_seconds),
            ),
            (
                "materialize_seconds".into(),
                Json::Float(self.materialize_s),
            ),
            ("total_attempts".into(), Json::from(self.total_attempts())),
            ("worker_deaths".into(), Json::from(self.worker_deaths())),
            (
                "cost".into(),
                match &self.cost {
                    Some(c) => Json::Obj(vec![
                        ("compute".into(), Json::Float(c.compute_cost.as_f64())),
                        ("amortized".into(), Json::Float(c.amortized_cost.as_f64())),
                    ]),
                    None => Json::Null,
                },
            ),
            (
                "stages".into(),
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(s.name.clone())),
                                ("start_s".into(), Json::Float(s.start_s)),
                                ("end_s".into(), Json::Float(s.end_s)),
                                ("materialize_s".into(), Json::Float(s.materialize_s)),
                                ("report".into(), s.report.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Runs one stage natively and returns the engine's ordinary results.
/// [`drive_workflow`] is generic over this so Dryad's vertex runtime can
/// slot in without re-implementing the DAG orchestration.
pub type StageRunner<'a> =
    dyn FnMut(&RunContext, usize, &Workload) -> Result<(RunReport, JobOutputs)> + 'a;

/// Native workflow orchestration: topological stage order, adapter-resolved
/// payloads, materialization barriers, per-stage contexts, merged trace.
///
/// Outputs of sink stages (no outgoing edges) are concatenated in stage
/// index order; keys keep each engine's own namespace, so cross-paradigm
/// comparisons should canonicalize on the trailing basename like
/// [`ppc_workflow::model::key_basename`] does.
pub fn drive_workflow(
    ctx: &RunContext,
    wf: &Workflow,
    run_stage: &mut StageRunner<'_>,
) -> Result<(WorkflowReport, JobOutputs)> {
    wf.validate_native()?;
    let order = wf.topo_order()?;
    let clock = ctx.clock();
    let want_trace = ctx.trace || ctx.sink.is_some();

    let mut outputs: Vec<Option<JobOutputs>> = vec![None; wf.stages.len()];
    let mut stage_reports: Vec<Option<StageReport>> = vec![None; wf.stages.len()];
    let mut mat_windows: Vec<(usize, f64, f64)> = Vec::new();

    for &s in &order {
        let stage = &wf.stages[s];
        // Resolve payloads: adapter over upstream outputs, or seed inputs.
        let mat_start = clock.now_s();
        let payloads = match wf.data_in_edge(s) {
            Some(edge) => {
                let upstream = outputs[edge.from]
                    .as_ref()
                    .expect("topological order ran the upstream stage first");
                edge.adapter
                    .as_ref()
                    .expect("data edge has an adapter")
                    .adapt(upstream, &stage.specs)?
            }
            None => stage.inputs.clone(),
        };
        // Materialize-policy in-edges pay a real barrier window: the bytes
        // round-trip through the driver before the stage may start.
        let mat_end = clock.now_s();
        let mut materialize_s = 0.0;
        for edge in wf.in_edges(s) {
            if edge.policy == DataPolicy::Materialize {
                mat_windows.push((s, mat_start, mat_end));
                materialize_s += mat_end - mat_start;
            }
        }

        let workload = Workload {
            name: format!("{}/{}", wf.name, stage.name),
            inputs: stage.specs.iter().cloned().zip(payloads).collect(),
            executor: stage
                .executor
                .clone()
                .expect("validate_native checked executors"),
            max_attempts: stage.max_attempts,
            visibility_timeout: stage.visibility_timeout,
        };
        let sctx = stage_context(ctx, stage, want_trace);
        let start_s = clock.now_s();
        let (report, outs) = run_stage(&sctx, s, &workload)?;
        let end_s = clock.now_s();
        if !report.is_complete() {
            return Err(ppc_core::PpcError::InvalidState(format!(
                "workflow '{}' stage '{}': {} of {} tasks completed (failed: {:?}); \
                 downstream stages cannot run",
                wf.name,
                stage.name,
                report.summary.tasks,
                stage.specs.len(),
                report.failed,
            )));
        }
        outputs[s] = Some(outs);
        stage_reports[s] = Some(StageReport {
            name: stage.name.clone(),
            start_s,
            end_s,
            materialize_s,
            report,
        });
    }

    let stages: Vec<StageReport> = stage_reports.into_iter().map(|r| r.unwrap()).collect();
    let makespan = clock.now_s();
    let report = assemble(wf, stages, &mat_windows, makespan, want_trace);
    let mut final_outputs = Vec::new();
    for s in wf.sinks() {
        final_outputs.extend(outputs[s].take().unwrap());
    }
    Ok((report, final_outputs))
}

/// Default native driver: every stage goes through [`Engine::run`].
pub fn run_workflow_with<E: Engine + ?Sized>(
    engine: &E,
    ctx: &RunContext,
    wf: &Workflow,
) -> Result<(WorkflowReport, JobOutputs)> {
    drive_workflow(ctx, wf, &mut |sctx, _s, workload| {
        engine.run(sctx, workload)
    })
}

/// Default simulated driver: each stage goes through [`Engine::simulate`];
/// stage start times come from the DAG schedule (a stage starts when its
/// slowest in-edge finishes, plus the modeled materialization transfer on
/// `Materialize` edges).
pub fn simulate_workflow_with<E: Engine + ?Sized>(
    engine: &E,
    ctx: &RunContext,
    wf: &Workflow,
) -> Result<WorkflowReport> {
    wf.validate()?;
    let order = wf.topo_order()?;
    let want_trace = ctx.trace;

    let mut finish = vec![0.0f64; wf.stages.len()];
    let mut stage_reports: Vec<Option<StageReport>> = vec![None; wf.stages.len()];
    let mut mat_windows: Vec<(usize, f64, f64)> = Vec::new();

    for &s in &order {
        let stage = &wf.stages[s];
        let mut start_s = 0.0f64;
        let mut materialize_s = 0.0f64;
        for edge in wf.in_edges(s) {
            let cost = match edge.policy {
                DataPolicy::Materialize => wf
                    .materialize
                    .transfer_s(wf.stages[edge.from].output_bytes()),
                DataPolicy::Pipeline => 0.0,
            };
            if cost > 0.0 {
                mat_windows.push((s, finish[edge.from], finish[edge.from] + cost));
                materialize_s += cost;
            }
            start_s = start_s.max(finish[edge.from] + cost);
        }

        let sctx = stage_context(ctx, stage, want_trace);
        let report = engine.simulate(&sctx, &stage.specs);
        let end_s = start_s + report.summary.makespan_seconds;
        finish[s] = end_s;
        stage_reports[s] = Some(StageReport {
            name: stage.name.clone(),
            start_s,
            end_s,
            materialize_s,
            report,
        });
    }

    let stages: Vec<StageReport> = stage_reports.into_iter().map(|r| r.unwrap()).collect();
    let makespan = stages.iter().map(|r| r.end_s).fold(0.0, f64::max);
    Ok(assemble(wf, stages, &mat_windows, makespan, want_trace))
}

/// Per-stage context: same fleet/seed/chaos as the workflow context, the
/// stage's resilience override when it has one, and a fresh recorder per
/// stage when tracing (so stage traces merge cleanly on the workflow
/// clock instead of interleaving in one sink).
fn stage_context(ctx: &RunContext, stage: &Stage, want_trace: bool) -> RunContext {
    let mut sctx = ctx.clone();
    if let Some(policy) = stage.resilience {
        sctx = sctx.with_resilience(policy);
    }
    if want_trace {
        sctx.sink = Some(Arc::new(Recorder::new()));
        sctx.trace = true;
    }
    sctx
}

fn assemble(
    wf: &Workflow,
    stages: Vec<StageReport>,
    mat_windows: &[(usize, f64, f64)],
    makespan: f64,
    want_trace: bool,
) -> WorkflowReport {
    let platform = stages
        .first()
        .map(|s| s.report.summary.platform.clone())
        .unwrap_or_default();
    let materialize_s = stages.iter().map(|s| s.materialize_s).sum();
    let cost = sum_costs(&stages);
    let trace = if want_trace {
        merge_traces(&platform, &stages, mat_windows, makespan)
    } else {
        None
    };
    WorkflowReport {
        name: wf.name.clone(),
        platform,
        stages,
        makespan_seconds: makespan,
        materialize_s,
        trace,
        cost,
    }
}

fn sum_costs(stages: &[StageReport]) -> Option<CostBreakdown> {
    let mut total: Option<CostBreakdown> = None;
    for s in stages {
        let c = s.report.cost?;
        total = Some(match total {
            None => c,
            Some(t) => CostBreakdown {
                compute_cost: t.compute_cost + c.compute_cost,
                amortized_cost: t.amortized_cost + c.amortized_cost,
            },
        });
    }
    total
}

/// Shift each stage's trace onto the workflow clock, remap task ids into
/// per-stage namespaces, and add the stage-boundary marker spans.
fn merge_traces(
    platform: &str,
    stages: &[StageReport],
    mat_windows: &[(usize, f64, f64)],
    makespan: f64,
) -> Option<Trace> {
    if stages.iter().all(|s| s.report.trace.is_none()) {
        return None;
    }
    let remap = |stage: usize, task: u64| -> u64 {
        if task == JOB_TASK {
            JOB_TASK
        } else {
            ((stage as u64) << 32) | task
        }
    };
    let mut spans = vec![Span::job(makespan)];
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut cores = 0usize;
    let mut tasks = 0usize;
    for (s, sr) in stages.iter().enumerate() {
        cores = cores.max(sr.report.summary.cores);
        tasks += sr.report.summary.tasks;
        spans.push(Span::new(
            JOB_TASK,
            s as u32,
            NO_WORKER,
            Phase::StageStart,
            sr.start_s,
            sr.start_s,
        ));
        if let Some(t) = &sr.report.trace {
            // The stage ran on its own clock starting at 0; shift onto the
            // workflow clock and drop the per-stage job root (the workflow
            // has exactly one). Simulated speculative duplicates can outlive
            // the stage makespan (for a standalone job they keep burning
            // cores past the winner), but a stage barrier is a job teardown
            // that kills in-flight losers — clamp their spans to the stage
            // window, or their tails would overlap the next stage on the
            // same workers and overflow Eq. 1's cores × horizon budget.
            let stage_dur = sr.end_s - sr.start_s;
            for sp in t.spans() {
                if sp.phase == Phase::Job {
                    continue;
                }
                spans.push(Span::new(
                    remap(s, sp.task),
                    sp.attempt,
                    sp.worker,
                    sp.phase,
                    sp.start_s.min(stage_dur) + sr.start_s,
                    sp.end_s.min(stage_dur) + sr.start_s,
                ));
            }
            for ev in t.events() {
                events.push(TraceEvent {
                    at_s: ev.at_s + sr.start_s,
                    worker: ev.worker,
                    kind: ev.kind,
                });
            }
        }
        spans.push(Span::new(
            JOB_TASK,
            s as u32,
            NO_WORKER,
            Phase::StageDone,
            sr.end_s,
            sr.end_s,
        ));
    }
    for &(to, start, end) in mat_windows {
        spans.push(Span::new(
            JOB_TASK,
            to as u32,
            NO_WORKER,
            Phase::Materialize,
            start,
            end,
        ));
    }
    let meta = RunMeta {
        platform: platform.to_string(),
        cores,
        tasks,
        makespan_seconds: makespan,
    };
    Some(Trace::new(meta, spans, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same contract as `RunReport`: the exact key set is versioned, so
    /// any shape change must bump `REPORT_SCHEMA`.
    #[test]
    fn workflow_report_json_key_set_is_versioned() {
        let report = WorkflowReport {
            name: "wf".into(),
            platform: "classic-sim".into(),
            stages: Vec::new(),
            makespan_seconds: 1.0,
            materialize_s: 0.5,
            trace: None,
            cost: None,
        };
        let Json::Obj(fields) = report.to_json() else {
            panic!("workflow report JSON must be an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema",
                "name",
                "platform",
                "makespan_seconds",
                "materialize_seconds",
                "total_attempts",
                "worker_deaths",
                "cost",
                "stages",
            ]
        );
        assert_eq!(fields[0].1, Json::from(crate::REPORT_SCHEMA));
    }
}
