//! Randomized property tests for the discrete-event engine: the determinism
//! and ordering guarantees every platform simulation depends on. Cases are
//! generated with the workspace's own deterministic PRNG so failures
//! reproduce exactly from the printed seed.

use ppc_core::rng::Pcg32;
use ppc_des::{Engine, EventId, QueueKind, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Events fire in non-decreasing time order regardless of the schedule
/// order, and same-time events fire in insertion order.
#[test]
fn fires_in_time_then_insertion_order() {
    for seed in 0..128u64 {
        let mut rng = Pcg32::new(0x0DE8 + seed);
        let n = 1 + rng.next_below(199) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1000) as u64).collect();
        let mut engine = Engine::new();
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::default();
        for (seq, &t) in times.iter().enumerate() {
            let log = log.clone();
            engine.schedule_at(SimTime::from_millis(t), move |e| {
                log.borrow_mut().push((e.now().as_micros(), seq));
            });
        }
        let end = engine.run();
        let fired = log.borrow();
        assert_eq!(fired.len(), times.len());
        for pair in fired.windows(2) {
            assert!(pair[0].0 <= pair[1].0, "time order violated, seed {seed}");
            if pair[0].0 == pair[1].0 {
                assert!(
                    pair[0].1 < pair[1].1,
                    "insertion order violated at equal times, seed {seed}"
                );
            }
        }
        let max = times.iter().copied().max().unwrap();
        assert_eq!(end, SimTime::from_millis(max));
    }
}

/// Cascading events (each schedules a follow-up) keep the clock
/// monotone and fire everything exactly once.
#[test]
fn cascades_are_monotone() {
    fn chain(e: &mut Engine, delays: Rc<Vec<u64>>, idx: usize, log: Rc<RefCell<Vec<u64>>>) {
        log.borrow_mut().push(e.now().as_micros());
        if idx + 1 < delays.len() {
            let d = delays[idx + 1];
            let log2 = log.clone();
            let delays2 = delays.clone();
            e.schedule_in(SimTime::from_millis(d), move |e| {
                chain(e, delays2, idx + 1, log2)
            });
        }
    }
    for seed in 0..128u64 {
        let mut rng = Pcg32::new(0xCA5C + seed);
        let n = 1 + rng.next_below(49) as usize;
        let delays: Vec<u64> = (0..n).map(|_| rng.next_below(100) as u64).collect();
        let mut engine = Engine::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        let delays = Rc::new(delays);
        let d0 = delays[0];
        let log2 = log.clone();
        let delays2 = delays.clone();
        engine.schedule_at(SimTime::from_millis(d0), move |e| {
            chain(e, delays2, 0, log2)
        });
        engine.run();
        let fired = log.borrow();
        assert_eq!(fired.len(), delays.len());
        for pair in fired.windows(2) {
            assert!(pair[0] <= pair[1], "seed {seed}");
        }
        let total: u64 = delays.iter().sum();
        assert_eq!(*fired.last().unwrap(), total * 1000, "seed {seed}");
    }
}

/// run_until never fires past the deadline; the remainder still runs.
#[test]
fn run_until_partitions_cleanly() {
    for seed in 0..128u64 {
        let mut rng = Pcg32::new(0x0C07 + seed);
        let n = 1 + rng.next_below(99) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.next_below(1000) as u64).collect();
        let cut = rng.next_below(1000) as u64;
        let mut engine = Engine::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &t in &times {
            let log = log.clone();
            engine.schedule_at(SimTime::from_millis(t), move |e| {
                log.borrow_mut().push(e.now().as_micros())
            });
        }
        engine.run_until(SimTime::from_millis(cut));
        let early = log.borrow().len();
        let expected_early = times.iter().filter(|&&t| t <= cut).count();
        assert_eq!(early, expected_early, "seed {seed}");
        engine.run();
        assert_eq!(log.borrow().len(), times.len(), "seed {seed}");
    }
}

/// SimTime billing hours: ceiling, 1-hour granularity, monotone.
#[test]
fn billed_hours_monotone() {
    for seed in 0..128u64 {
        let mut rng = Pcg32::new(0xB111 + seed);
        let n = 2 + rng.next_below(18) as usize;
        let mut sorted: Vec<u64> = (0..n).map(|_| rng.next_below(20_000) as u64).collect();
        sorted.sort_unstable();
        let hours: Vec<u64> = sorted
            .iter()
            .map(|&s| SimTime::from_secs(s).billed_hours())
            .collect();
        for pair in hours.windows(2) {
            assert!(pair[0] <= pair[1], "seed {seed}");
        }
        for (&s, &h) in sorted.iter().zip(&hours) {
            if s == 0 {
                assert_eq!(h, 0);
            } else {
                assert!(h * 3600 >= s, "ceiling covers duration, seed {seed}");
                assert!(
                    (h - 1) * 3600 < s,
                    "no over-billing by a whole hour, seed {seed}"
                );
            }
        }
    }
}

/// Cancellation semantics, on every backend: under arbitrary interleavings
/// of schedule / cancel / reschedule, (a) cancelled events never fire,
/// (b) nothing fires twice, (c) `pending()` always equals the live count,
/// and (d) everything still live at the end fires exactly once.
#[test]
fn cancellation_interleavings_never_misfire() {
    for kind in QueueKind::ALL {
        for seed in 0..64u64 {
            let mut rng = Pcg32::new(0xCA8C ^ seed);
            let mut engine = Engine::with_queue(kind);
            let fired: Rc<RefCell<Vec<usize>>> = Rc::default();
            // Tokens of events scheduled so far; `state` tracks what we
            // believe each token is: live handle, or retired (fired-soon,
            // cancelled, or superseded by reschedule).
            let mut handles: Vec<(usize, EventId)> = Vec::new();
            let mut live_expected = 0usize;
            let mut expected_to_fire: Vec<usize> = Vec::new();
            let mut next_token = 0usize;
            let ops = 50 + rng.next_below(150) as usize;
            for _ in 0..ops {
                match rng.next_below(5) {
                    // Schedule a fresh event.
                    0 | 1 => {
                        let at = SimTime::from_micros(rng.next_below(5_000) as u64);
                        let token = next_token;
                        next_token += 1;
                        let log = fired.clone();
                        let id = engine.schedule_at(at, move |_| log.borrow_mut().push(token));
                        handles.push((token, id));
                        expected_to_fire.push(token);
                        live_expected += 1;
                    }
                    // Cancel a random earlier handle (possibly stale).
                    2 if !handles.is_empty() => {
                        let pick = rng.next_below(handles.len() as u32) as usize;
                        let (token, id) = handles[pick];
                        let was_live = engine.is_scheduled(id);
                        let did = engine.cancel(id);
                        assert_eq!(
                            did,
                            was_live,
                            "[{}] cancel/is_scheduled disagree",
                            kind.name()
                        );
                        if did {
                            live_expected -= 1;
                            expected_to_fire.retain(|&t| t != token);
                        }
                        assert!(!engine.cancel(id), "[{}] double-cancel", kind.name());
                    }
                    // Reschedule a random earlier handle (possibly stale).
                    3 if !handles.is_empty() => {
                        let pick = rng.next_below(handles.len() as u32) as usize;
                        let (token, id) = handles[pick];
                        let at = SimTime::from_micros(rng.next_below(5_000) as u64);
                        let was_live = engine.is_scheduled(id);
                        match engine.reschedule_at(id, at) {
                            Some(new_id) => {
                                assert!(was_live);
                                assert!(!engine.is_scheduled(id));
                                handles[pick] = (token, new_id);
                            }
                            None => assert!(!was_live, "[{}] lost a live handle", kind.name()),
                        }
                    }
                    // Fire the earliest live event mid-interleaving.
                    4 if engine.step() => live_expected -= 1,
                    _ => {}
                }
                assert_eq!(
                    engine.pending(),
                    live_expected,
                    "[{} seed {seed}] pending() drifted from live count",
                    kind.name()
                );
            }
            engine.run();
            assert_eq!(engine.pending(), 0);
            let mut got = fired.borrow().clone();
            got.sort_unstable();
            let mut want = expected_to_fire.clone();
            want.sort_unstable();
            assert_eq!(
                got,
                want,
                "[{} seed {seed}] fired set != live set (cancelled fired, or live lost)",
                kind.name()
            );
            assert_eq!(engine.events_fired() as usize, want.len());
        }
    }
}

/// FIFO server conservation: all submitted jobs complete, in order, and
/// total busy time equals the sum of service times.
#[test]
fn fifo_server_conserves_work() {
    use ppc_des::FifoServer;
    let mut rng = Pcg32::new(99);
    for _ in 0..20 {
        let capacity = 1 + rng.next_below(4) as usize;
        let n_jobs = 5 + rng.next_below(40) as usize;
        let services: Vec<u64> = (0..n_jobs).map(|_| 1 + rng.next_below(50) as u64).collect();
        let mut engine = Engine::new();
        let server = FifoServer::new("s", capacity);
        let done: Rc<RefCell<Vec<usize>>> = Rc::default();
        for (i, &svc) in services.iter().enumerate() {
            let server = server.clone();
            let done = done.clone();
            engine.schedule_at(SimTime::ZERO, move |e| {
                let done = done.clone();
                server.submit(e, SimTime::from_secs(svc), move |_| {
                    done.borrow_mut().push(i)
                });
            });
        }
        let end = engine.run();
        assert_eq!(done.borrow().len(), n_jobs);
        assert_eq!(server.completed(), n_jobs as u64);
        // Work conservation: busy-time integral equals total service time.
        let total_service: u64 = services.iter().sum();
        let busy_integral = server.mean_busy(end) * end.as_secs_f64();
        assert!(
            (busy_integral - total_service as f64).abs() < 1e-6,
            "{busy_integral} vs {total_service}"
        );
        // Makespan lower bound: max(total/capacity, longest job).
        let lower =
            (total_service as f64 / capacity as f64).max(*services.iter().max().unwrap() as f64);
        assert!(end.as_secs_f64() >= lower - 1e-9);
    }
}
