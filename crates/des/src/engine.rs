//! The event core.
//!
//! An [`Engine`] owns a slab of pending events (boxed `FnOnce` closures)
//! and a pluggable [`EventQueue`] of `(time, sequence, slot)` keys.
//! [`Engine::run`] pops the earliest key and fires its event; firing may
//! schedule further events. Two events at the same instant fire in the
//! order they were scheduled (the `sequence` tie-break) — an explicit
//! contract every queue backend implements identically, which, together
//! with the deterministic PRNGs in `ppc-core::rng`, makes whole platform
//! simulations reproducible bit for bit on any backend.
//!
//! [`Engine::schedule_at`] returns a stable [`EventId`]: a generation-
//! checked handle that supports O(1) [`Engine::cancel`] (the slab slot is
//! freed immediately and the stale queue key is skipped when it surfaces
//! — no scans, no heap rebuilds) and [`Engine::reschedule_at`]. This is
//! what lets `ppc-resilience` deadline/hedge timer churn cost one slab
//! write instead of a queue restructure.

use crate::queue::{EventEntry, EventQueue, QueueImpl, QueueKind};
use crate::time::SimTime;

type EventFn = Box<dyn FnOnce(&mut Engine)>;

/// A stable handle to a scheduled (not yet fired) event.
///
/// Generation-checked: once the event fires, is cancelled, or is
/// rescheduled, the handle goes stale and every operation on it returns
/// `false`/`None` — handles never dangle into a recycled slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    idx: u32,
    gen: u32,
}

/// One slab slot. `seq` identifies the current occupant (sequence numbers
/// are globally unique), so queue keys carrying an older `seq` are
/// recognized as stale tombstones; `gen` does the same for [`EventId`]s.
struct Slot {
    gen: u32,
    seq: u64,
    f: Option<EventFn>,
}

/// Single-threaded discrete-event engine over a pluggable event queue.
pub struct Engine {
    now: SimTime,
    seq: u64,
    fired: u64,
    cancelled: u64,
    /// Live (scheduled, not yet fired or cancelled) events.
    live: usize,
    slots: Vec<Slot>,
    free: Vec<u32>,
    queue: QueueImpl,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine on the process-default queue backend
    /// ([`QueueKind::from_env`]: `PPC_DES_QUEUE` or the timing wheel).
    pub fn new() -> Engine {
        Engine::with_queue(QueueKind::from_env())
    }

    /// An engine on an explicit queue backend.
    pub fn with_queue(kind: QueueKind) -> Engine {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            cancelled: 0,
            live: 0,
            slots: Vec::new(),
            free: Vec::new(),
            queue: QueueImpl::new(kind),
        }
    }

    /// Which queue backend this engine runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (useful for runaway detection in tests).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events cancelled so far.
    pub fn events_cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Number of live events still pending (cancelled events leave this
    /// count immediately, even though their queue tombstone lingers).
    pub fn pending(&self) -> usize {
        self.live
    }

    fn alloc(&mut self, seq: u64, f: EventFn) -> EventId {
        match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.seq = seq;
                slot.f = Some(f);
                EventId { idx, gen: slot.gen }
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("event slab overflow");
                self.slots.push(Slot {
                    gen: 0,
                    seq,
                    f: Some(f),
                });
                EventId { idx, gen: 0 }
            }
        }
    }

    /// Free a slot, invalidating outstanding [`EventId`]s for it.
    fn release(&mut self, idx: u32) -> EventFn {
        let slot = &mut self.slots[idx as usize];
        let f = slot.f.take().expect("releasing an empty slot");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.live -= 1;
        f
    }

    fn schedule_boxed(&mut self, at: SimTime, f: EventFn) -> EventId {
        // Scheduling in the past is a model bug; clamp to `now` so it
        // fires next and the clock stays monotonic.
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let id = self.alloc(seq, f);
        self.queue.push(EventEntry {
            at,
            seq,
            idx: id.idx,
        });
        self.live += 1;
        id
    }

    /// Schedule `f` to fire at absolute time `at` (clamped to `now`).
    /// The returned handle can be ignored, [`cancel`](Engine::cancel)led,
    /// or [`reschedule_at`](Engine::reschedule_at)d.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Engine) + 'static) -> EventId {
        self.schedule_boxed(at, Box::new(f))
    }

    /// Schedule `f` to fire `delay` after now.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Whether `id` still refers to a pending event.
    pub fn is_scheduled(&self, id: EventId) -> bool {
        self.slots
            .get(id.idx as usize)
            .is_some_and(|s| s.gen == id.gen && s.f.is_some())
    }

    /// Cancel a pending event in O(1): the closure is dropped and the slab
    /// slot freed immediately; the queue key becomes an inert tombstone
    /// skipped when it surfaces (no scans). Returns whether anything was
    /// cancelled — `false` for events already fired, cancelled, or
    /// rescheduled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.is_scheduled(id) {
            return false;
        }
        drop(self.release(id.idx));
        self.cancelled += 1;
        true
    }

    /// Move a pending event to absolute time `at` (clamped to `now`),
    /// keeping its closure. The old handle goes stale; the event fires at
    /// the new time with a fresh sequence number (it ties *after* events
    /// already scheduled there). `None` if `id` was no longer pending.
    pub fn reschedule_at(&mut self, id: EventId, at: SimTime) -> Option<EventId> {
        if !self.is_scheduled(id) {
            return None;
        }
        let f = self.release(id.idx);
        Some(self.schedule_boxed(at, f))
    }

    /// Like [`Engine::reschedule_at`], relative to now.
    pub fn reschedule_in(&mut self, id: EventId, delay: SimTime) -> Option<EventId> {
        self.reschedule_at(id, self.now + delay)
    }

    /// Whether a popped queue key still refers to its live event.
    #[inline]
    fn key_is_live(&self, e: EventEntry) -> bool {
        let slot = &self.slots[e.idx as usize];
        slot.seq == e.seq && slot.f.is_some()
    }

    /// Fire a single event if one is pending; returns whether one fired.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(e) = self.queue.pop() else {
                return false;
            };
            if !self.key_is_live(e) {
                continue; // tombstone of a cancelled/rescheduled event
            }
            let f = self.release(e.idx);
            debug_assert!(e.at >= self.now, "calendar went backwards");
            self.now = e.at;
            self.fired += 1;
            f(self);
            return true;
        }
    }

    /// Run until the calendar drains; returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the calendar drains or the clock passes `deadline`,
    /// whichever comes first. Events scheduled after the deadline remain
    /// pending.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(at) = self.peek_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
        let next = self.peek_time();
        self.now = self.now.max(deadline.min(next.unwrap_or(deadline)));
        self.now
    }

    /// Time of the next pending (live) event, if any. Takes `&mut self`
    /// to discard cancelled tombstones and let the wheel reorganize.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let e = self.queue.peek()?;
            if self.key_is_live(e) {
                return Some(e.at);
            }
            self.queue.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Every engine test runs on every backend: the suite itself is a
    /// small differential harness.
    fn on_all_backends(test: impl Fn(Engine)) {
        for kind in QueueKind::ALL {
            test(Engine::with_queue(kind));
        }
    }

    #[test]
    fn fires_in_time_order() {
        on_all_backends(|mut e| {
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            for (t, v) in [(30u64, 3u32), (10, 1), (20, 2)] {
                let log = log.clone();
                e.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(v));
            }
            let end = e.run();
            assert_eq!(*log.borrow(), vec![1, 2, 3]);
            assert_eq!(end, SimTime::from_secs(30));
            assert_eq!(e.events_fired(), 3);
        });
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        on_all_backends(|mut e| {
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            for v in 0..100 {
                let log = log.clone();
                e.schedule_at(SimTime::from_secs(5), move |_| log.borrow_mut().push(v));
            }
            e.run();
            assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn events_can_schedule_events() {
        // A self-rescheduling "process" ticking 5 times.
        fn tick(e: &mut Engine, count: Rc<RefCell<u32>>) {
            *count.borrow_mut() += 1;
            if *count.borrow() < 5 {
                let c = count.clone();
                e.schedule_in(SimTime::from_secs(2), move |e| tick(e, c));
            }
        }
        on_all_backends(|mut e| {
            let count = Rc::new(RefCell::new(0));
            let c = count.clone();
            e.schedule_at(SimTime::ZERO, move |e| tick(e, c));
            let end = e.run();
            assert_eq!(*count.borrow(), 5);
            assert_eq!(end, SimTime::from_secs(8));
        });
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        on_all_backends(|mut e| {
            let seen = Rc::new(RefCell::new(SimTime::ZERO));
            let s = seen.clone();
            e.schedule_at(SimTime::from_secs(10), move |e| {
                // Attempt to schedule 5 seconds "ago".
                let s2 = s.clone();
                e.schedule_at(SimTime::from_secs(5), move |e| *s2.borrow_mut() = e.now());
            });
            e.run();
            assert_eq!(*seen.borrow(), SimTime::from_secs(10));
        });
    }

    #[test]
    fn run_until_stops_at_deadline() {
        on_all_backends(|mut e| {
            let log: Rc<RefCell<Vec<u64>>> = Rc::default();
            for t in [1u64, 2, 3, 4, 5] {
                let log = log.clone();
                e.schedule_at(SimTime::from_secs(t), move |e| {
                    log.borrow_mut().push(e.now().as_micros())
                });
            }
            e.run_until(SimTime::from_secs(3));
            assert_eq!(log.borrow().len(), 3);
            assert_eq!(e.pending(), 2);
            // Remaining events still run afterwards.
            e.run();
            assert_eq!(log.borrow().len(), 5);
        });
    }

    #[test]
    fn step_on_empty_returns_false() {
        on_all_backends(|mut e| {
            assert!(!e.step());
            assert_eq!(e.now(), SimTime::ZERO);
        });
    }

    #[test]
    fn cancel_prevents_firing_and_is_idempotent() {
        on_all_backends(|mut e| {
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            let l1 = log.clone();
            let keep = e.schedule_at(SimTime::from_secs(1), move |_| l1.borrow_mut().push(1));
            let l2 = log.clone();
            let kill = e.schedule_at(SimTime::from_secs(2), move |_| l2.borrow_mut().push(2));
            assert_eq!(e.pending(), 2);
            assert!(e.is_scheduled(kill));
            assert!(e.cancel(kill));
            assert!(!e.cancel(kill), "second cancel is a no-op");
            assert!(!e.is_scheduled(kill));
            assert_eq!(e.pending(), 1);
            let end = e.run();
            assert_eq!(*log.borrow(), vec![1]);
            assert_eq!(end, SimTime::from_secs(1), "cancelled tail never fires");
            assert_eq!(e.events_fired(), 1);
            assert_eq!(e.events_cancelled(), 1);
            assert!(!e.cancel(keep), "fired events cannot be cancelled");
        });
    }

    #[test]
    fn cancelled_slot_reuse_does_not_confuse_stale_handles() {
        on_all_backends(|mut e| {
            let hit = Rc::new(RefCell::new(0u32));
            let h = hit.clone();
            let a = e.schedule_at(SimTime::from_secs(1), move |_| *h.borrow_mut() += 1);
            assert!(e.cancel(a));
            // The freed slot is recycled by the next schedule; the stale
            // handle must not be able to cancel the new occupant.
            let h = hit.clone();
            let _b = e.schedule_at(SimTime::from_secs(1), move |_| *h.borrow_mut() += 10);
            assert!(!e.cancel(a));
            e.run();
            assert_eq!(*hit.borrow(), 10);
        });
    }

    #[test]
    fn reschedule_moves_and_invalidates_old_handle() {
        on_all_backends(|mut e| {
            let log: Rc<RefCell<Vec<(u64, u32)>>> = Rc::default();
            let l = log.clone();
            let id = e.schedule_at(SimTime::from_secs(5), move |e| {
                l.borrow_mut().push((e.now().as_micros(), 0))
            });
            let l = log.clone();
            e.schedule_at(SimTime::from_secs(2), move |e| {
                l.borrow_mut().push((e.now().as_micros(), 1))
            });
            let id2 = e.reschedule_at(id, SimTime::from_secs(1)).unwrap();
            assert!(!e.is_scheduled(id), "old handle is stale");
            assert!(e.is_scheduled(id2));
            assert!(e.reschedule_at(id, SimTime::ZERO).is_none());
            e.run();
            // Moved event fires first, at its new time.
            assert_eq!(
                *log.borrow(),
                vec![(1_000_000, 0), (2_000_000, 1)],
                "on {:?}",
                e.queue_kind()
            );
            assert_eq!(e.pending(), 0);
        });
    }

    #[test]
    fn cancel_from_inside_an_event() {
        on_all_backends(|mut e| {
            let fired = Rc::new(RefCell::new(false));
            let f = fired.clone();
            let victim = e.schedule_at(SimTime::from_secs(10), move |_| *f.borrow_mut() = true);
            e.schedule_at(SimTime::from_secs(1), move |e| {
                assert!(e.cancel(victim));
            });
            let end = e.run();
            assert!(!*fired.borrow());
            assert_eq!(end, SimTime::from_secs(1));
        });
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        on_all_backends(|mut e| {
            let head = e.schedule_at(SimTime::from_secs(1), |_| {});
            e.schedule_at(SimTime::from_secs(2), |_| {});
            assert_eq!(e.peek_time(), Some(SimTime::from_secs(1)));
            assert!(e.cancel(head));
            assert_eq!(e.peek_time(), Some(SimTime::from_secs(2)));
        });
    }
}
