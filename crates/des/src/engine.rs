//! The event calendar.
//!
//! An [`Engine`] owns a priority queue of `(time, sequence, closure)` events.
//! [`Engine::run`] pops the earliest event and fires it; firing may schedule
//! further events. Two events at the same instant fire in the order they
//! were scheduled (the `sequence` tie-break), which — together with the
//! deterministic PRNGs in `ppc-core::rng` — makes whole platform simulations
//! reproducible bit for bit.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

type EventFn = Box<dyn FnOnce(&mut Engine)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    f: EventFn,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest event.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Single-threaded discrete-event engine.
pub struct Engine {
    now: SimTime,
    seq: u64,
    fired: u64,
    calendar: BinaryHeap<Scheduled>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    pub fn new() -> Engine {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            fired: 0,
            calendar: BinaryHeap::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far (useful for runaway detection in tests).
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.calendar.len()
    }

    /// Schedule `f` to fire at absolute time `at`. Scheduling in the past is
    /// a model bug; we clamp to `now` and fire it next, keeping the clock
    /// monotonic.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Engine) + 'static) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.calendar.push(Scheduled {
            at,
            seq,
            f: Box::new(f),
        });
    }

    /// Schedule `f` to fire `delay` after now.
    pub fn schedule_in(&mut self, delay: SimTime, f: impl FnOnce(&mut Engine) + 'static) {
        self.schedule_at(self.now + delay, f);
    }

    /// Fire a single event if one is pending; returns whether one fired.
    pub fn step(&mut self) -> bool {
        match self.calendar.pop() {
            Some(ev) => {
                debug_assert!(ev.at >= self.now, "calendar went backwards");
                self.now = ev.at;
                self.fired += 1;
                (ev.f)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the calendar drains; returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the calendar drains or the clock passes `deadline`,
    /// whichever comes first. Events scheduled after the deadline remain
    /// pending.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(head) = self.calendar.peek() {
            if head.at > deadline {
                break;
            }
            self.step();
        }
        self.now = self
            .now
            .max(deadline.min(self.peek_time().unwrap_or(deadline)));
        self.now
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.calendar.peek().map(|s| s.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn fires_in_time_order() {
        let mut e = Engine::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for (t, v) in [(30u64, 3u32), (10, 1), (20, 2)] {
            let log = log.clone();
            e.schedule_at(SimTime::from_secs(t), move |_| log.borrow_mut().push(v));
        }
        let end = e.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(end, SimTime::from_secs(30));
        assert_eq!(e.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut e = Engine::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for v in 0..100 {
            let log = log.clone();
            e.schedule_at(SimTime::from_secs(5), move |_| log.borrow_mut().push(v));
        }
        e.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        // A self-rescheduling "process" ticking 5 times.
        let mut e = Engine::new();
        let count = Rc::new(RefCell::new(0));
        fn tick(e: &mut Engine, count: Rc<RefCell<u32>>) {
            *count.borrow_mut() += 1;
            if *count.borrow() < 5 {
                let c = count.clone();
                e.schedule_in(SimTime::from_secs(2), move |e| tick(e, c));
            }
        }
        let c = count.clone();
        e.schedule_at(SimTime::ZERO, move |e| tick(e, c));
        let end = e.run();
        assert_eq!(*count.borrow(), 5);
        assert_eq!(end, SimTime::from_secs(8));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut e = Engine::new();
        let seen = Rc::new(RefCell::new(SimTime::ZERO));
        let s = seen.clone();
        e.schedule_at(SimTime::from_secs(10), move |e| {
            // Attempt to schedule 5 seconds "ago".
            let s2 = s.clone();
            e.schedule_at(SimTime::from_secs(5), move |e| *s2.borrow_mut() = e.now());
        });
        e.run();
        assert_eq!(*seen.borrow(), SimTime::from_secs(10));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e = Engine::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for t in [1u64, 2, 3, 4, 5] {
            let log = log.clone();
            e.schedule_at(SimTime::from_secs(t), move |e| {
                log.borrow_mut().push(e.now().as_micros())
            });
        }
        e.run_until(SimTime::from_secs(3));
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(e.pending(), 2);
        // Remaining events still run afterwards.
        e.run();
        assert_eq!(log.borrow().len(), 5);
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut e = Engine::new();
        assert!(!e.step());
        assert_eq!(e.now(), SimTime::ZERO);
    }
}
