//! Queueing resources for platform models.
//!
//! [`FifoServer`] models a station with `c` identical servers and an
//! unbounded FIFO queue (an M/G/c station when fed random arrivals). The
//! simulated platforms use it for CPU worker slots, disk heads, NIC uplinks,
//! and service frontends (queue/storage endpoints).

use crate::engine::Engine;
use crate::stats::TimeWeighted;
use crate::time::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

type DoneFn = Box<dyn FnOnce(&mut Engine)>;

struct Job {
    service: SimTime,
    on_done: DoneFn,
}

struct Inner {
    name: String,
    capacity: usize,
    busy: usize,
    waiting: VecDeque<Job>,
    completed: u64,
    busy_gauge: TimeWeighted,
    queue_gauge: TimeWeighted,
}

/// A `c`-server FIFO queueing station. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct FifoServer {
    inner: Rc<RefCell<Inner>>,
}

impl FifoServer {
    pub fn new(name: impl Into<String>, capacity: usize) -> FifoServer {
        assert!(capacity > 0, "a server needs at least one slot");
        FifoServer {
            inner: Rc::new(RefCell::new(Inner {
                name: name.into(),
                capacity,
                busy: 0,
                waiting: VecDeque::new(),
                completed: 0,
                busy_gauge: TimeWeighted::new(),
                queue_gauge: TimeWeighted::new(),
            })),
        }
    }

    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    pub fn capacity(&self) -> usize {
        self.inner.borrow().capacity
    }

    /// Jobs currently in service.
    pub fn busy(&self) -> usize {
        self.inner.borrow().busy
    }

    /// Jobs waiting for a free slot.
    pub fn queue_len(&self) -> usize {
        self.inner.borrow().waiting.len()
    }

    /// Jobs fully served since construction.
    pub fn completed(&self) -> u64 {
        self.inner.borrow().completed
    }

    /// Mean number of busy servers over simulated time so far.
    pub fn mean_busy(&self, now: SimTime) -> f64 {
        self.inner.borrow().busy_gauge.mean(now)
    }

    /// Utilization in `[0,1]`: mean busy servers over capacity.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let inner = self.inner.borrow();
        inner.busy_gauge.mean(now) / inner.capacity as f64
    }

    /// Mean queue length over simulated time so far.
    pub fn mean_queue(&self, now: SimTime) -> f64 {
        self.inner.borrow().queue_gauge.mean(now)
    }

    /// Submit a job needing `service` time; `on_done` fires at completion.
    /// Starts immediately if a slot is free, otherwise queues FIFO.
    pub fn submit(
        &self,
        engine: &mut Engine,
        service: SimTime,
        on_done: impl FnOnce(&mut Engine) + 'static,
    ) {
        let on_done: DoneFn = Box::new(on_done);
        let start_now = {
            let mut inner = self.inner.borrow_mut();
            let now = engine.now();
            if inner.busy < inner.capacity {
                let busy = inner.busy;
                inner.busy_gauge.record(now, (busy + 1) as f64);
                inner.busy += 1;
                true
            } else {
                let qlen = inner.waiting.len();
                inner.queue_gauge.record(now, (qlen + 1) as f64);
                false
            }
        };
        if start_now {
            self.begin(engine, service, on_done);
        } else {
            self.inner
                .borrow_mut()
                .waiting
                .push_back(Job { service, on_done });
        }
    }

    fn begin(&self, engine: &mut Engine, service: SimTime, on_done: DoneFn) {
        let this = self.clone();
        engine.schedule_in(service, move |e| this.finish(e, on_done));
    }

    fn finish(&self, engine: &mut Engine, on_done: DoneFn) {
        // Release the slot and pull the next waiter *before* invoking the
        // completion callback, so the callback sees a consistent station.
        let next = {
            let mut inner = self.inner.borrow_mut();
            inner.completed += 1;
            let now = engine.now();
            match inner.waiting.pop_front() {
                Some(job) => {
                    let qlen = inner.waiting.len();
                    inner.queue_gauge.record(now, qlen as f64);
                    // busy count unchanged: the slot hands over directly.
                    Some(job)
                }
                None => {
                    let busy = inner.busy;
                    inner.busy_gauge.record(now, (busy - 1) as f64);
                    inner.busy -= 1;
                    None
                }
            }
        };
        if let Some(job) = next {
            self.begin(engine, job.service, job.on_done);
        }
        on_done(engine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_jobs(capacity: usize, jobs: &[(u64, u64)]) -> (Vec<(u64, u64)>, SimTime) {
        // jobs: (arrival_s, service_s); returns (job index, completion time_s).
        let mut e = Engine::new();
        let server = FifoServer::new("cpu", capacity);
        let done: Rc<RefCell<Vec<(u64, u64)>>> = Rc::default();
        for (idx, &(arr, svc)) in jobs.iter().enumerate() {
            let server = server.clone();
            let done = done.clone();
            e.schedule_at(SimTime::from_secs(arr), move |e| {
                let done = done.clone();
                server.submit(e, SimTime::from_secs(svc), move |e| {
                    done.borrow_mut()
                        .push((idx as u64, e.now().as_micros() / 1_000_000));
                });
            });
        }
        let end = e.run();
        let result = done.borrow().clone();
        (result, end)
    }

    #[test]
    fn single_server_serializes() {
        // Two jobs arriving together on one server finish at 5 and 10.
        let (done, end) = run_jobs(1, &[(0, 5), (0, 5)]);
        assert_eq!(done, vec![(0, 5), (1, 10)]);
        assert_eq!(end, SimTime::from_secs(10));
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let (done, end) = run_jobs(2, &[(0, 5), (0, 5)]);
        assert_eq!(done, vec![(0, 5), (1, 5)]);
        assert_eq!(end, SimTime::from_secs(5));
    }

    #[test]
    fn fifo_order_respected() {
        // Three jobs, one server: later-submitted short job still waits.
        let (done, _) = run_jobs(1, &[(0, 10), (1, 1), (2, 1)]);
        assert_eq!(done, vec![(0, 10), (1, 11), (2, 12)]);
    }

    #[test]
    fn counts_and_gauges() {
        let mut e = Engine::new();
        let s = FifoServer::new("disk", 1);
        let s2 = s.clone();
        e.schedule_at(SimTime::ZERO, move |e| {
            s2.submit(e, SimTime::from_secs(10), |_| {});
        });
        let end = e.run();
        assert_eq!(s.completed(), 1);
        assert_eq!(s.busy(), 0);
        assert_eq!(s.queue_len(), 0);
        // Busy for the whole run.
        assert!((s.utilization(end) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_half() {
        let mut e = Engine::new();
        let s = FifoServer::new("nic", 1);
        let s2 = s.clone();
        e.schedule_at(SimTime::ZERO, move |e| {
            s2.submit(e, SimTime::from_secs(5), |_| {});
        });
        e.run();
        // Advance an idle tail to 10s by scheduling a no-op.
        e.schedule_at(SimTime::from_secs(10), |_| {});
        let end = e.run();
        assert!((s.utilization(end) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mean_queue_tracks_waiters() {
        // One server, two simultaneous 10s jobs: one waits 10s of a 20s run.
        let (_, end) = {
            let mut e = Engine::new();
            let s = FifoServer::new("q", 1);
            let s1 = s.clone();
            e.schedule_at(SimTime::ZERO, move |e| {
                s1.submit(e, SimTime::from_secs(10), |_| {});
            });
            let s2 = s.clone();
            e.schedule_at(SimTime::ZERO, move |e| {
                s2.submit(e, SimTime::from_secs(10), |_| {});
            });
            let end = e.run();
            assert!((s.mean_queue(end) - 0.5).abs() < 1e-9);
            ((), end)
        };
        assert_eq!(end, SimTime::from_secs(20));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = FifoServer::new("bad", 0);
    }
}
