//! Simulated time as integer microseconds.
//!
//! Floating-point clocks accumulate rounding differences that break event
//! ordering reproducibility; a `u64` microsecond counter gives ~584,000 years
//! of range, exact comparison, and cheap arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, microseconds since the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us)
    }

    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// From fractional seconds, rounding to the nearest microsecond.
    /// Negative and non-finite durations clamp to zero: the models feed
    /// computed service times here, and a model that yields `-1e-18` due to
    /// float cancellation should schedule "now", not panic.
    pub fn from_secs_f64(s: f64) -> SimTime {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e6).round() as u64)
    }

    pub const fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration until `later`; saturates at zero if `later` is earlier.
    pub fn until(self, later: SimTime) -> SimTime {
        SimTime(later.0.saturating_sub(self.0))
    }

    /// Number of whole billing hours covering this duration (ceiling),
    /// minimum 1 when any time at all has passed — matching the paper's
    /// "instances are billed hourly" rule.
    pub fn billed_hours(self) -> u64 {
        if self.0 == 0 {
            0
        } else {
            self.0.div_ceil(3_600_000_000)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    /// Saturating: `from_secs_f64` clamps huge horizons to `u64::MAX` µs,
    /// and "the far end of time plus a delay" must stay there rather than
    /// wrap (or panic in debug builds).
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating: simulated durations never go negative.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert!((SimTime::from_micros(250_000).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::ZERO);
    }

    /// Float cancellation in the models can yield residues like
    /// `-1e-18` or `+1e-18` for a delay that is mathematically zero.
    /// Both sides of the epsilon must land exactly on "now".
    #[test]
    fn epsilon_residues_schedule_now() {
        assert_eq!(SimTime::from_secs_f64(-1e-18), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e-18), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(-f64::EPSILON), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(4.9e-7), SimTime::ZERO, "rounds down");
        assert_eq!(SimTime::from_secs_f64(5.1e-7).as_micros(), 1);
        let now = SimTime::from_secs(7);
        assert_eq!(now + SimTime::from_secs_f64(-1e-18), now);
    }

    /// `as u64` saturates float casts, so absurd horizons clamp to
    /// `u64::MAX` µs — and arithmetic on them must saturate too instead of
    /// overflowing (debug builds would panic on wrapping `+`).
    #[test]
    fn huge_horizons_saturate_instead_of_overflowing() {
        let far = SimTime::from_secs_f64(1e300);
        assert_eq!(far.as_micros(), u64::MAX);
        assert_eq!(far + SimTime::from_secs(1), far, "Add saturates");
        let mut t = far;
        t += SimTime::from_micros(1);
        assert_eq!(t, far, "AddAssign saturates");
        assert_eq!(far - SimTime::ZERO, far);
        assert_eq!(far.until(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn saturating_sub() {
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(2), SimTime::ZERO);
        assert_eq!(
            SimTime::from_secs(5) - SimTime::from_secs(2),
            SimTime::from_secs(3)
        );
    }

    #[test]
    fn billed_hours_ceiling() {
        assert_eq!(SimTime::ZERO.billed_hours(), 0);
        assert_eq!(SimTime::from_secs(1).billed_hours(), 1);
        assert_eq!(SimTime::from_secs(3600).billed_hours(), 1);
        assert_eq!(SimTime::from_secs(3601).billed_hours(), 2);
        assert_eq!(SimTime::from_secs(7200).billed_hours(), 2);
    }

    #[test]
    fn until_saturates() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(4);
        assert_eq!(b.until(a), SimTime::from_secs(6));
        assert_eq!(a.until(b), SimTime::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
