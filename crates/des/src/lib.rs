//! # ppc-des — deterministic discrete-event simulation engine
//!
//! The paper's experiments run on fleets we cannot rent at 2010 prices —
//! 16 High-CPU-Extra-Large EC2 instances, 128 Azure Small instances, a
//! 32-node × 8-core bare-metal cluster. This crate provides the
//! discrete-event engine on which `ppc-classic`, `ppc-mapreduce` and
//! `ppc-dryad` build their *simulated* runtimes, so those fleets can be
//! modeled on a laptop in virtual time.
//!
//! Design:
//!
//! * [`SimTime`] — integer microseconds; total order with no float drift.
//! * [`Engine`] — an event calendar firing `FnOnce(&mut Engine)` closures
//!   over a pluggable [`queue::EventQueue`] backend ([`QueueKind`]: binary
//!   heap oracle, hierarchical timing wheel, or calendar queue — all with
//!   the identical `(time, sequence)` pop order, so the backend choice is
//!   invisible to results). Events are slab-stored behind stable
//!   [`EventId`] handles with O(1) cancellation and rescheduling.
//! * [`resource::FifoServer`] — a `c`-server FIFO queue, the building block
//!   for modeled CPUs, disks, NICs, and service frontends.
//! * [`stats`] — counters and time-weighted gauges for utilization curves.
//!
//! Shared mutable model state lives in `Rc<RefCell<_>>` captured by event
//! closures — the engine is strictly single-threaded, which is what makes
//! determinism cheap (see *Rust Atomics and Locks* on why sharing across
//! threads would demand much heavier machinery for zero benefit here).

pub mod engine;
pub mod queue;
pub mod resource;
pub mod stats;
pub mod time;

pub use engine::{Engine, EventId};
pub use queue::{EventQueue, QueueKind};
pub use resource::FifoServer;
pub use time::SimTime;
