//! Simulation statistics: counters and time-weighted gauges.

use crate::time::SimTime;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    pub fn new() -> Counter {
        Counter(0)
    }

    pub fn incr(&mut self) {
        self.0 += 1;
    }

    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    pub fn get(self) -> u64 {
        self.0
    }
}

/// A gauge whose *time-weighted* mean is the statistic of interest —
/// e.g. "mean number of busy cores" integrates busy-level over time.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    /// Integral of value dt, in value·seconds.
    area: f64,
    samples: u64,
}

impl TimeWeighted {
    pub fn new() -> TimeWeighted {
        TimeWeighted::default()
    }

    /// Record that the gauge changed to `value` at time `now`. Times must be
    /// non-decreasing (the DES engine guarantees this for model code).
    pub fn record(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_time, "gauge time went backwards");
        self.area += self.last_value * self.last_time.until(now).as_secs_f64();
        self.last_time = now;
        self.last_value = value;
        self.samples += 1;
    }

    /// Current (most recently recorded) value.
    pub fn current(&self) -> f64 {
        self.last_value
    }

    /// Time-weighted mean over `[0, now]`.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        let area = self.area + self.last_value * self.last_time.until(now).as_secs_f64();
        area / total
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_step_function() {
        // value 0 on [0,10), 4 on [10,20), 2 on [20,40):
        // mean over 40s = (0*10 + 4*10 + 2*20)/40 = 2.0
        let mut g = TimeWeighted::new();
        g.record(SimTime::from_secs(10), 4.0);
        g.record(SimTime::from_secs(20), 2.0);
        assert!((g.mean(SimTime::from_secs(40)) - 2.0).abs() < 1e-12);
        assert_eq!(g.current(), 2.0);
        assert_eq!(g.samples(), 2);
    }

    #[test]
    fn mean_at_time_zero_is_current() {
        let g = TimeWeighted::new();
        assert_eq!(g.mean(SimTime::ZERO), 0.0);
    }

    #[test]
    fn mean_extends_last_value_to_now() {
        let mut g = TimeWeighted::new();
        g.record(SimTime::ZERO, 3.0);
        assert!((g.mean(SimTime::from_secs(7)) - 3.0).abs() < 1e-12);
    }
}
