//! Pluggable event-queue backends for the [`Engine`](crate::Engine).
//!
//! The engine stores event payloads (boxed closures) in a slab and pushes
//! only light `(time, sequence, slot)` [`EventEntry`] keys into a priority
//! queue. Three interchangeable backends implement [`EventQueue`]:
//!
//! * [`BinaryHeapQueue`] — the original binary heap. Simple and obviously
//!   correct; kept as the **reference oracle** the differential test
//!   harness checks the others against.
//! * [`TimingWheelQueue`] — a hierarchical timing wheel (8 levels × 64
//!   slots, 1 µs base granularity): O(1) insert, batched near-horizon
//!   pops. The default hot path for the dense timer churn the paradigm
//!   sims generate (visibility timeouts, hedge checks, autoscaler ticks).
//! * [`CalendarQueue`] — a Brown-style calendar queue whose bucket width
//!   adapts to the live event spacing; the fallback for workloads
//!   dominated by far-future timers spread over huge horizons.
//!
//! All three produce the **exact same pop order**: ascending `(time,
//! sequence)`, i.e. time order with insertion-order FIFO tie-breaks. That
//! contract is what keeps whole platform simulations bit-for-bit
//! reproducible regardless of backend, and is pinned by
//! `tests/des_differential.rs` at the workspace root.

mod calendar;
mod heap;
mod wheel;

pub use calendar::CalendarQueue;
pub use heap::BinaryHeapQueue;
pub use wheel::TimingWheelQueue;

use crate::time::SimTime;

/// The key a queue orders: event time, global insertion sequence (the
/// FIFO tie-break), and the slab slot holding the event's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventEntry {
    pub at: SimTime,
    pub seq: u64,
    pub idx: u32,
}

/// A priority queue of [`EventEntry`] keys popped in ascending
/// `(at, seq)` order.
///
/// Implementations never interpret `idx` and never drop entries on their
/// own: cancellation is the engine's job (it marks the slab slot dead and
/// skips the stale key when it surfaces), which is what makes `cancel`
/// O(1) with no queue scans on every backend.
///
/// `peek` takes `&mut self` because backends may reorganize internally
/// (the wheel cascades higher-level slots down) to learn the exact head.
pub trait EventQueue {
    /// Backend name, for reports and diagnostics.
    fn name(&self) -> &'static str;

    /// Insert a key. `at` is never earlier than the last popped *live*
    /// key's time, but it may be earlier than stale tombstones the caller
    /// has already popped and discarded — backends must order such late
    /// inserts correctly against their remaining contents. `seq` is
    /// strictly greater than every previously pushed sequence.
    fn push(&mut self, e: EventEntry);

    /// Remove and return the smallest `(at, seq)` key.
    fn pop(&mut self) -> Option<EventEntry>;

    /// The smallest `(at, seq)` key without removing it.
    fn peek(&mut self) -> Option<EventEntry>;

    /// Keys currently stored (including keys whose slab slot the engine
    /// has since cancelled — those are skipped at pop time).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Which [`EventQueue`] backend an [`Engine`](crate::Engine) runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// The reference binary-heap oracle.
    BinaryHeap,
    /// Hierarchical timing wheel — the fast default.
    #[default]
    TimingWheel,
    /// Adaptive calendar queue — far-future timer fallback.
    Calendar,
}

impl QueueKind {
    /// Every backend, oracle first (the differential harness iterates this).
    pub const ALL: [QueueKind; 3] = [
        QueueKind::BinaryHeap,
        QueueKind::TimingWheel,
        QueueKind::Calendar,
    ];

    pub fn name(self) -> &'static str {
        match self {
            QueueKind::BinaryHeap => "heap",
            QueueKind::TimingWheel => "wheel",
            QueueKind::Calendar => "calendar",
        }
    }

    /// The process-wide default: `PPC_DES_QUEUE` (`heap` | `wheel` |
    /// `calendar`) when set, else the timing wheel. Read once and cached;
    /// CI sweeps the variable to run entire suites on each backend.
    pub fn from_env() -> QueueKind {
        use std::sync::OnceLock;
        static DEFAULT: OnceLock<QueueKind> = OnceLock::new();
        *DEFAULT.get_or_init(|| match std::env::var("PPC_DES_QUEUE").as_deref() {
            Ok("heap") => QueueKind::BinaryHeap,
            Ok("calendar") => QueueKind::Calendar,
            Ok("wheel") | Err(_) => QueueKind::TimingWheel,
            Ok(other) => panic!("PPC_DES_QUEUE={other:?}: expected heap|wheel|calendar"),
        })
    }

    /// A fresh backend of this kind behind the trait, for code that wants
    /// dynamic dispatch (the differential harness, ad-hoc tools).
    pub fn boxed(self) -> Box<dyn EventQueue> {
        match self {
            QueueKind::BinaryHeap => Box::new(BinaryHeapQueue::new()),
            QueueKind::TimingWheel => Box::new(TimingWheelQueue::new()),
            QueueKind::Calendar => Box::new(CalendarQueue::new()),
        }
    }
}

/// Enum-dispatched backend the engine embeds — keeps the hot path free of
/// virtual calls while staying runtime-selectable.
pub enum QueueImpl {
    Heap(BinaryHeapQueue),
    Wheel(TimingWheelQueue),
    Calendar(CalendarQueue),
}

impl QueueImpl {
    pub fn new(kind: QueueKind) -> QueueImpl {
        match kind {
            QueueKind::BinaryHeap => QueueImpl::Heap(BinaryHeapQueue::new()),
            QueueKind::TimingWheel => QueueImpl::Wheel(TimingWheelQueue::new()),
            QueueKind::Calendar => QueueImpl::Calendar(CalendarQueue::new()),
        }
    }

    pub fn kind(&self) -> QueueKind {
        match self {
            QueueImpl::Heap(_) => QueueKind::BinaryHeap,
            QueueImpl::Wheel(_) => QueueKind::TimingWheel,
            QueueImpl::Calendar(_) => QueueKind::Calendar,
        }
    }
}

impl EventQueue for QueueImpl {
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    #[inline]
    fn push(&mut self, e: EventEntry) {
        match self {
            QueueImpl::Heap(q) => q.push(e),
            QueueImpl::Wheel(q) => q.push(e),
            QueueImpl::Calendar(q) => q.push(e),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<EventEntry> {
        match self {
            QueueImpl::Heap(q) => q.pop(),
            QueueImpl::Wheel(q) => q.pop(),
            QueueImpl::Calendar(q) => q.pop(),
        }
    }

    #[inline]
    fn peek(&mut self) -> Option<EventEntry> {
        match self {
            QueueImpl::Heap(q) => q.peek(),
            QueueImpl::Wheel(q) => q.peek(),
            QueueImpl::Calendar(q) => q.peek(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            QueueImpl::Heap(q) => EventQueue::len(q),
            QueueImpl::Wheel(q) => EventQueue::len(q),
            QueueImpl::Calendar(q) => EventQueue::len(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, seq: u64) -> EventEntry {
        EventEntry {
            at: SimTime::from_micros(at),
            seq,
            idx: seq as u32,
        }
    }

    /// Every backend drains an arbitrary push set in (at, seq) order.
    #[test]
    fn backends_agree_on_sorted_drain() {
        let pushes = [
            entry(50, 0),
            entry(10, 1),
            entry(50, 2),
            entry(0, 3),
            entry(1_000_000_000, 4), // ~17 sim-minutes out
            entry(10, 5),
            entry(u64::MAX, 6), // saturated far horizon
            entry(0, 7),
        ];
        let mut want: Vec<EventEntry> = pushes.to_vec();
        want.sort();
        for kind in QueueKind::ALL {
            let mut q = kind.boxed();
            for e in pushes {
                q.push(e);
            }
            assert_eq!(q.len(), pushes.len(), "{}", kind.name());
            let mut got = Vec::new();
            while let Some(e) = q.pop() {
                got.push(e);
            }
            assert_eq!(got, want, "{} pop order", kind.name());
            assert!(q.is_empty(), "{}", kind.name());
        }
    }

    /// Interleaved push/pop: pushes at or after the last popped time keep
    /// ordering on every backend.
    #[test]
    fn backends_agree_under_interleaving() {
        for kind in QueueKind::ALL {
            let mut q = kind.boxed();
            q.push(entry(5, 0));
            q.push(entry(7, 1));
            assert_eq!(q.peek().unwrap().seq, 0, "{}", kind.name());
            assert_eq!(q.pop().unwrap().seq, 0);
            // Now at t=5: schedule two more, one at "now", one far out.
            q.push(entry(5, 2));
            q.push(entry(100_000, 3));
            assert_eq!(q.pop().unwrap().seq, 2, "{} same-time push", kind.name());
            assert_eq!(q.pop().unwrap().seq, 1);
            assert_eq!(q.pop().unwrap().seq, 3);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn env_default_is_wheel() {
        // In the test environment PPC_DES_QUEUE is normally unset; either
        // way from_env must resolve to *some* backend without panicking.
        let k = QueueKind::from_env();
        assert!(QueueKind::ALL.contains(&k));
    }

    #[test]
    fn kind_names_round_trip() {
        for kind in QueueKind::ALL {
            assert_eq!(QueueImpl::new(kind).kind(), kind);
            assert_eq!(kind.boxed().name(), kind.name());
        }
    }
}
