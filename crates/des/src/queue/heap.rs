//! The original binary-heap backend — the reference oracle.

use super::{EventEntry, EventQueue};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// `BinaryHeap`-backed event queue: O(log n) push/pop, trivially correct
/// ordering via [`EventEntry`]'s derived `(at, seq)` order. The
/// differential harness treats this backend as ground truth.
#[derive(Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<Reverse<EventEntry>>,
}

impl BinaryHeapQueue {
    pub fn new() -> BinaryHeapQueue {
        BinaryHeapQueue::default()
    }
}

impl EventQueue for BinaryHeapQueue {
    fn name(&self) -> &'static str {
        "heap"
    }

    #[inline]
    fn push(&mut self, e: EventEntry) {
        self.heap.push(Reverse(e));
    }

    #[inline]
    fn pop(&mut self) -> Option<EventEntry> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    #[inline]
    fn peek(&mut self) -> Option<EventEntry> {
        self.heap.peek().map(|&Reverse(e)| e)
    }

    #[inline]
    fn len(&self) -> usize {
        self.heap.len()
    }
}
