//! Hierarchical timing wheel — the dense near-horizon hot path.
//!
//! Eight levels of 64 slots each. Level `l` buckets events by bits
//! `[6l, 6l+6)` of their absolute microsecond timestamp, so level 0 has
//! 1 µs granularity over the next 64 µs, level 1 covers the next ~4 ms in
//! 64 µs slots, … and level 7 reaches `2^48` µs (~8.9 simulated years).
//! Anything further sits in a small overflow heap until the wheel's clock
//! brings it within the horizon.
//!
//! * `push` is O(1): compute the level from the delta's magnitude, append
//!   to the slot's vector, set an occupancy bit.
//! * `pop` finds the earliest occupied slot via per-level 64-bit occupancy
//!   bitmaps (one `trailing_zeros` per level), cascades higher-level slots
//!   down as their windows arrive, and drains level-0 slots as whole
//!   batches sorted by sequence number — preserving the global
//!   `(time, seq)` pop order the oracle defines.
//!
//! The known subtlety: when a level-0 slot and a higher-level slot carry
//! the same candidate time, the higher level must cascade *first* (its
//! window may contain events at that exact time with smaller sequence
//! numbers). `refill` scans levels top-down and keeps the higher level on
//! ties for exactly this reason; `tests/des_differential.rs` hammers the
//! case with randomized traces.

use super::{EventEntry, EventQueue};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const BITS: u32 = 6;
const SLOTS: usize = 1 << BITS; // 64 slots per level
const LEVELS: usize = 8;
/// Deltas at or past this overflow to the far-future heap (2^48 µs).
const HORIZON: u64 = 1 << (BITS * LEVELS as u32);

pub struct TimingWheelQueue {
    /// The wheel's clock: time of the last drained batch, µs.
    now: u64,
    /// Per-level slot-occupancy bitmaps.
    occupied: [u64; LEVELS],
    /// `LEVELS * SLOTS` buckets, row-major by level.
    buckets: Vec<Vec<EventEntry>>,
    /// The level-0 batch currently draining: same timestamp, seq-sorted.
    batch: VecDeque<EventEntry>,
    /// Events beyond the wheel horizon, by `(at, seq)`.
    overflow: BinaryHeap<Reverse<EventEntry>>,
    len: usize,
}

impl Default for TimingWheelQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheelQueue {
    pub fn new() -> TimingWheelQueue {
        TimingWheelQueue {
            now: 0,
            occupied: [0; LEVELS],
            buckets: std::iter::repeat_with(Vec::new)
                .take(LEVELS * SLOTS)
                .collect(),
            batch: VecDeque::new(),
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    /// Place an entry into its wheel slot (or the overflow heap).
    fn insert(&mut self, e: EventEntry) {
        let at = e.at.as_micros();
        if at < self.now {
            // Draining stale tombstones can run the wheel clock ahead of
            // the engine clock, so a later push may land "in the past".
            // Everything still in the slots is at or after `now`, so the
            // ordered position for a late insert is inside the due batch.
            let pos = self
                .batch
                .partition_point(|b| (b.at, b.seq) <= (e.at, e.seq));
            self.batch.insert(pos, e);
            return;
        }
        let delta = at - self.now;
        if delta >= HORIZON {
            self.overflow.push(Reverse(e));
            return;
        }
        // Highest set bit of the delta picks the level (|1 keeps delta=0
        // on level 0); the timestamp's own bits pick the slot.
        let level = ((63 - (delta | 1).leading_zeros()) / BITS) as usize;
        let shift = BITS * level as u32;
        let slot = ((at >> shift) & (SLOTS as u64 - 1)) as usize;
        self.buckets[level * SLOTS + slot].push(e);
        self.occupied[level] |= 1 << slot;
    }

    /// Earliest occupied slot of `level` and the start time of its
    /// window, relative to the wheel clock's current rotation.
    fn candidate(&self, level: usize) -> Option<(u64, usize)> {
        let occ = self.occupied[level];
        if occ == 0 {
            return None;
        }
        let shift = BITS * level as u32;
        let cursor = ((self.now >> shift) & (SLOTS as u64 - 1)) as u32;
        let range = 1u64 << (shift + BITS);
        let base = self.now & !(range - 1);
        let mut ahead = occ & (u64::MAX << cursor);
        // An occupied cursor slot is ambiguous above level 0: it holds
        // either this rotation's window or entries exactly one rotation
        // out that hash to the same slot (rotations never mix in one
        // bucket). Only the entries can tell which; draining a
        // next-rotation bucket a rotation early would cascade it straight
        // back into the same slot, forever.
        if level > 0 && ahead & (1 << cursor) != 0 {
            let sample = &self.buckets[level * SLOTS + cursor as usize][0];
            if sample.at.as_micros() >= base.saturating_add(range) {
                ahead &= !(1 << cursor);
            }
        }
        if ahead != 0 {
            // This rotation, at or past the cursor.
            let slot = ahead.trailing_zeros() as u64;
            Some((base.saturating_add(slot << shift), slot as usize))
        } else {
            // Wrapped: the earliest occupied slot of the next rotation.
            let slot = occ.trailing_zeros() as u64;
            Some((
                base.saturating_add(range).saturating_add(slot << shift),
                slot as usize,
            ))
        }
    }

    /// Ensure `batch` holds the next due timestamp's events (seq-sorted).
    /// Returns false when the queue is completely empty.
    fn refill(&mut self) -> bool {
        if !self.batch.is_empty() {
            return true;
        }
        loop {
            // Far-future events that have come within the horizon re-enter
            // the wheel. One comparison per pop in the common case.
            while let Some(&Reverse(e)) = self.overflow.peek() {
                if e.at.as_micros().saturating_sub(self.now) < HORIZON {
                    self.overflow.pop();
                    self.insert(e);
                } else {
                    break;
                }
            }
            // Earliest window across levels; scanning top-down with a
            // strict `<` keeps the *higher* level on ties so its events
            // cascade down before the lower level's batch fires.
            let mut best: Option<(u64, usize, usize)> = None;
            for level in (0..LEVELS).rev() {
                if let Some((t, slot)) = self.candidate(level) {
                    if best.is_none_or(|(bt, _, _)| t < bt) {
                        best = Some((t, level, slot));
                    }
                }
            }
            let Some((t, level, slot)) = best else {
                match self.overflow.peek() {
                    // Wheel empty: jump the clock to the overflow head so
                    // the drain loop above can admit it.
                    Some(&Reverse(e)) => {
                        self.now = e.at.as_micros();
                        continue;
                    }
                    None => return false,
                }
            };
            let bucket = std::mem::take(&mut self.buckets[level * SLOTS + slot]);
            self.occupied[level] &= !(1u64 << slot);
            if level == 0 {
                // A level-0 slot holds exactly one microsecond's events.
                self.now = t;
                debug_assert!(bucket.iter().all(|e| e.at.as_micros() == t));
                let mut batch = bucket;
                batch.sort_unstable_by_key(|e| e.seq);
                self.batch = batch.into();
                return true;
            }
            // Cascade: the window has arrived; every event lands at a
            // strictly lower level relative to the advanced clock.
            self.now = self.now.max(t);
            for e in bucket {
                self.insert(e);
            }
        }
    }
}

impl EventQueue for TimingWheelQueue {
    fn name(&self) -> &'static str {
        "wheel"
    }

    #[inline]
    fn push(&mut self, e: EventEntry) {
        self.insert(e);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<EventEntry> {
        if self.refill() {
            self.len -= 1;
            self.batch.pop_front()
        } else {
            None
        }
    }

    fn peek(&mut self) -> Option<EventEntry> {
        if self.refill() {
            self.batch.front().copied()
        } else {
            None
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn e(at: u64, seq: u64) -> EventEntry {
        EventEntry {
            at: SimTime::from_micros(at),
            seq,
            idx: 0,
        }
    }

    /// A same-time pair split across levels: the early-scheduled event
    /// lands on a high level, the late-scheduled one directly on level 0.
    /// FIFO order must still hold when they meet.
    #[test]
    fn cascade_preserves_fifo_at_equal_times() {
        let mut q = TimingWheelQueue::new();
        q.push(e(10_000, 0)); // level 1 from t=0
        q.push(e(5, 1));
        assert_eq!(q.pop().unwrap().seq, 1);
        // Now the wheel clock is at 5; a second event for 10_000 joins the
        // first, and both must survive the multi-level cascade in order.
        q.push(e(10_000, 2));
        assert_eq!(q.pop().unwrap(), e(10_000, 0), "cascaded event first");
        assert_eq!(q.pop().unwrap(), e(10_000, 2));
        assert!(q.pop().is_none());
    }

    /// Regression: an entry exactly one rotation ahead hashes to the
    /// cursor slot of its level. Misreading it as "this rotation" made
    /// the cascade reinsert it into the same slot forever.
    #[test]
    fn full_rotation_ahead_entry_does_not_livelock() {
        let mut q = TimingWheelQueue::new();
        q.push(e(63, 0));
        assert_eq!(q.pop().unwrap().seq, 0); // clock now at 63
                                             // delta = 4033 → level 1; slot (4096 >> 6) & 63 == 0 == cursor.
        q.push(e(4096, 1));
        assert_eq!(q.pop().unwrap(), e(4096, 1));
        assert!(q.pop().is_none());
    }

    /// The inverse ambiguity: a cursor slot whose window genuinely is
    /// this rotation (reached by a cascade landing exactly on its start)
    /// must still drain now, not a rotation late.
    #[test]
    fn cursor_slot_this_rotation_drains_now() {
        let mut q = TimingWheelQueue::new();
        // From t=0: delta 64 → level 1, slot 1; delta 65 same slot.
        q.push(e(64, 0));
        q.push(e(65, 1));
        q.push(e(70, 2));
        assert_eq!(q.pop().unwrap(), e(64, 0));
        // Clock is 64: level-1 slot 1 is now the cursor slot but holds
        // this rotation's remaining entries.
        q.push(e(70, 3));
        assert_eq!(q.pop().unwrap(), e(65, 1));
        assert_eq!(q.pop().unwrap(), e(70, 2));
        assert_eq!(q.pop().unwrap(), e(70, 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_beyond_horizon_still_pops_in_order() {
        let mut q = TimingWheelQueue::new();
        q.push(e(HORIZON * 3, 0));
        q.push(e(7, 1));
        q.push(e(u64::MAX, 2));
        q.push(e(HORIZON * 3, 3));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.pop().unwrap().seq, 3);
        assert_eq!(q.pop().unwrap().seq, 2);
        assert!(q.pop().is_none());
        assert_eq!(EventQueue::len(&q), 0);
    }

    #[test]
    fn peek_is_stable_and_non_destructive() {
        let mut q = TimingWheelQueue::new();
        q.push(e(100, 0));
        q.push(e(50, 1));
        assert_eq!(q.peek().unwrap(), e(50, 1));
        assert_eq!(q.peek().unwrap(), e(50, 1));
        assert_eq!(EventQueue::len(&q), 2);
        assert_eq!(q.pop().unwrap(), e(50, 1));
        assert_eq!(q.peek().unwrap(), e(100, 0));
    }
}
