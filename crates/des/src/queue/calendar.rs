//! Adaptive calendar queue — the far-future timer fallback.
//!
//! A Brown-style calendar: `B` power-of-two buckets, each spanning a
//! power-of-two `width` of microseconds; an event at time `t` hashes to
//! bucket `(t / width) mod B`, so one "year" is `B * width` µs and each
//! bucket holds one "day" per year. `pop` walks at most one year of days
//! from the current time looking for an event due in the bucket's current
//! window, falling back to a direct minimum scan when a whole year is
//! empty (the classic sparse-calendar escape hatch). The bucket count
//! doubles/halves with the live population and the width re-estimates
//! from the observed event span, keeping days at O(1) expected occupancy.
//!
//! Within a window, the due event is chosen by minimum `(at, seq)` — the
//! same total order as every other backend, so pop order is identical.

use super::{EventEntry, EventQueue};

const MIN_BUCKETS: usize = 32;
/// Widths are clamped to 2^40 µs (~13 sim-days) so a year stays finite
/// even when resize sees a pathological span.
const MAX_WIDTH_BITS: u32 = 40;

pub struct CalendarQueue {
    buckets: Vec<Vec<EventEntry>>,
    /// Bucket width, as a power of two: `1 << width_bits` µs per day.
    width_bits: u32,
    /// Search anchor: the last popped timestamp (pops are monotone).
    cur_time: u64,
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    pub fn new() -> CalendarQueue {
        CalendarQueue {
            buckets: std::iter::repeat_with(Vec::new).take(MIN_BUCKETS).collect(),
            width_bits: 16, // ~65 ms days until the first resize adapts
            cur_time: 0,
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.buckets.len() - 1
    }

    #[inline]
    fn day_of(&self, at: u64) -> u64 {
        at >> self.width_bits
    }

    fn place(&mut self, e: EventEntry) {
        let b = (self.day_of(e.at.as_micros()) as usize) & self.mask();
        self.buckets[b].push(e);
    }

    /// Locate the next-due entry: `(bucket, position)`.
    fn find(&self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        let start_day = self.day_of(self.cur_time);
        for step in 0..self.buckets.len() as u64 {
            // Saturating keeps the walk sane at the far end of u64 time;
            // the global-min fallback below stays exact regardless.
            let day = start_day.saturating_add(step);
            let b = (day as usize) & self.mask();
            let mut best: Option<(usize, EventEntry)> = None;
            for (i, e) in self.buckets[b].iter().enumerate() {
                // Due this day (events before `cur_time` cannot exist).
                if self.day_of(e.at.as_micros()) == day
                    && best.is_none_or(|(_, be)| (e.at, e.seq) < (be.at, be.seq))
                {
                    best = Some((i, *e));
                }
            }
            if let Some((i, _)) = best {
                return Some((b, i));
            }
        }
        // A whole year with nothing due: direct search for the global min.
        let mut best: Option<(usize, usize, EventEntry)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                if best.is_none_or(|(_, _, be)| (e.at, e.seq) < (be.at, be.seq)) {
                    best = Some((b, i, *e));
                }
            }
        }
        best.map(|(b, i, _)| (b, i))
    }

    /// Rebuild with `nb` buckets and a width matched to the live spacing.
    fn resize(&mut self, nb: usize) {
        let entries: Vec<EventEntry> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for e in &entries {
            lo = lo.min(e.at.as_micros());
            hi = hi.max(e.at.as_micros());
        }
        // Ideal day width ≈ span / population, rounded down to a power of
        // two so day arithmetic stays shift-and-mask.
        let width = (hi.saturating_sub(lo) / entries.len().max(1) as u64).max(1);
        self.width_bits = (63 - width.leading_zeros()).min(MAX_WIDTH_BITS);
        self.buckets = std::iter::repeat_with(Vec::new).take(nb).collect();
        for e in entries {
            self.place(e);
        }
    }
}

impl EventQueue for CalendarQueue {
    fn name(&self) -> &'static str {
        "calendar"
    }

    fn push(&mut self, e: EventEntry) {
        // Stale-tombstone pops can advance `cur_time` past a later
        // legitimate push; rewind the search anchor so the day walk
        // starts early enough to see the new entry.
        self.cur_time = self.cur_time.min(e.at.as_micros());
        self.place(e);
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    fn pop(&mut self) -> Option<EventEntry> {
        let (b, i) = self.find()?;
        let e = self.buckets[b].swap_remove(i);
        self.len -= 1;
        self.cur_time = e.at.as_micros();
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        Some(e)
    }

    fn peek(&mut self) -> Option<EventEntry> {
        let (b, i) = self.find()?;
        Some(self.buckets[b][i])
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn e(at: u64, seq: u64) -> EventEntry {
        EventEntry {
            at: SimTime::from_micros(at),
            seq,
            idx: 0,
        }
    }

    #[test]
    fn sparse_year_falls_back_to_global_min() {
        let mut q = CalendarQueue::new();
        // One event a full default-year away plus change: the day walk
        // exhausts a year and the direct-search path must find it.
        q.push(e((1u64 << 16) * MIN_BUCKETS as u64 * 7 + 3, 0));
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn resize_preserves_order() {
        let mut q = CalendarQueue::new();
        // Enough pushes to force several doublings, spread over a wide
        // span so the width estimate actually changes.
        let n = 512u64;
        for s in 0..n {
            q.push(e((s * 7919) % 1_000_000_000, s));
        }
        let mut got = Vec::new();
        while let Some(x) = q.pop() {
            got.push(x);
        }
        let mut want: Vec<EventEntry> = (0..n).map(|s| e((s * 7919) % 1_000_000_000, s)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn equal_times_pop_in_seq_order() {
        let mut q = CalendarQueue::new();
        for s in [5u64, 3, 9, 0] {
            q.push(e(777, s));
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|x| x.seq).collect();
        assert_eq!(got, vec![0, 3, 5, 9], "ascending seq at equal times");
    }
}
