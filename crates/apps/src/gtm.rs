//! The GTM Interpolation application: a block of data points in, their 2-D
//! latent coordinates out.
//!
//! Every worker holds the (small) trained model; each task interpolates one
//! partition of out-of-sample points (§6: "Input data can be partitioned
//! arbitrarily on the data point boundaries").

use ppc_core::exec::Executor;
use ppc_core::task::TaskSpec;
use ppc_core::{PpcError, Result};
use ppc_gtm::interpolate::interpolate;
use ppc_gtm::linalg::Matrix;
use ppc_gtm::train::GtmModel;
use std::sync::Arc;

/// Binary point-block codec: `[n: u32][d: u32][n*d little-endian f64]`.
/// (The paper ships compressed splits; a fixed binary layout plays that
/// role here.)
pub fn encode_points(m: &Matrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + m.rows() * m.cols() * 8);
    out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
    for v in m.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Inverse of [`encode_points`].
pub fn decode_points(bytes: &[u8]) -> Result<Matrix> {
    if bytes.len() < 8 {
        return Err(PpcError::Codec("point block too short".into()));
    }
    let n = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let d = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    let expect = 8 + n * d * 8;
    if bytes.len() != expect {
        return Err(PpcError::Codec(format!(
            "point block length {} != expected {expect}",
            bytes.len()
        )));
    }
    let mut data = Vec::with_capacity(n * d);
    for chunk in bytes[8..].chunks_exact(8) {
        data.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
    }
    Ok(Matrix::from_flat(n, d, data))
}

/// The "executable" for the GTM Interpolation experiments.
pub struct GtmExecutor {
    pub model: Arc<GtmModel>,
}

impl GtmExecutor {
    pub fn new(model: Arc<GtmModel>) -> GtmExecutor {
        GtmExecutor { model }
    }
}

impl Executor for GtmExecutor {
    fn run(&self, _spec: &TaskSpec, input: &[u8]) -> Result<Vec<u8>> {
        let points = decode_points(input)?;
        if points.rows() == 0 {
            return Err(PpcError::TaskFailed("empty point block".into()));
        }
        if points.cols() != self.model.w.cols() {
            return Err(PpcError::TaskFailed(format!(
                "dimension mismatch: data {} vs model {}",
                points.cols(),
                self.model.w.cols()
            )));
        }
        let coords = interpolate(&self.model, &points);
        Ok(encode_points(&coords))
    }

    fn name(&self) -> &str {
        "gtm-interpolation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::task::ResourceProfile;
    use ppc_gtm::data::{fingerprints, FingerprintParams};
    use ppc_gtm::train::{train, TrainConfig};

    fn setup() -> (Arc<GtmModel>, Matrix) {
        let (data, _) = fingerprints(
            &FingerprintParams {
                n_points: 120,
                dim: 30,
                n_clusters: 3,
                flip_noise: 0.05,
            },
            31,
        );
        let cfg = TrainConfig {
            grid_side: 5,
            rbf_side: 3,
            iterations: 8,
            lambda: 1e-3,
        };
        let model = Arc::new(train(&data, &cfg).unwrap());
        (model, data)
    }

    fn spec() -> TaskSpec {
        TaskSpec::new(0, "gtm", "p0.bin", ResourceProfile::cpu_bound(0.0))
    }

    #[test]
    fn codec_round_trip() {
        let m = Matrix::from_rows(vec![vec![1.5, -2.0], vec![0.0, 42.25]]);
        let enc = encode_points(&m);
        let back = decode_points(&enc).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn codec_rejects_truncation() {
        let m = Matrix::zeros(3, 4);
        let mut enc = encode_points(&m);
        enc.pop();
        assert!(decode_points(&enc).is_err());
        assert!(decode_points(&[1, 2, 3]).is_err());
    }

    #[test]
    fn interpolates_block_to_2d() {
        let (model, data) = setup();
        let exec = GtmExecutor::new(model);
        let out = exec.run(&spec(), &encode_points(&data)).unwrap();
        let coords = decode_points(&out).unwrap();
        assert_eq!(coords.rows(), data.rows());
        assert_eq!(coords.cols(), 2);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (model, _) = setup();
        let exec = GtmExecutor::new(model);
        let wrong = Matrix::zeros(5, 7);
        assert!(exec.run(&spec(), &encode_points(&wrong)).is_err());
    }

    #[test]
    fn idempotent() {
        let (model, data) = setup();
        let exec = GtmExecutor::new(model);
        let input = encode_points(&data);
        assert_eq!(
            exec.run(&spec(), &input).unwrap(),
            exec.run(&spec(), &input).unwrap()
        );
    }
}
