//! The first real multi-stage bio pipeline: Cap3 assemble → BLAST annotate
//! → GTM interpolate, as one [`Workflow`] runnable on every paradigm.
//!
//! The paper evaluates its three applications standalone; chained, they are
//! the canonical sequencing pipeline — assemble shotgun reads into contigs,
//! annotate the contigs against a protein database (blastx translation
//! mode), and map each contig's annotation profile into GTM latent space
//! for visualization. Each stage is pleasingly parallel; the *edges* are
//! where the paradigms differ, which is exactly what the workflow layer's
//! materialize-vs-pipeline policy measures.
//!
//! Determinism contract: every stage executor is a pure function of its
//! payload, and the inter-stage adapters canonicalize on output-key
//! basenames, so all three engines — native and simulated — produce
//! byte-identical final outputs for the same inputs (pinned by
//! `tests/workflow_conformance.rs`).

use crate::blast::BlastxExecutor;
use crate::calibrate::{blast_profile, cap3_profile, gtm_profile};
use crate::cap3::Cap3Executor;
use crate::gtm::{encode_points, GtmExecutor};
use crate::workload::{blast_sim_tasks, cap3_sim_tasks, gtm_sim_tasks};
use ppc_bio::blast::BlastDb;
use ppc_bio::codon::arbitrary_coding_dna;
use ppc_bio::fasta;
use ppc_bio::simulate::{protein_database, shotgun_reads, ProteinDbParams, ShotgunParams};
use ppc_core::task::TaskSpec;
use ppc_core::PpcError;
use ppc_exec::{DataPolicy, FnAdapter, Stage, Workflow};
use ppc_gtm::data::{fingerprints, FingerprintParams};
use ppc_gtm::linalg::Matrix;
use ppc_gtm::train::{train, TrainConfig};
use std::sync::Arc;

/// Feature dimension of the annotation profile fed to GTM (must match the
/// trained model's data dimension).
pub const ANNOTATION_DIM: usize = 16;

/// FNV-1a, the classic 64-bit variant — a stable, dependency-free way to
/// turn a BLAST hit line into reproducible feature bits.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministically featurize one contig's BLAST hit table into a block
/// of [`ANNOTATION_DIM`]-dimensional pseudo-fingerprint points, one per
/// hit line (a single zero point when the contig had no hits, so the GTM
/// stage always has work). The bit pattern comes from hashing the line —
/// any change in subject, frame, or score moves the point.
pub fn featurize_hits(table: &[u8], dim: usize) -> Matrix {
    let text = String::from_utf8_lossy(table);
    let mut rows: Vec<Vec<f64>> = text
        .lines()
        .map(|line| {
            let mut h = fnv1a(line.as_bytes());
            (0..dim)
                .map(|_| {
                    // splitmix64 step per feature: decorrelates the bits.
                    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = h;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^= z >> 31;
                    (z & 1) as f64
                })
                .collect()
        })
        .collect();
    if rows.is_empty() {
        rows.push(vec![0.0; dim]);
    }
    Matrix::from_rows(rows)
}

/// The native Cap3 → blastx → GTM pipeline over real payloads.
///
/// Each input file is a shotgun read set over a coding DNA sequence that
/// back-translates one of the shared protein database's entries, so
/// assembly yields contigs that genuinely annotate against the database —
/// the stages are causally linked, not three unrelated batches.
pub fn bio_pipeline_native(n_files: usize, reads_per_file: usize, seed: u64) -> Workflow {
    // Shared protein database: the annotation target AND the source of the
    // simulated genomes (like resequencing a known proteome).
    let db_recs = protein_database(
        &ProteinDbParams {
            n_families: 8,
            members_per_family: 2,
            len_min: 120,
            len_max: 250,
            divergence: 0.12,
        },
        seed,
    );
    let db = Arc::new(BlastDb::build(db_recs.clone(), 3));

    // Stage 1: assemble. One read set per file, each over the coding DNA
    // of one database protein.
    let mut assemble_specs = Vec::with_capacity(n_files);
    let mut assemble_inputs = Vec::with_capacity(n_files);
    for i in 0..n_files {
        let protein = &db_recs[i % db_recs.len()];
        let genome = arbitrary_coding_dna(&protein.seq);
        let reads = shotgun_reads(
            &genome,
            &ShotgunParams {
                n_reads: reads_per_file,
                read_len_mean: 160.0,
                read_len_sd: 15.0,
                ..Default::default()
            },
            seed ^ ((i as u64 + 1) << 8),
        );
        assemble_specs.push(TaskSpec::new(
            i as u64,
            "cap3",
            format!("cap3/in/f{i:05}.fa"),
            cap3_profile(reads_per_file, 160),
        ));
        assemble_inputs.push(fasta::format(&reads));
    }

    // Stage 2: annotate. Contig FASTA flows in unchanged (identity
    // adapter); blastx translates and searches the shared database.
    let annotate_specs: Vec<TaskSpec> = (0..n_files)
        .map(|i| {
            TaskSpec::new(
                i as u64,
                "blastx",
                format!("blast/in/q{i:05}.fa"),
                blast_profile(4, 0),
            )
        })
        .collect();

    // Stage 3: interpolate. Hit tables are featurized into point blocks
    // for a GTM model trained on the same fingerprint family.
    let (sample, _) = fingerprints(
        &FingerprintParams {
            n_points: 120,
            dim: ANNOTATION_DIM,
            n_clusters: 4,
            flip_noise: 0.05,
        },
        seed ^ 0xA5A5,
    );
    let model = Arc::new(
        train(
            &sample,
            &TrainConfig {
                grid_side: 5,
                rbf_side: 3,
                iterations: 8,
                lambda: 1e-3,
            },
        )
        .expect("GTM training on a well-formed sample"),
    );
    let interpolate_specs: Vec<TaskSpec> = (0..n_files)
        .map(|i| {
            TaskSpec::new(
                i as u64,
                "gtm",
                format!("gtm/in/p{i:05}.bin"),
                gtm_profile(64),
            )
        })
        .collect();

    // Native stage tasks finish in milliseconds, so redelivery of a killed
    // worker's message must be prompt — the queue-based engine's generous
    // default visibility timeout would stall chaos runs for minutes.
    let visibility = std::time::Duration::from_secs(2);
    let mut wf = Workflow::new("cap3-blast-gtm");
    let assemble = wf.add_stage(
        Stage::new("assemble", assemble_specs)
            .with_executor(Arc::new(Cap3Executor::new()))
            .with_inputs(assemble_inputs)
            .with_max_attempts(8)
            .with_visibility_timeout(visibility),
    );
    let annotate = wf.add_stage(
        Stage::new("annotate", annotate_specs)
            .with_executor(Arc::new(BlastxExecutor::new(db)))
            .with_max_attempts(8)
            .with_visibility_timeout(visibility),
    );
    let interpolate = wf.add_stage(
        Stage::new("interpolate", interpolate_specs)
            .with_executor(Arc::new(GtmExecutor::new(model)))
            .with_max_attempts(8)
            .with_visibility_timeout(visibility),
    );
    wf.connect(
        assemble,
        annotate,
        DataPolicy::Materialize,
        FnAdapter::identity(),
    );
    wf.connect(
        annotate,
        interpolate,
        DataPolicy::Materialize,
        FnAdapter::new("featurize-hits", |_k, bytes| {
            if !bytes.is_ascii() {
                return Err(PpcError::Codec("hit table is not ASCII".into()));
            }
            Ok(encode_points(&featurize_hits(bytes, ANNOTATION_DIM)))
        }),
    );
    wf
}

/// The simulated pipeline at paper scale: the same three stages with
/// calibrated resource profiles and no payloads, for DES studies. The
/// materialize edges price each stage boundary from the upstream profiles'
/// promised output bytes — this is where the inter-stage materialization
/// overhead bucket comes from.
pub fn bio_pipeline_sim(n_files: usize) -> Workflow {
    let mut wf = Workflow::new("cap3-blast-gtm-sim");
    let assemble = wf.add_stage(Stage::new("assemble", cap3_sim_tasks(n_files, 300)));
    let annotate = wf.add_stage(Stage::new("annotate", blast_sim_tasks(n_files, 100)));
    let interpolate = wf.add_stage(Stage::new("interpolate", gtm_sim_tasks(n_files, 10_000)));
    wf.connect_ordering(assemble, annotate, DataPolicy::Materialize);
    wf.connect_ordering(annotate, interpolate, DataPolicy::Materialize);
    wf
}

/// Like [`bio_pipeline_sim`] but with pipelined (in-memory) edges — the
/// what-if the paper's "Data Sharing Options" comparison asks: how much of
/// the makespan is storage round-trips between stages?
pub fn bio_pipeline_sim_pipelined(n_files: usize) -> Workflow {
    let mut wf = bio_pipeline_sim(n_files);
    for e in &mut wf.edges {
        e.policy = DataPolicy::Pipeline;
    }
    wf.name = "cap3-blast-gtm-sim-pipelined".into();
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::NR_DB_BYTES;

    #[test]
    fn featurize_is_deterministic_and_total() {
        let table = b"c1\tFAM3_m0\t+1\t52.0\t1.00e-12\nc1\tFAM3_m1\t+1\t44.5\t2.00e-10\n";
        let a = featurize_hits(table, ANNOTATION_DIM);
        let b = featurize_hits(table, ANNOTATION_DIM);
        assert_eq!(a, b);
        assert_eq!(a.rows(), 2);
        assert_eq!(a.cols(), ANNOTATION_DIM);
        // Different lines land on different points.
        assert_ne!(
            (0..ANNOTATION_DIM).map(|c| a[(0, c)]).collect::<Vec<_>>(),
            (0..ANNOTATION_DIM).map(|c| a[(1, c)]).collect::<Vec<_>>()
        );
        // Empty table → one zero point, never an empty block.
        let empty = featurize_hits(b"", ANNOTATION_DIM);
        assert_eq!(empty.rows(), 1);
        assert!((0..ANNOTATION_DIM).all(|c| empty[(0, c)] == 0.0));
    }

    #[test]
    fn native_pipeline_validates_and_names_stages() {
        let wf = bio_pipeline_native(3, 24, 7);
        wf.validate_native().unwrap();
        assert_eq!(wf.stages.len(), 3);
        assert_eq!(wf.topo_order().unwrap(), vec![0, 1, 2]);
        assert_eq!(
            wf.stages
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>(),
            vec!["assemble", "annotate", "interpolate"]
        );
        assert_eq!(wf.sinks(), vec![2]);
    }

    #[test]
    fn sim_pipeline_prices_materialization() {
        let wf = bio_pipeline_sim(16);
        wf.validate().unwrap();
        // Every stage promises output bytes, so each materialize edge has
        // a nonzero transfer cost.
        for e in &wf.edges {
            assert_eq!(e.policy, DataPolicy::Materialize);
            let bytes = wf.stages[e.from].output_bytes();
            assert!(bytes > 0, "stage {} promises no output", e.from);
            assert!(wf.materialize.transfer_s(bytes) > 0.0);
        }
        let piped = bio_pipeline_sim_pipelined(16);
        assert!(piped.edges.iter().all(|e| e.policy == DataPolicy::Pipeline));
        // NR-sized shared DB stays on the profile (annotate stage).
        assert!(wf.stages[1]
            .specs
            .iter()
            .all(|t| t.profile.shared_mem_bytes == NR_DB_BYTES));
    }
}
