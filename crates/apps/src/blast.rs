//! The BLAST application: FASTA queries in, tabular hit report out.
//!
//! Each worker holds one resident [`BlastDb`] (the paper pre-distributes
//! the 8.7 GB NR database to every node before processing, §5) and
//! processes query files of ~100 sequences each.

use ppc_bio::blast::{BlastDb, BlastParams};
use ppc_bio::fasta;
use ppc_core::exec::Executor;
use ppc_core::task::TaskSpec;
use ppc_core::{PpcError, Result};
use std::fmt::Write as _;
use std::sync::Arc;

/// The "executable" for the BLAST experiments. Output format mirrors
/// blastp's tabular `-outfmt 6`: query, subject, bit score, E-value.
pub struct BlastExecutor {
    pub db: Arc<BlastDb>,
    pub params: BlastParams,
}

impl BlastExecutor {
    pub fn new(db: Arc<BlastDb>) -> BlastExecutor {
        BlastExecutor {
            db,
            params: BlastParams::default(),
        }
    }
}

impl Executor for BlastExecutor {
    fn run(&self, _spec: &TaskSpec, input: &[u8]) -> Result<Vec<u8>> {
        let queries = fasta::parse(input)?;
        if queries.is_empty() {
            return Err(PpcError::TaskFailed("empty query file".into()));
        }
        let results = self.db.search_many(&queries, &self.params);
        let mut out = String::new();
        for (q, hits) in queries.iter().zip(&results) {
            for h in hits {
                writeln!(
                    out,
                    "{}\t{}\t{:.1}\t{:.2e}",
                    q.id, h.subject_id, h.bit_score, h.e_value
                )
                .expect("string write");
            }
        }
        Ok(out.into_bytes())
    }

    fn name(&self) -> &str {
        "blast"
    }
}

/// The blastx-mode executable: *nucleotide* FASTA queries in, tabular hits
/// out with the winning reading frame — the translation mode §5 of the
/// paper describes ("to translate a FASTA formatted nucleotide query and to
/// compare it to a protein database").
pub struct BlastxExecutor {
    pub db: Arc<BlastDb>,
    pub params: BlastParams,
}

impl BlastxExecutor {
    pub fn new(db: Arc<BlastDb>) -> BlastxExecutor {
        BlastxExecutor {
            db,
            params: BlastParams::default(),
        }
    }
}

impl Executor for BlastxExecutor {
    fn run(&self, _spec: &TaskSpec, input: &[u8]) -> Result<Vec<u8>> {
        let queries = fasta::parse(input)?;
        if queries.is_empty() {
            return Err(PpcError::TaskFailed("empty query file".into()));
        }
        let mut out = String::new();
        for q in &queries {
            for (frame, h) in self.db.search_translated(&q.seq, &self.params) {
                writeln!(
                    out,
                    "{}\t{}\t{frame:+}\t{:.1}\t{:.2e}",
                    q.id, h.subject_id, h.bit_score, h.e_value
                )
                .expect("string write");
            }
        }
        Ok(out.into_bytes())
    }

    fn name(&self) -> &str {
        "blastx"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_bio::simulate::{protein_database, queries_from_db, ProteinDbParams};
    use ppc_core::task::ResourceProfile;

    fn setup() -> (Arc<BlastDb>, Vec<u8>) {
        let db_recs = protein_database(
            &ProteinDbParams {
                n_families: 8,
                members_per_family: 2,
                len_min: 120,
                len_max: 250,
                divergence: 0.12,
            },
            21,
        );
        let queries = queries_from_db(&db_recs, 10, 0.05, 22);
        let db = Arc::new(BlastDb::build(db_recs, 3));
        (db, fasta::format(&queries))
    }

    fn spec() -> TaskSpec {
        TaskSpec::new(0, "blast", "q0.fa", ResourceProfile::cpu_bound(0.0))
    }

    #[test]
    fn tabular_output_has_hits_for_every_query() {
        let (db, input) = setup();
        let exec = BlastExecutor::new(db);
        let out = exec.run(&spec(), &input).unwrap();
        let text = String::from_utf8(out).unwrap();
        let queries_with_hits: std::collections::HashSet<&str> =
            text.lines().filter_map(|l| l.split('\t').next()).collect();
        assert!(
            queries_with_hits.len() >= 9,
            "most queries hit: {}",
            queries_with_hits.len()
        );
        // Four tab-separated columns.
        for line in text.lines().take(5) {
            assert_eq!(line.split('\t').count(), 4, "{line}");
        }
    }

    #[test]
    fn idempotent() {
        let (db, input) = setup();
        let exec = BlastExecutor::new(db);
        assert_eq!(
            exec.run(&spec(), &input).unwrap(),
            exec.run(&spec(), &input).unwrap()
        );
    }

    #[test]
    fn rejects_empty() {
        let (db, _) = setup();
        let exec = BlastExecutor::new(db);
        assert!(exec.run(&spec(), b"").is_err());
    }

    #[test]
    fn blastx_executor_reports_frames() {
        use ppc_bio::codon::arbitrary_coding_dna;
        use ppc_bio::fasta::{reverse_complement, FastaRecord};
        let (db, _) = setup();
        // Build a nucleotide query encoding a fragment of subject 2, plus a
        // reverse-strand copy.
        let src = db.sequence(2).clone();
        let dna = arbitrary_coding_dna(&src.seq[5..95]);
        let queries = vec![
            FastaRecord::new("fwd", dna.clone()),
            FastaRecord::new("rev", reverse_complement(&dna)),
        ];
        let exec = BlastxExecutor::new(db);
        let out = exec.run(&spec(), &fasta::format(&queries)).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Both strands find the source; frames carry the right sign.
        let fwd_line = text
            .lines()
            .find(|l| l.starts_with("fwd\t"))
            .expect("fwd hit");
        assert!(fwd_line.contains(&src.id), "{fwd_line}");
        assert!(
            fwd_line.split('\t').nth(2).unwrap().starts_with('+'),
            "{fwd_line}"
        );
        let rev_line = text
            .lines()
            .find(|l| l.starts_with("rev\t"))
            .expect("rev hit");
        assert!(
            rev_line.split('\t').nth(2).unwrap().starts_with('-'),
            "{rev_line}"
        );
        // Five tab-separated columns (query, subject, frame, bits, evalue).
        assert_eq!(fwd_line.split('\t').count(), 5);
    }
}
