//! # ppc-apps — the paper's three applications on the four platforms
//!
//! Glues the biomedical kernels (`ppc-bio`, `ppc-gtm`) to the execution
//! platforms (`ppc-classic`, `ppc-mapreduce`, `ppc-dryad`) the way the
//! paper's §2 frameworks wrap their executables:
//!
//! * [`cap3`] — the assembly executable ([`cap3::Cap3Executor`]) and its
//!   paper-anchored resource profile.
//! * [`blast`] — the search executable over a resident database, with the
//!   NR-like shared-memory profile.
//! * [`gtm`] — the interpolation executable over a trained model, with the
//!   memory-bandwidth-bound profile.
//! * [`workload`] — input-file generators (homogeneous, inhomogeneous,
//!   replicated) mirroring each experiment's data sets.
//! * [`calibrate`] — where the simulator's `ResourceProfile` constants come
//!   from, both paper-anchored and measured-from-native.
//! * [`experiment`] — shared sweep drivers: the 16-core EC2 instance-type
//!   study, the four-platform scalability study, and the cost model — the
//!   building blocks every figure's bench binary uses.

pub mod blast;
pub mod calibrate;
pub mod cap3;
pub mod experiment;
pub mod gtm;
pub mod pipeline;
pub mod workload;
