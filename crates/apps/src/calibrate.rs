//! Resource-profile calibration.
//!
//! The discrete-event simulator predicts task times from a
//! [`ResourceProfile`]; this module is the single place those profiles come
//! from. Two sources:
//!
//! 1. **Paper anchors** — the constants below are fitted to the paper's
//!    reported figures (DESIGN.md §6 lists each anchor). They express, e.g.,
//!    "one 200-read Cap3 file costs ~80 reference-core-seconds", which makes
//!    the simulated Figure 4 reproduce the measured one by construction of
//!    the workload, not of the result.
//! 2. **Measured-from-native** — [`measure_profile`] times the real kernel
//!    on a real input, for examples that want small-scale realistic numbers.

use ppc_core::exec::Executor;
use ppc_core::task::{ResourceProfile, TaskSpec};
use ppc_core::Result;

/// Cap3 anchor: a 200-read (~500 bp) FASTA file takes ~80 s on one
/// reference core (16 HCXL cores clear 200 files in ~1000 s, Figure 4).
pub const CAP3_SECONDS_PER_200_READS: f64 = 80.0;

/// Overlap computation grows super-linearly with reads per file; greedy
/// OLC with k-mer filtering lands near this exponent empirically.
pub const CAP3_READ_EXPONENT: f64 = 1.5;

/// Cap3 profile for a file of `n_reads` reads of roughly `read_len` bases.
pub fn cap3_profile(n_reads: usize, read_len: usize) -> ResourceProfile {
    let scale = (n_reads as f64 / 200.0).powf(CAP3_READ_EXPONENT);
    let file_bytes = (n_reads * (read_len + 20)) as u64;
    ResourceProfile {
        cpu_seconds_ref: CAP3_SECONDS_PER_200_READS * scale,
        mem_bytes: 96 << 20, // "less memory intensive" (§4)
        shared_mem_bytes: 0,
        mem_traffic_bytes: 0, // CPU-bound: bandwidth never binds
        input_bytes: file_bytes,
        output_bytes: file_bytes / 2,
    }
}

/// BLAST anchors: 64 query files (100 queries each) on 16 HCXL cores take
/// ~1250 s (Figure 8) -> ~312 s per file on one reference core with the DB
/// resident; the NR database is 8.7 GB uncompressed (§5).
pub const BLAST_SECONDS_PER_100_QUERIES: f64 = 312.0;
pub const NR_DB_BYTES: u64 = 8_700_000_000;

/// BLAST profile for a file of `n_queries` queries against a database of
/// `db_bytes` (shared read-only per node).
pub fn blast_profile(n_queries: usize, db_bytes: u64) -> ResourceProfile {
    ResourceProfile {
        cpu_seconds_ref: BLAST_SECONDS_PER_100_QUERIES * n_queries as f64 / 100.0,
        mem_bytes: 256 << 20,
        shared_mem_bytes: db_bytes,
        mem_traffic_bytes: 0, // compute-bound once resident; misses modeled
        // via the overflow term
        input_bytes: 8 << 10,  // "7-8 KB" query files (§5)
        output_bytes: 1 << 20, // "few bytes to few Megabytes"
    }
}

/// GTM anchors: 264 files × 100k points on 16 HCXL cores in ~420 s
/// (Figure 13) -> ~25 reference-core-seconds per file, and each point's
/// responsibility pass streams `K × D` doubles — the bandwidth-bound term
/// (§6.1: "memory (size and bandwidth) is a bottleneck").
pub const GTM_SECONDS_PER_100K_POINTS: f64 = 25.0;
pub const GTM_TRAFFIC_BYTES_PER_100K_POINTS: u64 = 38_000_000_000;

/// GTM Interpolation profile for a file of `n_points` data points.
pub fn gtm_profile(n_points: usize) -> ResourceProfile {
    let scale = n_points as f64 / 100_000.0;
    ResourceProfile {
        cpu_seconds_ref: GTM_SECONDS_PER_100K_POINTS * scale,
        mem_bytes: 1 << 30, // "highly memory intensive" (§6)
        shared_mem_bytes: 0,
        mem_traffic_bytes: (GTM_TRAFFIC_BYTES_PER_100K_POINTS as f64 * scale) as u64,
        input_bytes: (n_points * 166) as u64 / 4, // compressed splits (§6.2)
        output_bytes: (n_points * 2 * 8) as u64,  // 2-D coordinates out
    }
}

/// Measure a real kernel run and build a profile from it. The wall time is
/// recorded as reference-core seconds directly (good enough for examples;
/// the paper-scale benches use the anchored profiles above).
pub fn measure_profile(
    executor: &dyn Executor,
    spec: &TaskSpec,
    input: &[u8],
) -> Result<ResourceProfile> {
    let start = std::time::Instant::now();
    let output = executor.run(spec, input)?;
    let elapsed = start.elapsed().as_secs_f64();
    Ok(ResourceProfile {
        cpu_seconds_ref: elapsed,
        mem_bytes: 64 << 20,
        shared_mem_bytes: 0,
        mem_traffic_bytes: 0,
        input_bytes: input.len() as u64,
        output_bytes: output.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::exec::FnExecutor;

    #[test]
    fn cap3_profile_scales_superlinearly() {
        let small = cap3_profile(200, 500);
        let big = cap3_profile(458, 500);
        assert!((small.cpu_seconds_ref - 80.0).abs() < 1e-9);
        let ratio = big.cpu_seconds_ref / small.cpu_seconds_ref;
        assert!(ratio > 458.0 / 200.0, "superlinear: {ratio}");
        assert!(ratio < (458.0f64 / 200.0).powi(2), "sub-quadratic: {ratio}");
    }

    #[test]
    fn blast_profile_carries_shared_db() {
        let p = blast_profile(100, NR_DB_BYTES);
        assert_eq!(p.shared_mem_bytes, NR_DB_BYTES);
        assert!((p.cpu_seconds_ref - BLAST_SECONDS_PER_100_QUERIES).abs() < 1e-9);
        let half = blast_profile(50, NR_DB_BYTES);
        assert!((half.cpu_seconds_ref * 2.0 - p.cpu_seconds_ref).abs() < 1e-9);
    }

    #[test]
    fn gtm_profile_is_bandwidth_heavy() {
        let p = gtm_profile(100_000);
        // On a reference core with 1.25 GB/s share (HCXL / 8 workers) the
        // memory term exceeds the CPU term — the §6.1 bottleneck.
        let t_mem_hcxl_share = p.mem_traffic_bytes as f64 / 1.25e9;
        assert!(t_mem_hcxl_share > p.cpu_seconds_ref);
        // But with a whole socket's bandwidth it does not bind.
        let t_mem_alone = p.mem_traffic_bytes as f64 / 10e9;
        assert!(t_mem_alone < p.cpu_seconds_ref);
    }

    #[test]
    fn cap3_superlinearity_matches_the_real_kernel() {
        // The calibration claims assembly cost grows ~ (reads)^1.5. Check
        // the *actual* assembler: time 120-read vs 480-read files from the
        // same genome class and compare growth against the model's.
        use crate::cap3::Cap3Executor;
        use ppc_bio::fasta;
        use ppc_bio::simulate::{random_genome, shotgun_reads, ShotgunParams};
        use ppc_core::exec::Executor;

        let make_input = |n_reads: usize, seed: u64| {
            let genome = random_genome(3000, seed);
            let reads = shotgun_reads(
                &genome,
                &ShotgunParams {
                    n_reads,
                    read_len_mean: 220.0,
                    read_len_sd: 15.0,
                    ..Default::default()
                },
                seed + 1,
            );
            fasta::format(&reads)
        };
        let exec = Cap3Executor::new();
        let spec =
            ppc_core::TaskSpec::new(0, "cap3", "x", ppc_core::ResourceProfile::cpu_bound(0.0));
        let time_for = |n_reads: usize| {
            // Median of 3 runs over 2 seeds to damp scheduler noise.
            let mut samples = Vec::new();
            for seed in [11u64, 12] {
                let input = make_input(n_reads, seed);
                for _ in 0..3 {
                    let start = std::time::Instant::now();
                    exec.run(&spec, &input).unwrap();
                    samples.push(start.elapsed().as_secs_f64());
                }
            }
            samples.sort_by(f64::total_cmp);
            samples[samples.len() / 2]
        };
        let t_small = time_for(120);
        let t_big = time_for(480);
        let measured_exponent = (t_big / t_small).ln() / 4.0f64.ln();
        // The model pins 1.5; accept a broad band — the point is that the
        // real kernel is clearly superlinear but sub-quadratic, like Cap3.
        assert!(
            (0.9..2.2).contains(&measured_exponent),
            "kernel growth exponent {measured_exponent:.2} (t120={t_small:.4}s, t480={t_big:.4}s)"
        );
    }

    #[test]
    fn measure_profile_records_io_sizes() {
        let exec = FnExecutor::new("pad", |_s, i: &[u8]| Ok(vec![0u8; i.len() * 2]));
        let spec = TaskSpec::new(0, "pad", "x", ResourceProfile::cpu_bound(0.0));
        let p = measure_profile(exec.as_ref(), &spec, &[1u8; 100]).unwrap();
        assert_eq!(p.input_bytes, 100);
        assert_eq!(p.output_bytes, 200);
        assert!(p.cpu_seconds_ref >= 0.0);
    }
}
