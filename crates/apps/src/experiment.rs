//! Shared experiment drivers for the benchmark harness.
//!
//! Three reusable studies cover all of the paper's figures:
//!
//! * [`ec2_instance_study`] — the 16-core instance-type sweeps behind
//!   Figures 3/4 (Cap3), 7/8 (BLAST), 12/13 (GTM).
//! * [`azure_instance_study`] — Figure 9's Azure workers×threads grid.
//! * [`scalability_study`] — the four-platform efficiency/per-file studies
//!   behind Figures 5/6, 10/11, 14/15.

use ppc_classic::{sequential_baseline_seconds, simulate as classic_sim, ClassicEngine, SimConfig};
use ppc_compute::billing::CostBreakdown;
use ppc_compute::cluster::Cluster;
use ppc_compute::instance::{
    InstanceType, AZURE_SMALL, BARE_CAP3, BARE_CAP3_WIN, BARE_HPC16, BARE_IDATAPLEX, BARE_XEON24,
    EC2_HCXL, EC2_HM4XL, EC2_LARGE, EC2_XLARGE,
};
use ppc_compute::model::AppModel;
use ppc_core::metrics::{avg_time_per_task_per_core, parallel_efficiency};
use ppc_core::task::TaskSpec;
use ppc_dryad::{DryadEngine, DryadSimConfig};
use ppc_exec::{Engine, RunContext};
use ppc_mapreduce::{simulate as hadoop_sim, HadoopEngine, HadoopSimConfig};

/// One row of an instance-type study (one bar group in Figures 3/4 etc.).
#[derive(Debug, Clone)]
pub struct InstanceStudyRow {
    /// The paper's axis label, e.g. "HCXL - 2 x 8".
    pub label: String,
    pub makespan_seconds: f64,
    pub cost: CostBreakdown,
}

/// The paper's 16-core EC2 configurations (§3's axis labels).
pub fn sixteen_core_ec2_configs() -> Vec<Cluster> {
    vec![
        Cluster::provision_per_core(EC2_LARGE, 8),
        Cluster::provision_per_core(EC2_XLARGE, 4),
        Cluster::provision_per_core(EC2_HCXL, 2),
        Cluster::provision_per_core(EC2_HM4XL, 2),
    ]
}

/// Run a workload on each 16-core EC2 config through the Classic Cloud
/// simulator; returns one row per config.
pub fn ec2_instance_study(tasks: &[TaskSpec], app: AppModel, seed: u64) -> Vec<InstanceStudyRow> {
    sixteen_core_ec2_configs()
        .into_iter()
        .map(|cluster| {
            let cfg = SimConfig::ec2().with_app(app).with_seed(seed);
            let report = classic_sim(&RunContext::new(&cluster), tasks, &cfg);
            InstanceStudyRow {
                label: cluster.label().to_string(),
                makespan_seconds: report.summary.makespan_seconds,
                cost: cluster.cost(report.summary.makespan_seconds),
            }
        })
        .collect()
}

/// Azure instance-type study (Figure 9): fixed total core count spread over
/// 8 Small / 4 Medium / 2 Large / 1 XL instances, with a workers×threads
/// split per instance. A `w×t` split runs `w` worker processes per
/// instance; each gets the whole task but only `t` of the instance's cores.
/// Threads inside a worker parallelize one task with efficiency
/// `thread_efficiency` (<1: BLAST threads beat processes only on memory).
pub fn azure_instance_study(
    tasks: &[TaskSpec],
    app: AppModel,
    workers_threads: &[(usize, usize)],
    seed: u64,
) -> Vec<(String, Vec<InstanceStudyRow>)> {
    use ppc_compute::instance::{AZURE_LARGE, AZURE_MEDIUM, AZURE_XLARGE};
    let types: [(InstanceType, usize); 4] = [
        (AZURE_SMALL, 8),
        (AZURE_MEDIUM, 4),
        (AZURE_LARGE, 2),
        (AZURE_XLARGE, 1),
    ];
    types
        .iter()
        .map(|&(itype, n_instances)| {
            let rows = workers_threads
                .iter()
                .filter(|&&(w, t)| w * t <= itype.cores && w >= 1 && t >= 1)
                .map(|&(w, t)| {
                    // Threaded task: acts like a task with 1/`t_eff` of the
                    // serial time on one "fat" worker slot.
                    let thread_eff = 0.85f64.powf((t as f64).log2().max(0.0));
                    let scaled: Vec<TaskSpec> = tasks
                        .iter()
                        .map(|task| {
                            let mut task = task.clone();
                            task.profile.cpu_seconds_ref /= t as f64 * thread_eff.max(0.5);
                            task
                        })
                        .collect();
                    let cluster = Cluster::provision(itype, n_instances, w);
                    let cfg = SimConfig::azure().with_app(app).with_seed(seed);
                    let report = classic_sim(&RunContext::new(&cluster), &scaled, &cfg);
                    InstanceStudyRow {
                        label: format!("{}x{}", w, t),
                        makespan_seconds: report.summary.makespan_seconds,
                        cost: cluster.cost(report.summary.makespan_seconds),
                    }
                })
                .collect();
            (itype.name.to_string(), rows)
        })
        .collect()
}

/// The four platforms of the scalability studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Classic Cloud on EC2 HCXL instances.
    ClassicEc2,
    /// Classic Cloud on Azure Small instances.
    ClassicAzure,
    /// Hadoop on a bare-metal Linux cluster.
    Hadoop,
    /// DryadLINQ on a bare-metal Windows HPC cluster.
    Dryad,
}

impl Platform {
    pub const ALL: [Platform; 4] = [
        Platform::ClassicEc2,
        Platform::ClassicAzure,
        Platform::Hadoop,
        Platform::Dryad,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            Platform::ClassicEc2 => "EC2",
            Platform::ClassicAzure => "Azure",
            Platform::Hadoop => "Hadoop",
            Platform::Dryad => "DryadLINQ",
        }
    }

    /// Node type per application, following §4.2/§5.2/§6.2's testbeds.
    pub fn node_type(&self, application: &str) -> InstanceType {
        match self {
            Platform::ClassicEc2 => EC2_HCXL,
            Platform::ClassicAzure => AZURE_SMALL,
            Platform::Hadoop => match application {
                "blast" => BARE_IDATAPLEX,
                "gtm" => BARE_XEON24,
                _ => BARE_CAP3,
            },
            Platform::Dryad => match application {
                "cap3" => BARE_CAP3_WIN,
                _ => BARE_HPC16,
            },
        }
    }

    /// Workers per node for a given application (Hadoop's GTM cluster was
    /// "configured to use only 8 cores per node", §6.2).
    pub fn workers_per_node(&self, application: &str) -> usize {
        let itype = self.node_type(application);
        match (self, application) {
            (Platform::Hadoop, "gtm") => 8,
            _ => itype.cores,
        }
    }

    /// Build a fleet with (at least) `cores` worker cores.
    pub fn fleet(&self, application: &str, cores: usize) -> Cluster {
        let itype = self.node_type(application);
        let workers = self.workers_per_node(application);
        let n_nodes = cores.div_ceil(workers).max(1);
        Cluster::provision(itype, n_nodes, workers)
    }
}

/// One point of a scalability study.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    pub platform: &'static str,
    pub cores: usize,
    pub n_tasks: usize,
    pub makespan_seconds: f64,
    /// Equation 1, with `T1` measured in the same environment.
    pub efficiency: f64,
    /// Equation 2.
    pub per_task_per_core_seconds: f64,
}

/// Run one platform at one fleet size over a task set.
pub fn run_platform(
    platform: Platform,
    application: &str,
    tasks: &[TaskSpec],
    app: AppModel,
    seed: u64,
) -> ScalePoint {
    let cores = default_cores(platform, tasks.len());
    run_platform_sized(platform, application, tasks, app, cores, seed)
}

fn default_cores(platform: Platform, _n_tasks: usize) -> usize {
    match platform {
        Platform::ClassicEc2 => 128,   // 16 HCXL (§4.2, §5.2)
        Platform::ClassicAzure => 128, // 128 Small (§4.2)
        Platform::Hadoop => 128,
        Platform::Dryad => 128,
    }
}

/// Run one platform with an explicit core count.
pub fn run_platform_sized(
    platform: Platform,
    application: &str,
    tasks: &[TaskSpec],
    app: AppModel,
    cores: usize,
    seed: u64,
) -> ScalePoint {
    let cluster = platform.fleet(application, cores);
    let itype = cluster.itype();
    // The platform choice picks an engine; from here on the call is
    // paradigm-generic, with the seed arriving through the context.
    let engine: Box<dyn Engine> = match platform {
        Platform::ClassicEc2 | Platform::ClassicAzure => Box::new(ClassicEngine {
            sim: SimConfig::ec2().with_app(app),
            ..ClassicEngine::default()
        }),
        Platform::Hadoop => Box::new(HadoopEngine {
            sim: HadoopSimConfig {
                app,
                ..HadoopSimConfig::default()
            },
            ..HadoopEngine::default()
        }),
        Platform::Dryad => Box::new(DryadEngine {
            sim: DryadSimConfig {
                app,
                ..DryadSimConfig::default()
            },
            ..DryadEngine::default()
        }),
    };
    let ctx = RunContext::new(&cluster).with_seed(seed);
    let summary = engine.simulate(&ctx, tasks).summary;
    // T1 in the same environment (one worker, whole node otherwise idle).
    let t1 = sequential_baseline_seconds(&itype, tasks, &app);
    ScalePoint {
        platform: platform.label(),
        cores: cluster.total_workers(),
        n_tasks: tasks.len(),
        makespan_seconds: summary.makespan_seconds,
        efficiency: parallel_efficiency(t1, summary.makespan_seconds, cluster.total_workers()),
        per_task_per_core_seconds: avg_time_per_task_per_core(
            summary.makespan_seconds,
            cluster.total_workers(),
            tasks.len(),
        ),
    }
}

/// Elastic-MapReduce-style run: Hadoop rented on EC2 instances (Table 3
/// lists "Amazon Elastic MapReduce" as a Hadoop environment). Same
/// scheduler and overheads as the bare-metal Hadoop sim, but on cloud
/// instance types with hourly billing — letting the harness compare
/// "bring your own cluster" vs "rent Hadoop by the hour" vs Classic Cloud.
pub fn run_emr(
    itype: InstanceType,
    n_instances: usize,
    tasks: &[TaskSpec],
    app: AppModel,
    seed: u64,
) -> (ScalePoint, ppc_compute::billing::CostBreakdown) {
    let cluster = Cluster::provision_per_core(itype, n_instances);
    let cfg = HadoopSimConfig {
        app,
        seed,
        ..HadoopSimConfig::default()
    };
    let summary = hadoop_sim(&RunContext::new(&cluster), tasks, &cfg)
        .core
        .summary;
    let t1 = sequential_baseline_seconds(&itype, tasks, &app);
    let point = ScalePoint {
        platform: "EMR",
        cores: cluster.total_workers(),
        n_tasks: tasks.len(),
        makespan_seconds: summary.makespan_seconds,
        efficiency: parallel_efficiency(t1, summary.makespan_seconds, cluster.total_workers()),
        per_task_per_core_seconds: avg_time_per_task_per_core(
            summary.makespan_seconds,
            cluster.total_workers(),
            tasks.len(),
        ),
    };
    let cost = cluster.cost(summary.makespan_seconds);
    (point, cost)
}

/// The full scalability study: every platform, workload replicated 1..=`max_rep`
/// times over a fixed paper-sized fleet.
pub fn scalability_study(
    application: &str,
    base_tasks: &[TaskSpec],
    app: AppModel,
    max_rep: usize,
    seed: u64,
) -> Vec<ScalePoint> {
    let mut out = Vec::new();
    for rep in 1..=max_rep {
        let tasks = crate::workload::replicate(base_tasks, rep);
        for platform in Platform::ALL {
            out.push(run_platform(platform, application, &tasks, app, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{blast_sim_base_set, cap3_sim_tasks, gtm_sim_tasks};

    #[test]
    fn ec2_configs_are_all_16_cores() {
        for c in sixteen_core_ec2_configs() {
            assert_eq!(c.total_cores(), 16, "{}", c.label());
        }
    }

    #[test]
    fn cap3_instance_study_shapes() {
        // Figure 4: HM4XL fastest, HCXL in the middle, L/XL slowest.
        let tasks = cap3_sim_tasks(200, 200);
        let rows = ec2_instance_study(&tasks, AppModel::cap3(), 1);
        let by = |label: &str| rows.iter().find(|r| r.label.starts_with(label)).unwrap();
        assert!(by("HM4XL").makespan_seconds < by("HCXL").makespan_seconds);
        assert!(by("HCXL").makespan_seconds < by("L -").makespan_seconds);
        // Figure 3: HCXL is the cheapest effective option per compute cost.
        let cheapest = rows.iter().min_by_key(|r| r.cost.compute_cost).unwrap();
        assert!(
            cheapest.label.starts_with("HCXL"),
            "cheapest {}",
            cheapest.label
        );
        // HM4XL is the most expensive despite being fastest.
        let priciest = rows.iter().max_by_key(|r| r.cost.compute_cost).unwrap();
        assert!(
            priciest.label.starts_with("HM4XL"),
            "priciest {}",
            priciest.label
        );
    }

    #[test]
    fn gtm_study_is_memory_shaped() {
        // Figure 13: HM4XL best time; Large beats XL per §6.1's bandwidth
        // logic? (The paper: "Large instances achieved the best parallel
        // efficiency, HM4XL the best performance, HCXL the most economical".)
        let tasks = gtm_sim_tasks(264, 100_000);
        let rows = ec2_instance_study(&tasks, AppModel::DEFAULT, 2);
        let by = |label: &str| rows.iter().find(|r| r.label.starts_with(label)).unwrap();
        assert!(by("HM4XL").makespan_seconds < by("HCXL").makespan_seconds);
        let cheapest = rows.iter().min_by_key(|r| r.cost.compute_cost).unwrap();
        assert!(
            cheapest.label.starts_with("HCXL"),
            "cheapest {}",
            cheapest.label
        );
    }

    #[test]
    fn scalability_efficiencies_sane() {
        let base = blast_sim_base_set(3);
        let points = scalability_study("blast", &base, AppModel::DEFAULT, 2, 4);
        assert_eq!(points.len(), 8);
        for p in &points {
            assert!(
                p.efficiency > 0.3 && p.efficiency <= 1.05,
                "{}: {}",
                p.platform,
                p.efficiency
            );
            assert!(p.makespan_seconds > 0.0);
        }
        // More files on the same fleet -> better efficiency (startup
        // amortizes) or at least comparable.
        let ec2_1 = points
            .iter()
            .find(|p| p.platform == "EC2" && p.n_tasks == 128)
            .unwrap();
        let ec2_2 = points
            .iter()
            .find(|p| p.platform == "EC2" && p.n_tasks == 256)
            .unwrap();
        assert!(ec2_2.efficiency > ec2_1.efficiency - 0.05);
    }

    #[test]
    fn azure_study_grid() {
        let tasks = crate::workload::blast_sim_tasks(8, 100);
        let grid = azure_instance_study(
            &tasks,
            AppModel::DEFAULT,
            &[
                (1, 1),
                (2, 1),
                (4, 1),
                (8, 1),
                (1, 2),
                (1, 4),
                (1, 8),
                (2, 4),
            ],
            5,
        );
        assert_eq!(grid.len(), 4);
        let (name, rows) = &grid[0];
        assert_eq!(name, "azure-small");
        // Small instances only admit 1x1.
        assert_eq!(rows.len(), 1);
        let (name, rows) = &grid[3];
        assert_eq!(name, "azure-xlarge");
        assert!(rows.len() >= 5, "XL admits many splits: {}", rows.len());
        // Figure 9's shape: Azure Large/XL beat Small for BLAST (DB fits).
        let small_best = grid[0]
            .1
            .iter()
            .map(|r| r.makespan_seconds)
            .fold(f64::INFINITY, f64::min);
        let xl_best = grid[3]
            .1
            .iter()
            .map(|r| r.makespan_seconds)
            .fold(f64::INFINITY, f64::min);
        assert!(xl_best < small_best, "xl {xl_best} vs small {small_best}");
    }

    #[test]
    fn emr_costs_like_classic_but_skips_storage_path() {
        // EMR (Hadoop-on-EC2) reads local disks, so for I/O-light tasks its
        // makespan tracks the Classic Cloud's within the dispatch overhead,
        // and the instance bill is computed the same way.
        let tasks = cap3_sim_tasks(256, 200);
        let (point, cost) = run_emr(
            ppc_compute::instance::EC2_HCXL,
            16,
            &tasks,
            AppModel::cap3(),
            9,
        );
        assert_eq!(point.cores, 128);
        assert!(point.efficiency > 0.8, "{}", point.efficiency);
        assert!(cost.compute_cost >= cost.amortized_cost);
        let classic = run_platform_sized(
            Platform::ClassicEc2,
            "cap3",
            &tasks,
            AppModel::cap3(),
            128,
            9,
        );
        let ratio = point.makespan_seconds / classic.makespan_seconds;
        assert!((0.8..1.3).contains(&ratio), "EMR vs classic ratio {ratio}");
    }

    #[test]
    fn platform_fleets() {
        assert_eq!(Platform::ClassicAzure.fleet("cap3", 128).n_nodes(), 128);
        assert_eq!(Platform::ClassicEc2.fleet("cap3", 128).n_nodes(), 16);
        assert_eq!(
            Platform::Hadoop.fleet("gtm", 128).itype().name,
            "bare-xeon24"
        );
        assert_eq!(Platform::Hadoop.workers_per_node("gtm"), 8);
        assert_eq!(
            Platform::Dryad.fleet("cap3", 128).itype().name,
            "bare-8x2.5-win"
        );
    }
}
