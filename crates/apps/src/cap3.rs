//! The Cap3 application: FASTA fragments in, contig FASTA out.

use ppc_bio::assembly::{assemble, AssemblyParams};
use ppc_bio::fasta;
use ppc_core::exec::Executor;
use ppc_core::task::TaskSpec;
use ppc_core::{PpcError, Result};

/// The "executable" every framework schedules for the Cap3 experiments:
/// parses one FASTA fragment file, assembles it, and emits the contigs (and
/// a singleton report) as FASTA — matching Cap3's file-in/file-out contract.
pub struct Cap3Executor {
    pub params: AssemblyParams,
}

impl Cap3Executor {
    pub fn new() -> Cap3Executor {
        Cap3Executor {
            params: AssemblyParams::default(),
        }
    }
}

impl Default for Cap3Executor {
    fn default() -> Self {
        Cap3Executor::new()
    }
}

impl Executor for Cap3Executor {
    fn run(&self, _spec: &TaskSpec, input: &[u8]) -> Result<Vec<u8>> {
        let reads = fasta::parse(input)?;
        if reads.is_empty() {
            return Err(PpcError::TaskFailed("empty FASTA input".into()));
        }
        let assembly = assemble(&reads, &self.params);
        let mut records = assembly.to_fasta();
        // Cap3 also reports unassembled reads (the `.cap.singlets` file);
        // we fold them into the same output object.
        for (i, id) in assembly.singletons.iter().enumerate() {
            records.push(
                ppc_bio::fasta::FastaRecord::new(format!("singlet{i:04}"), Vec::new())
                    .with_desc(id.clone()),
            );
        }
        Ok(fasta::format(&records))
    }

    fn name(&self) -> &str {
        "cap3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_bio::simulate::{random_genome, shotgun_reads, ShotgunParams};
    use ppc_core::task::ResourceProfile;

    fn sample_input(seed: u64) -> Vec<u8> {
        let g = random_genome(1200, seed);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 40,
                read_len_mean: 220.0,
                read_len_sd: 15.0,
                ..Default::default()
            },
            seed + 1,
        );
        fasta::format(&reads)
    }

    fn spec() -> TaskSpec {
        TaskSpec::new(0, "cap3", "f0.fa", ResourceProfile::cpu_bound(0.0))
    }

    #[test]
    fn produces_contig_fasta() {
        let exec = Cap3Executor::new();
        let out = exec.run(&spec(), &sample_input(3)).unwrap();
        let contigs = fasta::parse(&out).unwrap();
        assert!(!contigs.is_empty());
        assert!(contigs[0].id.starts_with("contig"));
        assert!(contigs[0].len() > 500, "assembled something substantial");
    }

    #[test]
    fn deterministic_and_idempotent() {
        // Idempotence is the property the Classic Cloud fault tolerance
        // depends on: re-running a task must give the identical output.
        let exec = Cap3Executor::new();
        let input = sample_input(4);
        let a = exec.run(&spec(), &input).unwrap();
        let b = exec.run(&spec(), &input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_garbage() {
        let exec = Cap3Executor::new();
        assert!(exec.run(&spec(), b"not fasta at all\x01").is_err());
        assert!(exec.run(&spec(), b"").is_err());
    }
}
