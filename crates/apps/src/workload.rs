//! Workload generators for every experiment.
//!
//! Two families:
//!
//! * `*_sim_tasks` — task lists with calibrated [`ppc_core::task::ResourceProfile`]s but no
//!   payloads, for the discrete-event simulations at paper scale
//!   (thousands of files, hundreds of cores).
//! * `*_native_inputs` — real payloads (FASTA files, point blocks) for the
//!   native runtimes in examples and integration tests.

use crate::calibrate::{blast_profile, cap3_profile, gtm_profile, NR_DB_BYTES};
use ppc_bio::fasta;
use ppc_bio::simulate::{
    protein_database, queries_from_db, random_genome, shotgun_reads, ProteinDbParams, ShotgunParams,
};
use ppc_core::rng::Pcg32;
use ppc_core::task::TaskSpec;
use ppc_gtm::linalg::Matrix;

// ---------------------------------------------------------------- sim view

/// Homogeneous Cap3 workload: `n_files` FASTA files of `reads_per_file`
/// reads each (the paper's replicated homogeneous sets, §4.2).
pub fn cap3_sim_tasks(n_files: usize, reads_per_file: usize) -> Vec<TaskSpec> {
    (0..n_files)
        .map(|i| {
            TaskSpec::new(
                i as u64,
                "cap3",
                format!("cap3/in/f{i:05}.fa"),
                cap3_profile(reads_per_file, 500),
            )
        })
        .collect()
}

/// Inhomogeneous Cap3 workload: log-normal spread of reads per file (the
/// §4.2 reference-\[13\] study's setting, used by the load-balance ablation).
pub fn cap3_sim_tasks_inhomogeneous(
    n_files: usize,
    mean_reads: usize,
    sigma: f64,
    seed: u64,
) -> Vec<TaskSpec> {
    let mut rng = Pcg32::new(seed);
    (0..n_files)
        .map(|i| {
            let mu = (mean_reads as f64).ln() - sigma * sigma / 2.0;
            let reads = rng.log_normal(mu, sigma).round().clamp(20.0, 20_000.0) as usize;
            TaskSpec::new(
                i as u64,
                "cap3",
                format!("cap3/in/f{i:05}.fa"),
                cap3_profile(reads, 500),
            )
        })
        .collect()
}

/// Homogeneous BLAST workload: files of `queries_per_file` queries against
/// the NR-sized database (§5.1's 64-file study).
pub fn blast_sim_tasks(n_files: usize, queries_per_file: usize) -> Vec<TaskSpec> {
    (0..n_files)
        .map(|i| {
            TaskSpec::new(
                i as u64,
                "blast",
                format!("blast/in/q{i:05}.fa"),
                blast_profile(queries_per_file, NR_DB_BYTES),
            )
        })
        .collect()
}

/// The §5.2 base set: 128 query files, *inhomogeneous* (query content makes
/// runtimes vary even at fixed query counts).
pub fn blast_sim_base_set(seed: u64) -> Vec<TaskSpec> {
    let mut rng = Pcg32::new(seed);
    (0..128)
        .map(|i| {
            let mut p = blast_profile(100, NR_DB_BYTES);
            // Content-dependent runtime spread: ±40% log-normal.
            p.cpu_seconds_ref *= rng.log_normal(0.0, 0.35);
            TaskSpec::new(i as u64, "blast", format!("blast/in/q{i:05}.fa"), p)
        })
        .collect()
}

/// GTM Interpolation workload: `n_files` splits of `points_per_file` points
/// (the paper: 264 files × 100k points of the 26M-point PubChem set, §6.2).
pub fn gtm_sim_tasks(n_files: usize, points_per_file: usize) -> Vec<TaskSpec> {
    (0..n_files)
        .map(|i| {
            TaskSpec::new(
                i as u64,
                "gtm",
                format!("gtm/in/p{i:05}.bin"),
                gtm_profile(points_per_file),
            )
        })
        .collect()
}

/// Replicate a base task set `times` times with fresh ids — the paper's
/// "replicated a query data set ... one to six times" scaling method.
pub fn replicate(base: &[TaskSpec], times: usize) -> Vec<TaskSpec> {
    let mut out = Vec::with_capacity(base.len() * times);
    let mut id = 0u64;
    for rep in 0..times {
        for t in base {
            let mut t = t.clone();
            t.id = ppc_core::task::TaskId(id);
            t.input_key = format!("rep{rep}/{}", t.input_key);
            t.output_key = format!("{}.out", t.input_key);
            id += 1;
            out.push(t);
        }
    }
    out
}

// ------------------------------------------------------------- native view

/// Real Cap3 inputs: each file is a shotgun read set from its own genome.
pub fn cap3_native_inputs(
    n_files: usize,
    reads_per_file: usize,
    genome_len: usize,
    seed: u64,
) -> Vec<(TaskSpec, Vec<u8>)> {
    (0..n_files)
        .map(|i| {
            let genome = random_genome(genome_len, seed ^ (i as u64) << 8);
            let reads = shotgun_reads(
                &genome,
                &ShotgunParams {
                    n_reads: reads_per_file,
                    read_len_mean: 220.0,
                    read_len_sd: 20.0,
                    ..Default::default()
                },
                seed ^ ((i as u64) << 8) ^ 1,
            );
            let payload = fasta::format(&reads);
            let spec = TaskSpec::new(
                i as u64,
                "cap3",
                format!("cap3/in/f{i:05}.fa"),
                cap3_profile(reads_per_file, 220),
            );
            (spec, payload)
        })
        .collect()
}

/// Real BLAST inputs: a shared database plus query files drawn from it.
pub fn blast_native_inputs(
    n_files: usize,
    queries_per_file: usize,
    db_params: &ProteinDbParams,
    seed: u64,
) -> (Vec<ppc_bio::fasta::FastaRecord>, Vec<(TaskSpec, Vec<u8>)>) {
    let db = protein_database(db_params, seed);
    let inputs = (0..n_files)
        .map(|i| {
            let queries =
                queries_from_db(&db, queries_per_file, 0.08, seed ^ ((i as u64 + 1) << 16));
            let payload = fasta::format(&queries);
            let spec = TaskSpec::new(
                i as u64,
                "blast",
                format!("blast/in/q{i:05}.fa"),
                blast_profile(queries_per_file, 0),
            );
            (spec, payload)
        })
        .collect();
    (db, inputs)
}

/// Real GTM inputs: point blocks from the fingerprint generator, all drawn
/// from the same cluster structure as a training sample.
pub fn gtm_native_inputs(
    n_files: usize,
    points_per_file: usize,
    dim: usize,
    seed: u64,
) -> (Matrix, Vec<(TaskSpec, Vec<u8>)>) {
    use ppc_gtm::data::{fingerprints, FingerprintParams};
    let total = points_per_file * (n_files + 1);
    let (all, _) = fingerprints(
        &FingerprintParams {
            n_points: total,
            dim,
            n_clusters: 4,
            flip_noise: 0.05,
        },
        seed,
    );
    // First block is the training sample; the rest are out-of-sample files.
    let take_rows = |from: usize, n: usize| -> Matrix {
        let mut m = Matrix::zeros(n, dim);
        for r in 0..n {
            for c in 0..dim {
                m[(r, c)] = all[(from + r, c)];
            }
        }
        m
    };
    let sample = take_rows(0, points_per_file);
    let inputs = (0..n_files)
        .map(|i| {
            let block = take_rows(points_per_file * (i + 1), points_per_file);
            let payload = crate::gtm::encode_points(&block);
            let spec = TaskSpec::new(
                i as u64,
                "gtm",
                format!("gtm/in/p{i:05}.bin"),
                gtm_profile(points_per_file),
            );
            (spec, payload)
        })
        .collect();
    (sample, inputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_task_counts_and_keys() {
        let cap3 = cap3_sim_tasks(200, 200);
        assert_eq!(cap3.len(), 200);
        assert!(cap3[7].input_key.contains("f00007"));
        let blast = blast_sim_tasks(64, 100);
        assert_eq!(blast.len(), 64);
        assert!(blast
            .iter()
            .all(|t| t.profile.shared_mem_bytes == NR_DB_BYTES));
        let gtm = gtm_sim_tasks(264, 100_000);
        assert_eq!(gtm.len(), 264);
        assert!(gtm.iter().all(|t| t.profile.mem_traffic_bytes > 0));
    }

    #[test]
    fn inhomogeneous_has_spread() {
        let tasks = cap3_sim_tasks_inhomogeneous(100, 400, 0.6, 5);
        let times: Vec<f64> = tasks.iter().map(|t| t.profile.cpu_seconds_ref).collect();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0, f64::max);
        assert!(max > 2.0 * min, "spread {min}..{max}");
    }

    #[test]
    fn blast_base_set_is_inhomogeneous_but_deterministic() {
        let a = blast_sim_base_set(1);
        let b = blast_sim_base_set(1);
        assert_eq!(a.len(), 128);
        assert_eq!(a[5].profile.cpu_seconds_ref, b[5].profile.cpu_seconds_ref);
        let distinct: std::collections::HashSet<u64> = a
            .iter()
            .map(|t| t.profile.cpu_seconds_ref.to_bits())
            .collect();
        assert!(distinct.len() > 100);
    }

    #[test]
    fn replicate_renames_and_renumbers() {
        let base = cap3_sim_tasks(4, 100);
        let r = replicate(&base, 3);
        assert_eq!(r.len(), 12);
        let ids: std::collections::HashSet<u64> = r.iter().map(|t| t.id.0).collect();
        assert_eq!(ids.len(), 12, "ids unique");
        assert!(r[4].input_key.starts_with("rep1/"));
        let keys: std::collections::HashSet<&String> = r.iter().map(|t| &t.input_key).collect();
        assert_eq!(keys.len(), 12, "keys unique");
    }

    #[test]
    fn native_cap3_inputs_are_valid_fasta() {
        let inputs = cap3_native_inputs(3, 30, 800, 9);
        assert_eq!(inputs.len(), 3);
        for (spec, payload) in &inputs {
            let recs = fasta::parse(payload).unwrap();
            assert_eq!(recs.len(), 30, "{}", spec.input_key);
        }
        // Different files come from different genomes.
        assert_ne!(inputs[0].1, inputs[1].1);
    }

    #[test]
    fn native_blast_inputs_share_db() {
        let (db, inputs) = blast_native_inputs(2, 5, &ProteinDbParams::default(), 17);
        assert!(!db.is_empty());
        for (_, payload) in &inputs {
            assert_eq!(fasta::parse(payload).unwrap().len(), 5);
        }
    }

    #[test]
    fn native_gtm_inputs_decode() {
        let (sample, inputs) = gtm_native_inputs(2, 50, 20, 23);
        assert_eq!(sample.rows(), 50);
        for (_, payload) in &inputs {
            let m = crate::gtm::decode_points(payload).unwrap();
            assert_eq!(m.rows(), 50);
            assert_eq!(m.cols(), 20);
        }
    }
}
