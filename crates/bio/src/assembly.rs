//! Greedy overlap-layout-consensus sequence assembly (the Cap3 analog).
//!
//! Cap3 (Huang & Madan 1999) "removes the poor regions of the DNA
//! fragments, calculates the overlaps between the fragments, identifies and
//! removes the false overlaps, joins the fragments to form contigs ... and
//! finally through multiple sequence alignment generates consensus
//! sequences" (paper §4). This module implements each of those stages:
//!
//! 1. **Trimming** — strip error-dense, `N`-rich read ends.
//! 2. **Orientation** — resolve strand (reads may come from either strand)
//!    by k-mer voting, then work on a consistent forward orientation.
//! 3. **Overlap detection** — k-mer-seeded candidate offsets between read
//!    pairs, verified by banded identity check; false overlaps are rejected
//!    by the identity threshold.
//! 4. **Greedy layout** — merge best-overlap-first with union-find,
//!    re-verifying at the contig level before each join.
//! 5. **Consensus** — per-column base voting over the layout profile
//!    (the practical equivalent of Cap3's multiple alignment step).
//!
//! Runtime depends on the input's content (coverage, repeats, errors),
//! which is exactly the property the paper relies on Cap3 having.

use crate::fasta::{reverse_complement, FastaRecord};
use std::collections::HashMap;

/// Assembly tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct AssemblyParams {
    /// Seed k-mer length for overlap candidates.
    pub k: usize,
    /// Minimum acceptable overlap length, bases.
    pub min_overlap: usize,
    /// Minimum identity over the overlap region.
    pub min_identity: f64,
    /// Trim poor (N-rich) read ends before assembly.
    pub trim: bool,
    /// Trim window size.
    pub trim_window: usize,
    /// Maximum tolerated fraction of N/junk per window.
    pub trim_max_junk: f64,
}

impl Default for AssemblyParams {
    fn default() -> Self {
        AssemblyParams {
            k: 16,
            min_overlap: 30,
            min_identity: 0.9,
            trim: true,
            trim_window: 10,
            trim_max_junk: 0.2,
        }
    }
}

/// One assembled contig.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Contig {
    /// The consensus sequence.
    pub consensus: Vec<u8>,
    /// Ids of the reads laid out in this contig.
    pub read_ids: Vec<String>,
}

impl Contig {
    pub fn n_reads(&self) -> usize {
        self.read_ids.len()
    }
}

/// Assembly summary statistics (the numbers Cap3 users look at first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssemblyStats {
    pub n_contigs: usize,
    pub n_singletons: usize,
    /// Total assembled bases across contigs.
    pub total_bp: usize,
    pub largest_bp: usize,
    pub n50: usize,
    /// Fewest contigs covering half the assembly.
    pub l50: usize,
    /// Reads placed into contigs (excludes singletons).
    pub reads_placed: usize,
}

/// The result of assembling one read set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assembly {
    /// Multi-read contigs, longest first.
    pub contigs: Vec<Contig>,
    /// Ids of reads that joined nothing.
    pub singletons: Vec<String>,
}

impl Assembly {
    /// N50 of the contig set (0 when there are no contigs).
    pub fn n50(&self) -> usize {
        let mut lens: Vec<usize> = self.contigs.iter().map(|c| c.consensus.len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = lens.iter().sum();
        let mut acc = 0;
        for l in lens {
            acc += l;
            if acc * 2 >= total {
                return l;
            }
        }
        0
    }

    /// Summary statistics over the assembly.
    pub fn stats(&self) -> AssemblyStats {
        let mut lens: Vec<usize> = self.contigs.iter().map(|c| c.consensus.len()).collect();
        lens.sort_unstable_by(|a, b| b.cmp(a));
        let total_bp: usize = lens.iter().sum();
        // L50: smallest number of contigs covering half the assembly.
        let mut acc = 0;
        let mut l50 = 0;
        for l in &lens {
            acc += l;
            l50 += 1;
            if acc * 2 >= total_bp {
                break;
            }
        }
        AssemblyStats {
            n_contigs: self.contigs.len(),
            n_singletons: self.singletons.len(),
            total_bp,
            largest_bp: lens.first().copied().unwrap_or(0),
            n50: self.n50(),
            l50: if total_bp == 0 { 0 } else { l50 },
            reads_placed: self.contigs.iter().map(Contig::n_reads).sum(),
        }
    }

    /// Render as FASTA: contigs then singleton markers.
    pub fn to_fasta(&self) -> Vec<FastaRecord> {
        self.contigs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                FastaRecord::new(format!("contig{i:04}"), c.consensus.clone())
                    .with_desc(format!("reads={}", c.n_reads()))
            })
            .collect()
    }
}

/// Trim `N`-dense ends from a read.
fn trim_read(seq: &[u8], window: usize, max_junk: f64) -> (usize, usize) {
    let junk = |b: u8| b == b'N';
    let w = window.min(seq.len()).max(1);
    let ok = |start: usize| {
        let slice = &seq[start..(start + w).min(seq.len())];
        let junk_count = slice.iter().filter(|&&b| junk(b)).count();
        (junk_count as f64) <= max_junk * slice.len() as f64 && !junk(seq[start])
    };
    let mut lo = 0;
    while lo + w <= seq.len() && !ok(lo) {
        lo += 1;
    }
    let mut hi = seq.len();
    while hi > lo {
        let start = hi.saturating_sub(w).max(lo);
        let slice = &seq[start..hi];
        let junk_count = slice.iter().filter(|&&b| junk(b)).count();
        if (junk_count as f64) <= max_junk * slice.len() as f64 && !junk(seq[hi - 1]) {
            break;
        }
        hi -= 1;
    }
    (lo, hi.max(lo))
}

/// Count mismatches between two equal-length slices.
fn mismatches(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// A verified overlap: read `j` starts `offset ≥ 0` bases after read `i`
/// (in the oriented coordinate system), scored by matching bases.
#[derive(Debug, Clone, Copy)]
struct Overlap {
    i: usize,
    j: usize,
    offset: i64,
    score: usize,
}

/// Union-find over reads -> contig roots.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        self.parent[rb] = ra;
        ra
    }
}

fn base_index(b: u8) -> usize {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        _ => 4,
    }
}

const BASES: [u8; 5] = [b'A', b'C', b'G', b'T', b'N'];

/// A contig under construction: a per-column base-vote profile plus member
/// reads at their layout offsets.
#[derive(Clone)]
struct ContigBuild {
    profile: Vec<[u32; 5]>,
    reads: Vec<(usize, i64)>,
}

impl ContigBuild {
    fn from_read(idx: usize, seq: &[u8]) -> ContigBuild {
        let mut profile = vec![[0u32; 5]; seq.len()];
        for (col, &b) in profile.iter_mut().zip(seq) {
            col[base_index(b)] += 1;
        }
        ContigBuild {
            profile,
            reads: vec![(idx, 0)],
        }
    }

    fn consensus(&self) -> Vec<u8> {
        self.profile
            .iter()
            .map(|col| {
                // Prefer real bases over N on ties.
                let mut best = 4;
                let mut best_count = 0;
                for (b, &c) in col.iter().enumerate() {
                    if c > best_count || (c == best_count && c > 0 && b < best) {
                        best = b;
                        best_count = c;
                    }
                }
                BASES[best]
            })
            .collect()
    }

    /// Merge `other` into self with `other`'s origin at `place` (may be
    /// negative, shifting self).
    fn merge(&mut self, mut other: ContigBuild, mut place: i64) {
        if place < 0 {
            let shift = (-place) as usize;
            let mut shifted = vec![[0u32; 5]; shift];
            shifted.append(&mut self.profile);
            self.profile = shifted;
            for (_, off) in self.reads.iter_mut() {
                *off += shift as i64;
            }
            place = 0;
        }
        let place = place as usize;
        let needed = place + other.profile.len();
        if needed > self.profile.len() {
            self.profile.resize(needed, [0u32; 5]);
        }
        for (i, col) in other.profile.iter().enumerate() {
            for (b, &c) in col.iter().enumerate() {
                self.profile[place + i][b] += c;
            }
        }
        for (idx, off) in other.reads.drain(..) {
            self.reads.push((idx, off + place as i64));
        }
    }
}

/// Assemble a set of reads into contigs.
pub fn assemble(reads: &[FastaRecord], params: &AssemblyParams) -> Assembly {
    if reads.is_empty() {
        return Assembly {
            contigs: Vec::new(),
            singletons: Vec::new(),
        };
    }
    let k = params.k;

    // --- 1. Trim poor regions -------------------------------------------
    let trimmed: Vec<Vec<u8>> = reads
        .iter()
        .map(|r| {
            if params.trim {
                let (lo, hi) = trim_read(&r.seq, params.trim_window, params.trim_max_junk);
                r.seq[lo..hi].to_vec()
            } else {
                r.seq.clone()
            }
        })
        .collect();

    // --- 2. Orientation by k-mer voting ---------------------------------
    let oriented = orient_reads(&trimmed, k);

    // --- 3. Overlap detection -------------------------------------------
    let overlaps = find_overlaps(&oriented, params);

    // --- 4. Greedy layout -------------------------------------------------
    let mut sorted = overlaps;
    sorted.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then(a.i.cmp(&b.i))
            .then(a.j.cmp(&b.j))
    });

    let mut dsu = Dsu::new(oriented.len());
    let mut builds: HashMap<usize, ContigBuild> = oriented
        .iter()
        .enumerate()
        .map(|(i, seq)| (i, ContigBuild::from_read(i, seq)))
        .collect();
    // Per-read offset within its current contig.
    let mut read_offset: Vec<i64> = vec![0; oriented.len()];

    for ov in sorted {
        let (ri, rj) = (dsu.find(ov.i), dsu.find(ov.j));
        if ri == rj {
            continue;
        }
        // Place contig B so that read j lands `ov.offset` after read i.
        let place = read_offset[ov.i] + ov.offset - read_offset[ov.j];
        // Contig-level verification (rejects false overlaps / repeats).
        let a = &builds[&ri];
        let b = &builds[&rj];
        if !contig_merge_ok(a, b, place, params) {
            continue;
        }
        let b = builds.remove(&rj).expect("contig exists");
        let a = builds.get_mut(&ri).expect("contig exists");
        a.merge(b, place);
        // Refresh member offsets (merge may have shifted everything).
        for &(idx, off) in &a.reads {
            read_offset[idx] = off;
        }
        let new_root = dsu.union(ri, rj);
        if new_root != ri {
            let moved = builds.remove(&ri).expect("contig exists");
            builds.insert(new_root, moved);
        }
    }

    // --- 5. Consensus ------------------------------------------------------
    let mut contigs = Vec::new();
    let mut singletons = Vec::new();
    let mut roots: Vec<usize> = builds.keys().copied().collect();
    roots.sort_unstable();
    for root in roots {
        let build = &builds[&root];
        if build.reads.len() == 1 {
            singletons.push(reads[build.reads[0].0].id.clone());
        } else {
            let mut ids: Vec<String> = build
                .reads
                .iter()
                .map(|&(i, _)| reads[i].id.clone())
                .collect();
            ids.sort();
            contigs.push(Contig {
                consensus: build.consensus(),
                read_ids: ids,
            });
        }
    }
    contigs.sort_by_key(|c| std::cmp::Reverse(c.consensus.len()));
    singletons.sort();
    Assembly {
        contigs,
        singletons,
    }
}

/// Check that placing `b` at `place` against `a` keeps the overlapping
/// consensus region above the identity threshold.
fn contig_merge_ok(a: &ContigBuild, b: &ContigBuild, place: i64, params: &AssemblyParams) -> bool {
    let a_len = a.profile.len() as i64;
    let b_len = b.profile.len() as i64;
    let lo = place.max(0);
    let hi = (place + b_len).min(a_len);
    if hi <= lo {
        return false; // no overlap at all: a dovetail join must overlap
    }
    let overlap = (hi - lo) as usize;
    if overlap < params.min_overlap.min(a.profile.len()).min(b.profile.len()) {
        return false;
    }
    let ca = a.consensus();
    let cb = b.consensus();
    let a_slice = &ca[lo as usize..hi as usize];
    let b_slice = &cb[(lo - place) as usize..(hi - place) as usize];
    let mm = mismatches(a_slice, b_slice);
    (mm as f64) <= (1.0 - params.min_identity) * overlap as f64
}

/// Resolve read strands: greedy BFS over the k-mer-sharing graph, flipping
/// reads whose reverse complement shares more k-mers with already-oriented
/// neighbours than their forward sequence does.
fn orient_reads(reads: &[Vec<u8>], k: usize) -> Vec<Vec<u8>> {
    let n = reads.len();
    // k-mer -> read set (forward orientation of stored reads).
    let mut fwd_index: HashMap<&[u8], Vec<usize>> = HashMap::new();
    for (i, seq) in reads.iter().enumerate() {
        if seq.len() >= k {
            for w in seq.windows(k) {
                fwd_index.entry(w).or_default().push(i);
            }
        }
    }
    // Count fwd-fwd and fwd-rc shared k-mers per pair.
    let mut fwd_votes: HashMap<(usize, usize), usize> = HashMap::new();
    let mut rc_votes: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, seq) in reads.iter().enumerate() {
        if seq.len() < k {
            continue;
        }
        for w in seq.windows(k) {
            if let Some(hits) = fwd_index.get(w) {
                for &j in hits {
                    if j > i {
                        *fwd_votes.entry((i, j)).or_default() += 1;
                    }
                }
            }
        }
        let rc = reverse_complement(seq);
        for w in rc.windows(k) {
            if let Some(hits) = fwd_index.get(w) {
                for &j in hits {
                    if j != i {
                        let key = if i < j { (i, j) } else { (j, i) };
                        *rc_votes.entry(key).or_default() += 1;
                    }
                }
            }
        }
    }
    // Build adjacency with relative-flip labels.
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    let add =
        |votes: &HashMap<(usize, usize), usize>, flip: bool, adj: &mut Vec<Vec<(usize, bool)>>| {
            for (&(i, j), &v) in votes {
                let other = if flip {
                    fwd_votes.get(&(i, j)).copied().unwrap_or(0)
                } else {
                    rc_votes.get(&(i, j)).copied().unwrap_or(0)
                };
                let own = v;
                if own >= 2 && own > other {
                    adj[i].push((j, flip));
                    adj[j].push((i, flip));
                }
            }
        };
    add(&fwd_votes.clone(), false, &mut adj);
    add(&rc_votes.clone(), true, &mut adj);

    // BFS strand assignment.
    let mut flip = vec![false; n];
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &(v, rel_flip) in &adj[u] {
                if !visited[v] {
                    visited[v] = true;
                    flip[v] = flip[u] ^ rel_flip;
                    queue.push_back(v);
                }
            }
        }
    }
    reads
        .iter()
        .enumerate()
        .map(|(i, seq)| {
            if flip[i] {
                reverse_complement(seq)
            } else {
                seq.clone()
            }
        })
        .collect()
}

/// Find verified overlaps between oriented reads via shared k-mer seeding.
fn find_overlaps(reads: &[Vec<u8>], params: &AssemblyParams) -> Vec<Overlap> {
    let k = params.k;
    let mut index: HashMap<&[u8], Vec<(usize, usize)>> = HashMap::new();
    for (i, seq) in reads.iter().enumerate() {
        if seq.len() >= k {
            for (pos, w) in seq.windows(k).enumerate() {
                index.entry(w).or_default().push((i, pos));
            }
        }
    }
    // Candidate offsets per pair.
    let mut candidates: HashMap<(usize, usize), Vec<i64>> = HashMap::new();
    for hits in index.values() {
        // Hyper-repetitive k-mers generate mostly false candidates and
        // quadratic work; Cap3 similarly masks repeats.
        if hits.len() < 2 || hits.len() > 64 {
            continue;
        }
        for a in 0..hits.len() {
            for b in (a + 1)..hits.len() {
                let (i, pi) = hits[a];
                let (j, pj) = hits[b];
                if i == j {
                    continue;
                }
                let (i, pi, j, pj) = if i < j {
                    (i, pi, j, pj)
                } else {
                    (j, pj, i, pi)
                };
                // Read j starts (pi - pj) after read i starts.
                let offset = pi as i64 - pj as i64;
                let entry = candidates.entry((i, j)).or_default();
                if !entry.contains(&offset) {
                    entry.push(offset);
                }
            }
        }
    }
    // Verify each candidate offset, keep the best per pair.
    let mut overlaps = Vec::new();
    for ((i, j), offsets) in candidates {
        let (si, sj) = (&reads[i], &reads[j]);
        let mut best: Option<Overlap> = None;
        for offset in offsets {
            // Overlap window in i's coordinates.
            let lo = offset.max(0);
            let hi = (offset + sj.len() as i64).min(si.len() as i64);
            if hi <= lo {
                continue;
            }
            let len = (hi - lo) as usize;
            if len < params.min_overlap {
                continue;
            }
            let a = &si[lo as usize..hi as usize];
            let b = &sj[(lo - offset) as usize..(hi - offset) as usize];
            let mm = mismatches(a, b);
            if (mm as f64) > (1.0 - params.min_identity) * len as f64 {
                continue;
            }
            let score = len - mm;
            if best.map(|o| score > o.score).unwrap_or(true) {
                best = Some(Overlap {
                    i,
                    j,
                    offset,
                    score,
                });
            }
        }
        if let Some(o) = best {
            overlaps.push(o);
        }
    }
    overlaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{random_genome, shotgun_reads, ShotgunParams};

    fn identity(a: &[u8], b: &[u8]) -> f64 {
        // Best ungapped diagonal alignment over all offsets, requiring the
        // overlap to cover at least 80% of the shorter sequence (contigs may
        // carry a few junk bases past the genome ends).
        let min_overlap = (a.len().min(b.len()) * 4) / 5;
        let mut best = 0.0f64;
        for shift in -(b.len() as i64 - 1)..(a.len() as i64) {
            let lo_a = shift.max(0) as usize;
            let hi_a = ((shift + b.len() as i64) as usize).min(a.len());
            if hi_a <= lo_a || hi_a - lo_a < min_overlap {
                continue;
            }
            let a_sl = &a[lo_a..hi_a];
            let b_sl = &b[(lo_a as i64 - shift) as usize..(hi_a as i64 - shift) as usize];
            let mm = mismatches(a_sl, b_sl);
            best = best.max(1.0 - mm as f64 / a_sl.len() as f64);
        }
        best
    }

    #[test]
    fn two_overlapping_reads_one_contig() {
        // genome: 0..150, reads [0..100) and [50..150).
        let g = random_genome(150, 1);
        let reads = vec![
            FastaRecord::new("r0", g[0..100].to_vec()),
            FastaRecord::new("r1", g[50..150].to_vec()),
        ];
        let asm = assemble(&reads, &AssemblyParams::default());
        assert_eq!(asm.contigs.len(), 1);
        assert!(asm.singletons.is_empty());
        assert_eq!(asm.contigs[0].consensus, g);
        assert_eq!(asm.contigs[0].read_ids, vec!["r0", "r1"]);
    }

    #[test]
    fn disjoint_reads_stay_singletons() {
        let g = random_genome(4000, 2);
        let reads = vec![
            FastaRecord::new("a", g[0..300].to_vec()),
            FastaRecord::new("b", g[2000..2300].to_vec()),
        ];
        let asm = assemble(&reads, &AssemblyParams::default());
        assert!(asm.contigs.is_empty());
        assert_eq!(asm.singletons, vec!["a", "b"]);
    }

    #[test]
    fn clean_shotgun_reassembles_genome() {
        let g = random_genome(2000, 3);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 60,
                read_len_mean: 250.0,
                read_len_sd: 20.0,
                ..Default::default()
            },
            4,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        assert!(!asm.contigs.is_empty());
        let longest = &asm.contigs[0].consensus;
        assert!(
            longest.len() as f64 > 0.8 * g.len() as f64,
            "longest contig {} of {}",
            longest.len(),
            g.len()
        );
        assert!(
            identity(longest, &g) > 0.99,
            "identity {}",
            identity(longest, &g)
        );
    }

    #[test]
    fn noisy_reads_still_assemble() {
        let g = random_genome(1500, 5);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 80,
                read_len_mean: 250.0,
                read_len_sd: 20.0,
                error_rate: 0.01,
                ..Default::default()
            },
            6,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        let longest = &asm.contigs[0].consensus;
        assert!(
            longest.len() as f64 > 0.7 * g.len() as f64,
            "longest {}",
            longest.len()
        );
        assert!(
            identity(longest, &g) > 0.97,
            "identity {}",
            identity(longest, &g)
        );
    }

    #[test]
    fn reverse_strand_reads_are_oriented() {
        let g = random_genome(1200, 7);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 60,
                read_len_mean: 250.0,
                read_len_sd: 10.0,
                reverse_strand_p: 0.5,
                ..Default::default()
            },
            8,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        assert!(!asm.contigs.is_empty());
        let longest = &asm.contigs[0].consensus;
        let fwd = identity(longest, &g);
        assert!(fwd > 0.95, "oriented assembly identity {fwd}");
        assert!(longest.len() as f64 > 0.7 * g.len() as f64);
    }

    #[test]
    fn poor_ends_are_trimmed() {
        let g = random_genome(800, 9);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 40,
                read_len_mean: 200.0,
                read_len_sd: 10.0,
                poor_end_len: 25,
                ..Default::default()
            },
            10,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        assert!(!asm.contigs.is_empty());
        let longest = &asm.contigs[0].consensus;
        // Consensus should be nearly N-free despite junky read ends.
        let n_frac = longest.iter().filter(|&&b| b == b'N').count() as f64 / longest.len() as f64;
        assert!(n_frac < 0.05, "n_frac {n_frac}");
        // Low-coverage contig ends can retain a few junk bases that slipped
        // the trim window; the body must still match the genome closely.
        assert!(
            identity(longest, &g) > 0.93,
            "identity {}",
            identity(longest, &g)
        );
    }

    #[test]
    fn every_read_accounted_for() {
        let g = random_genome(1000, 11);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 50,
                read_len_mean: 150.0,
                ..Default::default()
            },
            12,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        let mut seen: Vec<String> = asm.singletons.clone();
        for c in &asm.contigs {
            seen.extend(c.read_ids.iter().cloned());
        }
        seen.sort();
        let mut expect: Vec<String> = reads.iter().map(|r| r.id.clone()).collect();
        expect.sort();
        assert_eq!(seen, expect);
    }

    #[test]
    fn empty_input() {
        let asm = assemble(&[], &AssemblyParams::default());
        assert!(asm.contigs.is_empty() && asm.singletons.is_empty());
        assert_eq!(asm.n50(), 0);
    }

    #[test]
    fn stats_summarize_assembly() {
        let asm = Assembly {
            contigs: vec![
                Contig {
                    consensus: vec![b'A'; 100],
                    read_ids: vec!["a".into(), "b".into(), "c".into()],
                },
                Contig {
                    consensus: vec![b'A'; 60],
                    read_ids: vec!["d".into(), "e".into()],
                },
                Contig {
                    consensus: vec![b'A'; 40],
                    read_ids: vec!["f".into(), "g".into()],
                },
            ],
            singletons: vec!["h".into()],
        };
        let s = asm.stats();
        assert_eq!(s.n_contigs, 3);
        assert_eq!(s.n_singletons, 1);
        assert_eq!(s.total_bp, 200);
        assert_eq!(s.largest_bp, 100);
        assert_eq!(s.n50, 100);
        assert_eq!(s.l50, 1);
        assert_eq!(s.reads_placed, 7);
        // Empty assembly degenerates cleanly.
        let empty = Assembly {
            contigs: vec![],
            singletons: vec![],
        };
        let e = empty.stats();
        assert_eq!((e.n_contigs, e.total_bp, e.n50, e.l50), (0, 0, 0, 0));
    }

    #[test]
    fn n50_computation() {
        let asm = Assembly {
            contigs: vec![
                Contig {
                    consensus: vec![b'A'; 100],
                    read_ids: vec!["a".into(), "b".into()],
                },
                Contig {
                    consensus: vec![b'A'; 60],
                    read_ids: vec!["c".into(), "d".into()],
                },
                Contig {
                    consensus: vec![b'A'; 40],
                    read_ids: vec!["e".into(), "f".into()],
                },
            ],
            singletons: vec![],
        };
        // total 200; cumulative 100 >= 100 -> N50 = 100.
        assert_eq!(asm.n50(), 100);
    }

    #[test]
    fn trim_read_bounds() {
        let seq = b"NNNNNACGTACGTACGTACGTNNNNN";
        let (lo, hi) = trim_read(seq, 5, 0.2);
        assert_eq!(&seq[lo..hi], b"ACGTACGTACGTACGT");
        // Clean read untouched.
        let clean = b"ACGTACGTACGT";
        let (lo, hi) = trim_read(clean, 5, 0.2);
        assert_eq!((lo, hi), (0, clean.len()));
        // All junk trims to nothing.
        let junk = b"NNNNNNNN";
        let (lo, hi) = trim_read(junk, 4, 0.2);
        assert!(hi <= lo + 1, "lo={lo} hi={hi}");
    }

    #[test]
    fn fasta_output_shape() {
        let g = random_genome(600, 13);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 30,
                read_len_mean: 150.0,
                ..Default::default()
            },
            14,
        );
        let asm = assemble(&reads, &AssemblyParams::default());
        let fasta = asm.to_fasta();
        assert_eq!(fasta.len(), asm.contigs.len());
        assert!(fasta[0].desc.as_deref().unwrap().starts_with("reads="));
    }
}
