//! The genetic code and six-frame translation.
//!
//! The paper describes BLAST as a tool "to translate a FASTA formatted
//! nucleotide query and to compare it to a protein database" (§5) — i.e.
//! blastx: translate the DNA in all six reading frames (three offsets on
//! each strand) and search each translation. This module supplies the
//! translation; [`crate::blast::BlastDb::search_translated`] does the rest.

use crate::fasta::reverse_complement;

/// Translate one codon (standard genetic code); `*` is a stop, `X` covers
/// codons containing ambiguous bases.
pub fn translate_codon(codon: &[u8]) -> u8 {
    debug_assert_eq!(codon.len(), 3);
    let idx = |b: u8| -> Option<usize> {
        match b.to_ascii_uppercase() {
            b'T' => Some(0),
            b'C' => Some(1),
            b'A' => Some(2),
            b'G' => Some(3),
            _ => None,
        }
    };
    match (idx(codon[0]), idx(codon[1]), idx(codon[2])) {
        (Some(a), Some(b), Some(c)) => GENETIC_CODE[a * 16 + b * 4 + c],
        _ => b'X',
    }
}

/// The standard genetic code in TCAG order (row-major over 3 positions).
#[rustfmt::skip]
const GENETIC_CODE: [u8; 64] = [
    // TTT TTC TTA TTG   TCT TCC TCA TCG   TAT TAC TAA TAG   TGT TGC TGA TGG
    b'F', b'F', b'L', b'L',  b'S', b'S', b'S', b'S',  b'Y', b'Y', b'*', b'*',  b'C', b'C', b'*', b'W',
    // CTT CTC CTA CTG   CCT CCC CCA CCG   CAT CAC CAA CAG   CGT CGC CGA CGG
    b'L', b'L', b'L', b'L',  b'P', b'P', b'P', b'P',  b'H', b'H', b'Q', b'Q',  b'R', b'R', b'R', b'R',
    // ATT ATC ATA ATG   ACT ACC ACA ACG   AAT AAC AAA AAG   AGT AGC AGA AGG
    b'I', b'I', b'I', b'M',  b'T', b'T', b'T', b'T',  b'N', b'N', b'K', b'K',  b'S', b'S', b'R', b'R',
    // GTT GTC GTA GTG   GCT GCC GCA GCG   GAT GAC GAA GAG   GGT GGC GGA GGG
    b'V', b'V', b'V', b'V',  b'A', b'A', b'A', b'A',  b'D', b'D', b'E', b'E',  b'G', b'G', b'G', b'G',
];

/// Translate a DNA sequence in one frame (0, 1, or 2); stops become `*`.
pub fn translate_frame(dna: &[u8], frame: usize) -> Vec<u8> {
    assert!(frame < 3, "frame must be 0..3");
    dna[frame..].chunks_exact(3).map(translate_codon).collect()
}

/// A translated reading frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// 1, 2, 3 for the forward strand; -1, -2, -3 for the reverse.
    pub frame: i8,
    pub protein: Vec<u8>,
}

/// All six reading frames of a DNA sequence (blastx's query preparation).
pub fn six_frames(dna: &[u8]) -> Vec<Frame> {
    let rc = reverse_complement(dna);
    let mut frames = Vec::with_capacity(6);
    for f in 0..3usize {
        if dna.len() >= f + 3 {
            frames.push(Frame {
                frame: (f + 1) as i8,
                protein: translate_frame(dna, f),
            });
        }
        if rc.len() >= f + 3 {
            frames.push(Frame {
                frame: -((f + 1) as i8),
                protein: translate_frame(&rc, f),
            });
        }
    }
    frames
}

/// Reverse-translate a protein into one arbitrary valid DNA coding sequence
/// (testing helper: lets tests build DNA whose translation is known).
pub fn arbitrary_coding_dna(protein: &[u8]) -> Vec<u8> {
    let mut dna = Vec::with_capacity(protein.len() * 3);
    for &aa in protein {
        // Linear scan of the code table for any codon of this amino acid.
        let pos = GENETIC_CODE
            .iter()
            .position(|&c| c == aa.to_ascii_uppercase())
            .unwrap_or(0);
        const TCAG: [u8; 4] = [b'T', b'C', b'A', b'G'];
        dna.push(TCAG[pos / 16]);
        dna.push(TCAG[(pos / 4) % 4]);
        dna.push(TCAG[pos % 4]);
    }
    dna
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_codons() {
        assert_eq!(translate_codon(b"ATG"), b'M', "start codon");
        assert_eq!(translate_codon(b"TAA"), b'*');
        assert_eq!(translate_codon(b"TAG"), b'*');
        assert_eq!(translate_codon(b"TGA"), b'*');
        assert_eq!(translate_codon(b"TGG"), b'W');
        assert_eq!(translate_codon(b"GGG"), b'G');
        assert_eq!(translate_codon(b"ANA"), b'X', "ambiguous base");
        assert_eq!(translate_codon(b"atg"), b'M', "case-insensitive");
    }

    #[test]
    fn frame_translation() {
        // ATG GCC TGA -> M A *
        let dna = b"ATGGCCTGA";
        assert_eq!(translate_frame(dna, 0), b"MA*");
        // frame 1 drops the first base: TGG CCT GA -> W P
        assert_eq!(translate_frame(dna, 1), b"WP");
    }

    #[test]
    fn six_frames_count_and_strands() {
        let dna = b"ATGGCCAAATTTGGG";
        let frames = six_frames(dna);
        assert_eq!(frames.len(), 6);
        let labels: Vec<i8> = frames.iter().map(|f| f.frame).collect();
        assert_eq!(labels, vec![1, -1, 2, -2, 3, -3]);
        // Frame +1 translates directly.
        assert_eq!(frames[0].protein, b"MAKFG");
    }

    #[test]
    fn reverse_translation_round_trips() {
        let protein = b"MKVLAATGLRWQYHNDE";
        let dna = arbitrary_coding_dna(protein);
        assert_eq!(dna.len(), protein.len() * 3);
        assert_eq!(translate_frame(&dna, 0), protein.to_vec());
    }

    #[test]
    fn code_table_sanity() {
        // 61 coding codons + 3 stops.
        let stops = GENETIC_CODE.iter().filter(|&&c| c == b'*').count();
        assert_eq!(stops, 3);
        // Every standard amino acid is encoded by at least one codon.
        for aa in crate::matrix::AMINO_ACIDS {
            assert!(GENETIC_CODE.contains(&aa), "{} missing", aa as char);
        }
    }

    #[test]
    fn short_sequences() {
        assert!(six_frames(b"AT").is_empty());
        assert_eq!(six_frames(b"ATG").len(), 2, "only frame ±1 fits");
    }
}
