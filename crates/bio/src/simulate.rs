//! Synthetic data generators.
//!
//! The paper's inputs are proprietary or impractically large (hundreds of
//! FASTA fragment files; NCBI's 8.7 GB NR protein database; real query
//! sets). These generators produce scaled-down synthetic equivalents with
//! the *structure* the kernels care about: shotgun reads genuinely overlap
//! and reassemble; the protein database has family structure so queries
//! genuinely hit.

use crate::fasta::{reverse_complement, FastaRecord};
use ppc_core::rng::Pcg32;

const DNA: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// A uniform random genome of `len` bases.
pub fn random_genome(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Pcg32::new(seed);
    (0..len).map(|_| DNA[rng.next_below(4) as usize]).collect()
}

/// Parameters for shotgun read simulation.
#[derive(Debug, Clone, Copy)]
pub struct ShotgunParams {
    pub n_reads: usize,
    /// Mean read length (Sanger-era, like Cap3's inputs: ~500 bp).
    pub read_len_mean: f64,
    pub read_len_sd: f64,
    /// Per-base substitution error probability.
    pub error_rate: f64,
    /// Probability a read comes from the reverse strand.
    pub reverse_strand_p: f64,
    /// Length of low-quality junk appended to read ends (exercises the
    /// assembler's trimming stage); 0 disables.
    pub poor_end_len: usize,
}

impl Default for ShotgunParams {
    fn default() -> Self {
        ShotgunParams {
            n_reads: 200,
            read_len_mean: 500.0,
            read_len_sd: 50.0,
            error_rate: 0.0,
            reverse_strand_p: 0.0,
            poor_end_len: 0,
        }
    }
}

/// Sample shotgun reads from a genome.
pub fn shotgun_reads(genome: &[u8], params: &ShotgunParams, seed: u64) -> Vec<FastaRecord> {
    assert!(!genome.is_empty(), "empty genome");
    let mut rng = Pcg32::new(seed);
    let mut reads = Vec::with_capacity(params.n_reads);
    for i in 0..params.n_reads {
        let len = rng
            .normal_with(params.read_len_mean, params.read_len_sd)
            .max(20.0) as usize;
        let len = len.min(genome.len());
        let start = rng.next_below((genome.len() - len + 1) as u32) as usize;
        let mut seq = genome[start..start + len].to_vec();
        // Substitution errors.
        if params.error_rate > 0.0 {
            for b in seq.iter_mut() {
                if rng.chance(params.error_rate) {
                    *b = DNA[rng.next_below(4) as usize];
                }
            }
        }
        // Strand flip.
        let flipped = params.reverse_strand_p > 0.0 && rng.chance(params.reverse_strand_p);
        if flipped {
            seq = reverse_complement(&seq);
        }
        // Low-quality ends: error-dense junk with N's, like chromatogram
        // tails Cap3 trims.
        if params.poor_end_len > 0 {
            let junk = |rng: &mut Pcg32| -> Vec<u8> {
                (0..params.poor_end_len)
                    .map(|_| {
                        if rng.chance(0.7) {
                            b'N'
                        } else {
                            DNA[rng.next_below(4) as usize]
                        }
                    })
                    .collect()
            };
            let head = junk(&mut rng);
            let tail = junk(&mut rng);
            let mut with_junk = head;
            with_junk.extend_from_slice(&seq);
            with_junk.extend_from_slice(&tail);
            seq = with_junk;
        }
        reads.push(
            FastaRecord::new(format!("read{i:05}"), seq).with_desc(format!(
                "pos={start} strand={}",
                if flipped { '-' } else { '+' }
            )),
        );
    }
    reads
}

const AA: &[u8; 20] = b"ARNDCQEGHILKMFPSTWYV";

/// A uniform random protein of `len` residues.
pub fn random_protein(len: usize, rng: &mut Pcg32) -> Vec<u8> {
    (0..len).map(|_| AA[rng.next_below(20) as usize]).collect()
}

/// Parameters for the synthetic NR-like protein database.
#[derive(Debug, Clone, Copy)]
pub struct ProteinDbParams {
    /// Number of protein families; each family has a random ancestor.
    pub n_families: usize,
    /// Members per family (mutated copies of the ancestor).
    pub members_per_family: usize,
    pub len_min: usize,
    pub len_max: usize,
    /// Per-residue mutation rate between family members.
    pub divergence: f64,
}

impl Default for ProteinDbParams {
    fn default() -> Self {
        ProteinDbParams {
            n_families: 50,
            members_per_family: 4,
            len_min: 200,
            len_max: 600,
            divergence: 0.15,
        }
    }
}

/// Generate an NR-like database: families of homologous sequences.
pub fn protein_database(params: &ProteinDbParams, seed: u64) -> Vec<FastaRecord> {
    assert!(params.len_min > 0 && params.len_max >= params.len_min);
    let mut rng = Pcg32::new(seed);
    let mut db = Vec::with_capacity(params.n_families * params.members_per_family);
    for fam in 0..params.n_families {
        let len =
            params.len_min + rng.next_below((params.len_max - params.len_min + 1) as u32) as usize;
        let ancestor = random_protein(len, &mut rng);
        for member in 0..params.members_per_family {
            let seq: Vec<u8> = ancestor
                .iter()
                .map(|&aa| {
                    if rng.chance(params.divergence) {
                        AA[rng.next_below(20) as usize]
                    } else {
                        aa
                    }
                })
                .collect();
            db.push(
                FastaRecord::new(format!("fam{fam:04}_m{member}",), seq)
                    .with_desc(format!("family {fam} member {member}")),
            );
        }
    }
    db
}

/// Draw query sequences as mutated fragments of database entries — queries
/// that genuinely have homologs, like the paper's "sub-set of a real-world
/// protein sequence data set".
pub fn queries_from_db(
    db: &[FastaRecord],
    n: usize,
    mutation_rate: f64,
    seed: u64,
) -> Vec<FastaRecord> {
    assert!(!db.is_empty());
    let mut rng = Pcg32::new(seed);
    (0..n)
        .map(|i| {
            let src = &db[rng.next_below(db.len() as u32) as usize];
            let max_len = src.seq.len();
            let len =
                (max_len / 2 + rng.next_below((max_len / 2).max(1) as u32) as usize).min(max_len);
            let start = rng.next_below((max_len - len + 1) as u32) as usize;
            let seq: Vec<u8> = src.seq[start..start + len]
                .iter()
                .map(|&aa| {
                    if rng.chance(mutation_rate) {
                        AA[rng.next_below(20) as usize]
                    } else {
                        aa
                    }
                })
                .collect();
            FastaRecord::new(format!("query{i:05}"), seq).with_desc(format!("from {}", src.id))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_is_dna() {
        let g = random_genome(1000, 1);
        assert_eq!(g.len(), 1000);
        assert!(g.iter().all(|b| DNA.contains(b)));
        // Roughly uniform base composition.
        let a = g.iter().filter(|&&b| b == b'A').count();
        assert!(a > 150 && a < 350, "A count {a}");
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(random_genome(100, 7), random_genome(100, 7));
        assert_ne!(random_genome(100, 7), random_genome(100, 8));
    }

    #[test]
    fn reads_cover_genome() {
        let g = random_genome(2000, 2);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                n_reads: 100,
                read_len_mean: 300.0,
                ..Default::default()
            },
            3,
        );
        assert_eq!(reads.len(), 100);
        // Every clean read is an exact substring of the genome.
        for r in &reads {
            assert!(
                g.windows(r.seq.len()).any(|w| w == &r.seq[..]),
                "read {} not found in genome",
                r.id
            );
        }
    }

    #[test]
    fn errors_change_reads() {
        let g = random_genome(2000, 2);
        let clean = shotgun_reads(
            &g,
            &ShotgunParams {
                error_rate: 0.0,
                ..Default::default()
            },
            5,
        );
        let noisy = shotgun_reads(
            &g,
            &ShotgunParams {
                error_rate: 0.05,
                ..Default::default()
            },
            5,
        );
        // Same positions (same seed), but sequences differ.
        let diffs = clean
            .iter()
            .zip(&noisy)
            .filter(|(c, n)| c.seq != n.seq)
            .count();
        assert!(diffs > clean.len() / 2);
    }

    #[test]
    fn strand_flips_happen() {
        let g = random_genome(1000, 4);
        let reads = shotgun_reads(
            &g,
            &ShotgunParams {
                reverse_strand_p: 0.5,
                n_reads: 100,
                ..Default::default()
            },
            6,
        );
        let flipped = reads
            .iter()
            .filter(|r| r.desc.as_deref().unwrap_or("").contains("strand=-"))
            .count();
        assert!(flipped > 20 && flipped < 80, "flipped={flipped}");
    }

    #[test]
    fn poor_ends_add_junk() {
        let g = random_genome(1000, 4);
        let p = ShotgunParams {
            poor_end_len: 20,
            read_len_mean: 100.0,
            read_len_sd: 0.0,
            n_reads: 10,
            ..Default::default()
        };
        let reads = shotgun_reads(&g, &p, 6);
        for r in &reads {
            assert!(r.seq.len() >= 100 + 40 - 5);
            // Junk contains N's (overwhelmingly likely across 10 reads).
        }
        assert!(reads.iter().any(|r| r.seq.contains(&b'N')));
    }

    #[test]
    fn protein_db_has_family_structure() {
        let db = protein_database(
            &ProteinDbParams {
                n_families: 5,
                members_per_family: 3,
                ..Default::default()
            },
            9,
        );
        assert_eq!(db.len(), 15);
        // Members of one family are similar; different families are not.
        let same: Vec<&FastaRecord> = db.iter().filter(|r| r.id.starts_with("fam0000")).collect();
        let ident = |a: &[u8], b: &[u8]| {
            let n = a.len().min(b.len());
            a.iter().zip(b).take(n).filter(|(x, y)| x == y).count() as f64 / n as f64
        };
        assert!(ident(&same[0].seq, &same[1].seq) > 0.6);
        let other = db.iter().find(|r| r.id.starts_with("fam0001")).unwrap();
        if same[0].seq.len().min(other.seq.len()) > 50 {
            assert!(ident(&same[0].seq, &other.seq) < 0.3);
        }
    }

    #[test]
    fn queries_are_fragments_of_db() {
        let db = protein_database(&ProteinDbParams::default(), 11);
        let queries = queries_from_db(&db, 20, 0.0, 12);
        assert_eq!(queries.len(), 20);
        for q in &queries {
            let src_id = q.desc.as_deref().unwrap().strip_prefix("from ").unwrap();
            let src = db.iter().find(|r| r.id == src_id).unwrap();
            assert!(
                src.seq.windows(q.seq.len()).any(|w| w == &q.seq[..]),
                "query {} not in {}",
                q.id,
                src_id
            );
        }
    }
}
