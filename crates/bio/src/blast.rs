//! A BLASTP-style protein similarity search (the NCBI BLAST+ analog).
//!
//! Implements the classic BLAST pipeline (Altschul et al. 1990/1997):
//!
//! 1. **Word index** — the database is indexed by overlapping length-`w`
//!    words (default `w = 3`, as blastp).
//! 2. **Neighborhood seeding** — each query word matches not only itself
//!    but every word scoring ≥ `T` against it under BLOSUM62.
//! 3. **Ungapped X-drop extension** — each seed hit is extended along its
//!    diagonal until the running score drops `x_drop` below its maximum.
//! 4. **Banded gapped extension** — promising ungapped hits get a banded
//!    Smith–Waterman pass around the seed diagonal with affine gaps.
//! 5. **Statistics** — Karlin–Altschul E-values; hits above `e_cutoff` are
//!    discarded.
//!
//! Like the real tool, the dominant cost is scanning/extension over the
//! resident database — which is why the paper's BLAST results are so
//! sensitive to whether the DB fits in memory (§5.1).

use crate::fasta::FastaRecord;
use crate::matrix::{self, aa_index, e_value, GAP_EXTEND, GAP_OPEN};
use std::collections::HashMap;

/// Search tuning parameters (blastp-flavoured defaults).
#[derive(Debug, Clone, Copy)]
pub struct BlastParams {
    /// Word size.
    pub w: usize,
    /// Neighborhood threshold: query word w1 seeds db word w2 when
    /// `score(w1, w2) >= t`.
    pub t: i32,
    /// X-drop for ungapped extension.
    pub x_drop: i32,
    /// Minimum ungapped score to attempt gapped extension.
    pub gap_trigger: i32,
    /// Band half-width for gapped extension.
    pub band: usize,
    /// Report hits with E-value at most this.
    pub e_cutoff: f64,
}

impl Default for BlastParams {
    fn default() -> Self {
        BlastParams {
            w: 3,
            t: 11,
            x_drop: 16,
            gap_trigger: 22,
            band: 16,
            e_cutoff: 1e-3,
        }
    }
}

/// One reported alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Index of the subject sequence in the database.
    pub subject: usize,
    /// Subject id string.
    pub subject_id: String,
    /// Best (gapped) raw score.
    pub score: i32,
    pub bit_score: f64,
    pub e_value: f64,
}

/// An indexed protein database (one resident copy per node, like the NR DB).
pub struct BlastDb {
    seqs: Vec<FastaRecord>,
    /// word (packed) -> (seq, pos) postings.
    index: HashMap<u32, Vec<(u32, u32)>>,
    total_residues: usize,
    w: usize,
}

fn pack_word(word: &[u8]) -> Option<u32> {
    let mut v = 0u32;
    for &b in word {
        v = v * 20 + aa_index(b)? as u32;
    }
    Some(v)
}

impl BlastDb {
    /// Build the word index over the database.
    pub fn build(seqs: Vec<FastaRecord>, w: usize) -> BlastDb {
        assert!((2..=4).contains(&w), "word size 2..=4 supported");
        let mut index: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        let mut total = 0;
        for (si, rec) in seqs.iter().enumerate() {
            total += rec.seq.len();
            if rec.seq.len() >= w {
                for (pos, word) in rec.seq.windows(w).enumerate() {
                    if let Some(packed) = pack_word(word) {
                        index
                            .entry(packed)
                            .or_default()
                            .push((si as u32, pos as u32));
                    }
                }
            }
        }
        BlastDb {
            seqs,
            index,
            total_residues: total,
            w,
        }
    }

    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    pub fn total_residues(&self) -> usize {
        self.total_residues
    }

    /// Approximate resident bytes (sequences + index postings) — the number
    /// the memory-pressure model cares about.
    pub fn resident_bytes(&self) -> u64 {
        let seq_bytes: usize = self
            .seqs
            .iter()
            .map(|s| s.seq.len() + s.id.len() + 48)
            .sum();
        let postings: usize = self.index.values().map(|v| v.len() * 8 + 16).sum();
        (seq_bytes + postings) as u64
    }

    pub fn sequence(&self, i: usize) -> &FastaRecord {
        &self.seqs[i]
    }

    /// Search one query; hits sorted by ascending E-value.
    pub fn search(&self, query: &[u8], params: &BlastParams) -> Vec<Hit> {
        assert_eq!(params.w, self.w, "params.w must match the index word size");
        if query.len() < params.w {
            return Vec::new();
        }
        // 1+2: seed positions via neighborhood words.
        // For each query word position, find all db words scoring >= t.
        // We enumerate database words present in the index lazily per query
        // word via neighborhood expansion of the query word.
        let mut diag_seeds: HashMap<(u32, i64), Vec<(u32, u32)>> = HashMap::new();
        for (qpos, qword) in query.windows(params.w).enumerate() {
            for packed in neighborhood(qword, params.t) {
                if let Some(postings) = self.index.get(&packed) {
                    for &(si, spos) in postings {
                        let diag = spos as i64 - qpos as i64;
                        diag_seeds
                            .entry((si, diag))
                            .or_default()
                            .push((qpos as u32, spos));
                    }
                }
            }
        }

        // 3+4: extend the best seed per (subject, diagonal).
        let mut best_per_subject: HashMap<u32, i32> = HashMap::new();
        for ((si, _diag), seeds) in diag_seeds {
            let subject = &self.seqs[si as usize].seq;
            // Take the first seed on the diagonal (they extend identically).
            let &(qpos, spos) = seeds.first().expect("non-empty");
            let ungapped = ungapped_extend(query, subject, qpos as usize, spos as usize, params);
            if ungapped < params.gap_trigger {
                // Weak hit: still count the ungapped score if positive.
                let entry = best_per_subject.entry(si).or_insert(i32::MIN);
                *entry = (*entry).max(ungapped);
                continue;
            }
            let gapped =
                banded_gapped_score(query, subject, qpos as usize, spos as usize, params.band);
            let entry = best_per_subject.entry(si).or_insert(i32::MIN);
            *entry = (*entry).max(gapped.max(ungapped));
        }

        // 5: statistics + cutoff.
        let mut hits: Vec<Hit> = best_per_subject
            .into_iter()
            .filter_map(|(si, score)| {
                if score <= 0 {
                    return None;
                }
                let e = e_value(score, query.len(), self.total_residues);
                if e > params.e_cutoff {
                    return None;
                }
                Some(Hit {
                    subject: si as usize,
                    subject_id: self.seqs[si as usize].id.clone(),
                    score,
                    bit_score: matrix::bit_score(score),
                    e_value: e,
                })
            })
            .collect();
        hits.sort_by(|a, b| {
            a.e_value
                .partial_cmp(&b.e_value)
                .unwrap()
                .then(a.subject.cmp(&b.subject))
        });
        hits
    }

    /// Search many queries in parallel (BLAST's `-num_threads` — this is
    /// what an Azure worker with `t` BLAST threads runs).
    pub fn search_many(&self, queries: &[FastaRecord], params: &BlastParams) -> Vec<Vec<Hit>> {
        ppc_core::par::par_map_slice(queries, |q| self.search(&q.seq, params))
    }

    /// blastx: translate a *nucleotide* query in all six reading frames and
    /// search each translation, merging hits by subject (best frame wins) —
    /// the mode the paper describes in §5 ("to translate a FASTA formatted
    /// nucleotide query and to compare it to a protein database").
    /// Returns hits tagged with the winning frame.
    pub fn search_translated(&self, dna: &[u8], params: &BlastParams) -> Vec<(i8, Hit)> {
        let mut best: HashMap<usize, (i8, Hit)> = HashMap::new();
        for frame in crate::codon::six_frames(dna) {
            // Stops split the translation into ORF segments; search each
            // segment long enough to seed.
            for segment in frame.protein.split(|&aa| aa == b'*') {
                if segment.len() < params.w {
                    continue;
                }
                for hit in self.search(segment, params) {
                    match best.get(&hit.subject) {
                        Some((_, prior)) if prior.score >= hit.score => {}
                        _ => {
                            best.insert(hit.subject, (frame.frame, hit));
                        }
                    }
                }
            }
        }
        let mut hits: Vec<(i8, Hit)> = best.into_values().collect();
        hits.sort_by(|a, b| {
            a.1.e_value
                .partial_cmp(&b.1.e_value)
                .unwrap()
                .then(a.1.subject.cmp(&b.1.subject))
        });
        hits
    }
}

/// All packed words scoring `>= t` against `qword` under BLOSUM62.
/// Enumerates the 20^w word space with branch-and-bound on the per-position
/// maximum achievable score.
fn neighborhood(qword: &[u8], t: i32) -> Vec<u32> {
    let w = qword.len();
    // Per-position score rows for the query word.
    let mut rows: Vec<[i32; 20]> = Vec::with_capacity(w);
    for &b in qword {
        let mut row = [-4; 20];
        if let Some(qi) = aa_index(b) {
            row.copy_from_slice(&matrix::BLOSUM62[qi]);
        }
        rows.push(row);
    }
    // Suffix maxima for pruning.
    let mut suffix_max = vec![0i32; w + 1];
    for i in (0..w).rev() {
        suffix_max[i] = suffix_max[i + 1] + rows[i].iter().copied().max().unwrap();
    }
    let mut out = Vec::new();
    let mut stack: Vec<(usize, i32, u32)> = vec![(0, 0, 0)];
    while let Some((pos, score, packed)) = stack.pop() {
        if pos == w {
            if score >= t {
                out.push(packed);
            }
            continue;
        }
        for (aa, &row_score) in rows[pos].iter().enumerate() {
            let s = score + row_score;
            if s + suffix_max[pos + 1] >= t {
                stack.push((pos + 1, s, packed * 20 + aa as u32));
            }
        }
    }
    out
}

/// Ungapped X-drop extension around a seed; returns the best segment score.
fn ungapped_extend(
    query: &[u8],
    subject: &[u8],
    qpos: usize,
    spos: usize,
    params: &BlastParams,
) -> i32 {
    let w = params.w;
    // Seed score.
    let mut score: i32 = (0..w)
        .map(|i| matrix::score(query[qpos + i], subject[spos + i]))
        .sum();
    let mut best = score;
    // Extend right.
    {
        let mut q = qpos + w;
        let mut s = spos + w;
        let mut run = score;
        while q < query.len() && s < subject.len() {
            run += matrix::score(query[q], subject[s]);
            if run > best {
                best = run;
            }
            if run < best - params.x_drop {
                break;
            }
            q += 1;
            s += 1;
        }
        score = best;
    }
    // Extend left.
    {
        let mut run = score;
        let mut q = qpos as i64 - 1;
        let mut s = spos as i64 - 1;
        while q >= 0 && s >= 0 {
            run += matrix::score(query[q as usize], subject[s as usize]);
            if run > best {
                best = run;
            }
            if run < best - params.x_drop {
                break;
            }
            q -= 1;
            s -= 1;
        }
    }
    best
}

/// Banded Smith–Waterman with affine gaps, centered on the seed diagonal.
/// Returns the best local score within the band.
fn banded_gapped_score(query: &[u8], subject: &[u8], qpos: usize, spos: usize, band: usize) -> i32 {
    let n = query.len();
    let m = subject.len();
    let center = spos as i64 - qpos as i64; // subject = query + center
    let band = band as i64;
    const NEG: i32 = i32::MIN / 4;

    // DP over (i = query index 1..=n), j constrained to the band.
    // h = best ending in match/mismatch, e = gap in query, f = gap in subject.
    let width = (2 * band + 1) as usize;
    let mut h_prev = vec![0i32; width];
    let mut e_prev = vec![NEG; width];
    let mut best = 0i32;

    // j = i + center + (k - band) for k in 0..width.
    for i in 1..=n {
        let mut h_cur = vec![0i32; width];
        let mut e_cur = vec![NEG; width];
        let mut f: i32 = NEG; // horizontal gap within this row
        for k in 0..width {
            let j = i as i64 + center + (k as i64 - band);
            if j < 1 || j > m as i64 {
                h_cur[k] = 0;
                e_cur[k] = NEG;
                continue;
            }
            let j = j as usize;
            // Diagonal predecessor lives at the same k in the previous row.
            let diag = h_prev[k];
            let sub = matrix::score(query[i - 1], subject[j - 1]);
            // Vertical (gap in subject): previous row, k+1.
            let up_h = if k + 1 < width { h_prev[k + 1] } else { NEG };
            let up_e = if k + 1 < width { e_prev[k + 1] } else { NEG };
            let e = (up_h - GAP_OPEN - GAP_EXTEND).max(up_e - GAP_EXTEND);
            // Horizontal (gap in query): same row, k-1 (tracked via f).
            let left_h = if k > 0 { h_cur[k - 1] } else { NEG };
            f = (left_h - GAP_OPEN - GAP_EXTEND).max(f - GAP_EXTEND);
            let h = 0.max(diag + sub).max(e).max(f);
            h_cur[k] = h;
            e_cur[k] = e;
            if h > best {
                best = h;
            }
        }
        h_prev = h_cur;
        e_prev = e_cur;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{protein_database, queries_from_db, random_protein, ProteinDbParams};
    use ppc_core::rng::Pcg32;

    fn small_db(seed: u64) -> BlastDb {
        let recs = protein_database(
            &ProteinDbParams {
                n_families: 10,
                members_per_family: 3,
                len_min: 150,
                len_max: 300,
                divergence: 0.15,
            },
            seed,
        );
        BlastDb::build(recs, 3)
    }

    #[test]
    fn exact_fragment_finds_its_source_first() {
        let db = small_db(1);
        let src = db.sequence(5).clone();
        let query = &src.seq[20..120];
        let hits = db.search(query, &BlastParams::default());
        assert!(!hits.is_empty());
        assert_eq!(hits[0].subject_id, src.id, "top hit is the source");
        assert!(hits[0].e_value < 1e-20);
    }

    #[test]
    fn mutated_query_still_finds_family() {
        let db = small_db(2);
        let queries = queries_from_db(
            &(0..db.len())
                .map(|i| db.sequence(i).clone())
                .collect::<Vec<_>>(),
            10,
            0.10,
            3,
        );
        let results = db.search_many(&queries, &BlastParams::default());
        for (q, hits) in queries.iter().zip(&results) {
            let src = q.desc.as_deref().unwrap().strip_prefix("from ").unwrap();
            let src_family = &src[..7]; // "famXXXX"
            assert!(
                hits.iter()
                    .take(3)
                    .any(|h| h.subject_id.starts_with(src_family)),
                "query {} lost its family {src_family}: {:?}",
                q.id,
                hits.iter()
                    .take(3)
                    .map(|h| &h.subject_id)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn random_query_has_no_strong_hits() {
        let db = small_db(4);
        let mut rng = Pcg32::new(99);
        let junk = random_protein(120, &mut rng);
        let hits = db.search(&junk, &BlastParams::default());
        assert!(
            hits.iter().all(|h| h.e_value > 1e-8),
            "random sequence should have no overwhelming hit: {:?}",
            hits.first()
        );
    }

    #[test]
    fn short_query_returns_empty() {
        let db = small_db(5);
        assert!(db.search(b"AV", &BlastParams::default()).is_empty());
    }

    #[test]
    fn hits_sorted_by_evalue() {
        let db = small_db(6);
        let src = db.sequence(0).clone();
        let hits = db.search(&src.seq, &BlastParams::default());
        for pair in hits.windows(2) {
            assert!(pair[0].e_value <= pair[1].e_value);
        }
        // Family members should also appear (3 members per family).
        let fam = &src.id[..7];
        let fam_hits = hits
            .iter()
            .filter(|h| h.subject_id.starts_with(fam))
            .count();
        assert!(fam_hits >= 2, "family hits {fam_hits}");
    }

    #[test]
    fn neighborhood_includes_self_and_respects_threshold() {
        let words = neighborhood(b"WWW", 11);
        let self_packed = pack_word(b"WWW").unwrap();
        assert!(words.contains(&self_packed));
        // W scores 11 with itself; any word in the neighborhood of WWW at
        // t=33 must be WWW itself (11+11+11 = 33).
        let tight = neighborhood(b"WWW", 33);
        assert_eq!(tight, vec![self_packed]);
    }

    #[test]
    fn neighborhood_matches_brute_force_enumeration() {
        use crate::matrix::AMINO_ACIDS;
        // Exhaustive check for w=2 (400 words) across several thresholds.
        for t in [6, 8, 10, 12] {
            for qword in [b"WC".as_slice(), b"AV", b"KR"] {
                let mut got = neighborhood(qword, t);
                got.sort_unstable();
                let mut expect = Vec::new();
                for &a in &AMINO_ACIDS {
                    for &b in &AMINO_ACIDS {
                        let s = matrix::score(qword[0], a) + matrix::score(qword[1], b);
                        if s >= t {
                            expect.push(pack_word(&[a, b]).unwrap());
                        }
                    }
                }
                expect.sort_unstable();
                assert_eq!(
                    got,
                    expect,
                    "qword {:?} t {t}",
                    std::str::from_utf8(qword).unwrap()
                );
            }
        }
    }

    #[test]
    fn neighborhood_grows_as_threshold_drops() {
        let strict = neighborhood(b"ACD", 14).len();
        let loose = neighborhood(b"ACD", 10).len();
        assert!(loose > strict, "loose {loose} vs strict {strict}");
    }

    #[test]
    fn ungapped_extension_finds_perfect_match_score() {
        let q = b"MKVLAATGLRWQYHNDE";
        let params = BlastParams::default();
        let score = ungapped_extend(q, q, 5, 5, &params);
        let expect: i32 = q.iter().map(|&b| matrix::score(b, b)).sum();
        assert_eq!(score, expect);
    }

    #[test]
    fn banded_gapped_handles_an_indel() {
        // Subject = query with a 2-residue deletion in the middle; gapped
        // score must exceed the best ungapped diagonal segment.
        let q = b"MKVLAATGLRWQYHNDEFFKPSTWYVHHAA".to_vec();
        let mut s = q.clone();
        s.drain(14..16);
        let params = BlastParams::default();
        let ungapped = ungapped_extend(&q, &s, 2, 2, &params);
        let gapped = banded_gapped_score(&q, &s, 2, 2, params.band);
        assert!(gapped > ungapped, "gapped {gapped} vs ungapped {ungapped}");
    }

    #[test]
    fn blastx_finds_protein_from_nucleotide_query() {
        let db = small_db(41);
        let src = db.sequence(3).clone();
        // Encode a fragment of the protein as DNA (forward strand).
        let fragment = &src.seq[10..90];
        let dna = crate::codon::arbitrary_coding_dna(fragment);
        let hits = db.search_translated(&dna, &BlastParams::default());
        assert!(!hits.is_empty());
        assert_eq!(
            hits[0].1.subject_id, src.id,
            "top blastx hit is the source protein"
        );
        assert_eq!(hits[0].0, 1, "found on forward frame +1");

        // And on the reverse strand after reverse-complementing the DNA.
        let rc = crate::fasta::reverse_complement(&dna);
        let hits_rc = db.search_translated(&rc, &BlastParams::default());
        assert_eq!(hits_rc[0].1.subject_id, src.id);
        assert!(
            hits_rc[0].0 < 0,
            "found on a reverse frame, got {}",
            hits_rc[0].0
        );
    }

    #[test]
    fn blastx_respects_stop_codons() {
        // DNA whose frame +1 is two short ORFs separated by a stop: both
        // halves must still be searchable independently.
        let db = small_db(42);
        let src = db.sequence(0).clone();
        let mut protein = src.seq[5..45].to_vec();
        protein.push(b'*');
        protein.extend_from_slice(&src.seq[60..100]);
        let dna = crate::codon::arbitrary_coding_dna(&protein);
        let hits = db.search_translated(&dna, &BlastParams::default());
        assert!(
            hits.iter().any(|(_, h)| h.subject_id == src.id),
            "ORF segments searched around the stop"
        );
    }

    #[test]
    fn banded_matches_exact_smith_waterman_with_wide_band() {
        // With the band as wide as the sequences, the banded kernel must
        // reproduce the exact local alignment score for near-diagonal pairs.
        let mut rng = Pcg32::new(77);
        for round in 0..10 {
            let a = random_protein(40, &mut rng);
            let mut b = a.clone();
            // Small edits: substitutions and one short indel.
            b[5] = b'W';
            b[17] = b'K';
            if round % 2 == 0 {
                b.drain(22..24);
            } else {
                b.insert(22, b'G');
            }
            let exact = crate::align::local(&a, &b).score;
            let banded = banded_gapped_score(&a, &b, 0, 0, a.len().max(b.len()));
            assert_eq!(banded, exact, "round {round}");
        }
    }

    #[test]
    fn narrow_band_never_beats_exact() {
        let mut rng = Pcg32::new(78);
        for _ in 0..10 {
            let a = random_protein(50, &mut rng);
            let b = random_protein(50, &mut rng);
            let exact = crate::align::local(&a, &b).score;
            let banded = banded_gapped_score(&a, &b, 0, 0, 8);
            assert!(banded <= exact, "banded {banded} > exact {exact}");
        }
    }

    #[test]
    fn resident_bytes_scale_with_db() {
        let small = small_db(7);
        let big = BlastDb::build(
            protein_database(
                &ProteinDbParams {
                    n_families: 40,
                    members_per_family: 3,
                    len_min: 150,
                    len_max: 300,
                    divergence: 0.15,
                },
                7,
            ),
            3,
        );
        assert!(big.resident_bytes() > 2 * small.resident_bytes());
        assert!(big.total_residues() > small.total_residues());
    }

    #[test]
    fn word_size_mismatch_panics() {
        let db = small_db(8);
        let bad = BlastParams {
            w: 4,
            ..BlastParams::default()
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db.search(b"MKVLAATGLRWQYHNDE", &bad)
        }));
        assert!(result.is_err());
    }
}
