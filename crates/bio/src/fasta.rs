//! FASTA parsing and formatting.
//!
//! Every task input and output in the paper's pipelines is a FASTA file:
//! Cap3 consumes FASTA fragment files and produces FASTA contigs; BLAST
//! consumes FASTA queries against a FASTA-derived database.

use ppc_core::{PpcError, Result};

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Identifier (text after `>` up to the first whitespace).
    pub id: String,
    /// Optional description (rest of the header line).
    pub desc: Option<String>,
    /// Sequence bytes, uppercased.
    pub seq: Vec<u8>,
}

impl FastaRecord {
    pub fn new(id: impl Into<String>, seq: impl Into<Vec<u8>>) -> FastaRecord {
        let mut seq = seq.into();
        seq.make_ascii_uppercase();
        FastaRecord {
            id: id.into(),
            desc: None,
            seq,
        }
    }

    pub fn with_desc(mut self, desc: impl Into<String>) -> FastaRecord {
        self.desc = Some(desc.into());
        self
    }

    pub fn len(&self) -> usize {
        self.seq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Width at which sequence lines wrap when formatting.
pub const LINE_WIDTH: usize = 70;

/// Parse a FASTA payload into records.
pub fn parse(data: &[u8]) -> Result<Vec<FastaRecord>> {
    let text =
        std::str::from_utf8(data).map_err(|_| PpcError::Codec("FASTA is not UTF-8".into()))?;
    let mut records: Vec<FastaRecord> = Vec::new();
    let mut current: Option<FastaRecord> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            if let Some(rec) = current.take() {
                records.push(rec);
            }
            let mut parts = header.splitn(2, char::is_whitespace);
            let id = parts.next().unwrap_or("").to_string();
            if id.is_empty() {
                return Err(PpcError::Codec(format!(
                    "line {}: empty FASTA id",
                    lineno + 1
                )));
            }
            let desc = parts
                .next()
                .map(|d| d.trim().to_string())
                .filter(|d| !d.is_empty());
            current = Some(FastaRecord {
                id,
                desc,
                seq: Vec::new(),
            });
        } else {
            match current.as_mut() {
                Some(rec) => {
                    for &b in line.as_bytes() {
                        if b.is_ascii_whitespace() {
                            continue;
                        }
                        if !b.is_ascii_alphabetic() && b != b'*' && b != b'-' {
                            return Err(PpcError::Codec(format!(
                                "line {}: invalid sequence byte {:?}",
                                lineno + 1,
                                b as char
                            )));
                        }
                        rec.seq.push(b.to_ascii_uppercase());
                    }
                }
                None => {
                    return Err(PpcError::Codec(format!(
                        "line {}: sequence before any header",
                        lineno + 1
                    )))
                }
            }
        }
    }
    if let Some(rec) = current {
        records.push(rec);
    }
    Ok(records)
}

/// Format records as FASTA bytes, wrapping at [`LINE_WIDTH`].
pub fn format(records: &[FastaRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for rec in records {
        out.push(b'>');
        out.extend_from_slice(rec.id.as_bytes());
        if let Some(desc) = &rec.desc {
            out.push(b' ');
            out.extend_from_slice(desc.as_bytes());
        }
        out.push(b'\n');
        for chunk in rec.seq.chunks(LINE_WIDTH) {
            out.extend_from_slice(chunk);
            out.push(b'\n');
        }
    }
    out
}

/// Reverse complement of a DNA sequence (unknown bases map to `N`).
pub fn reverse_complement(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|b| match b {
            b'A' => b'T',
            b'T' => b'A',
            b'C' => b'G',
            b'G' => b'C',
            b'a' => b't',
            b't' => b'a',
            b'c' => b'g',
            b'g' => b'c',
            _ => b'N',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let recs = parse(b">r1 first read\nACGT\nACGT\n>r2\nTTTT\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "r1");
        assert_eq!(recs[0].desc.as_deref(), Some("first read"));
        assert_eq!(recs[0].seq, b"ACGTACGT");
        assert_eq!(recs[1].id, "r2");
        assert_eq!(recs[1].desc, None);
    }

    #[test]
    fn round_trip_with_wrapping() {
        let long: Vec<u8> = std::iter::repeat(b"ACGT".iter().copied())
            .flatten()
            .take(200)
            .collect();
        let recs = vec![
            FastaRecord::new("x", long.clone()).with_desc("long one"),
            FastaRecord::new("y", b"GG".to_vec()),
        ];
        let bytes = format(&recs);
        // Wrapped at 70 chars.
        assert!(String::from_utf8_lossy(&bytes)
            .lines()
            .all(|l| l.len() <= 71));
        let back = parse(&bytes).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn lowercase_normalized() {
        let recs = parse(b">r\nacgt\n").unwrap();
        assert_eq!(recs[0].seq, b"ACGT");
    }

    #[test]
    fn errors() {
        assert!(parse(b"ACGT\n").is_err(), "sequence before header");
        assert!(parse(b">\nACGT\n").is_err(), "empty id");
        assert!(parse(b">r\nAC1T\n").is_err(), "invalid byte");
        assert!(parse(&[0xff, 0xfe]).is_err(), "not UTF-8");
    }

    #[test]
    fn empty_input_is_empty_vec() {
        assert!(parse(b"").unwrap().is_empty());
        assert!(parse(b"\n\n").unwrap().is_empty());
    }

    #[test]
    fn reverse_complement_basics() {
        assert_eq!(reverse_complement(b"ACGT"), b"ACGT".to_vec()); // palindrome
        assert_eq!(reverse_complement(b"AACC"), b"GGTT".to_vec());
        assert_eq!(reverse_complement(b"ANT"), b"ANT".to_vec());
        // Involution.
        let s = b"ACGGTTTACG";
        assert_eq!(reverse_complement(&reverse_complement(s)), s.to_vec());
    }
}
