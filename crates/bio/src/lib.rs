//! # ppc-bio — sequence kernels for the paper's biomedical applications
//!
//! The paper runs two closed-source-to-us executables: **Cap3** (DNA
//! sequence assembly; Huang & Madan 1999) and **NCBI BLAST+** (protein
//! similarity search). This crate implements working analogs from scratch,
//! so the frameworks schedule *real* compute with the same shape:
//!
//! * [`fasta`] — FASTA parsing/formatting (the wire format of every task).
//! * [`simulate`] — synthetic genomes, shotgun reads, and protein databases
//!   with family structure, replacing the proprietary input data sets.
//! * [`assembly`] — a greedy overlap-layout-consensus assembler (trimming,
//!   k-mer-seeded overlap detection, strand orientation, greedy layout,
//!   position-vote consensus). CPU-bound with content-dependent runtime,
//!   like Cap3 (§4: "The run time of the Cap3 application depends on the
//!   contents of the input file").
//! * [`blast`] — a BLASTP-style search: neighborhood-word seeding over a
//!   k-mer index, X-drop ungapped extension, banded gapped extension,
//!   Karlin–Altschul E-values. Wants the whole database resident, like
//!   BLAST (§5.1's memory observations).
//! * [`codon`] — the genetic code and six-frame translation, powering the
//!   blastx-style nucleotide-vs-protein mode the paper describes.
//! * [`align`] — exact Needleman–Wunsch / Smith–Waterman with affine gaps
//!   and traceback: the reference the banded BLAST kernel is checked
//!   against.
//! * [`matrix`] — BLOSUM62 and alignment scoring parameters.

pub mod align;
pub mod assembly;
pub mod blast;
pub mod codon;
pub mod fasta;
pub mod matrix;
pub mod simulate;

pub use assembly::{assemble, Assembly, AssemblyParams};
pub use blast::{BlastDb, BlastParams, Hit};
pub use fasta::FastaRecord;
