//! Full pairwise alignment: Needleman–Wunsch (global) and Smith–Waterman
//! (local) with affine gaps and traceback.
//!
//! BLAST's banded gapped extension ([`crate::blast`]) trades exactness for
//! speed; this module is the exact reference it is validated against (see
//! the cross-checking tests), and provides the alignment strings a real
//! BLAST report renders.

use crate::matrix::{score, GAP_EXTEND, GAP_OPEN};

/// One aligned pair, with traceback strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    pub score: i32,
    /// Query with `-` for gaps.
    pub aligned_a: Vec<u8>,
    /// Subject with `-` for gaps.
    pub aligned_b: Vec<u8>,
    /// Start offsets of the aligned region in each input (0 for global).
    pub start_a: usize,
    pub start_b: usize,
}

impl Alignment {
    /// Fraction of aligned columns that match exactly.
    pub fn identity(&self) -> f64 {
        if self.aligned_a.is_empty() {
            return 0.0;
        }
        let matches = self
            .aligned_a
            .iter()
            .zip(&self.aligned_b)
            .filter(|(x, y)| x == y && **x != b'-')
            .count();
        matches as f64 / self.aligned_a.len() as f64
    }

    /// Gap columns in the alignment.
    pub fn gaps(&self) -> usize {
        self.aligned_a.iter().filter(|&&c| c == b'-').count()
            + self.aligned_b.iter().filter(|&&c| c == b'-').count()
    }
}

const NEG: i32 = i32::MIN / 4;

#[derive(Clone, Copy, PartialEq)]
enum Tb {
    Stop,
    Diag,
    Up,   // gap in b (consume a)
    Left, // gap in a (consume b)
}

/// Affine-gap dynamic programming over the full matrix.
/// `local` selects Smith–Waterman (clamp at 0, trace from max) vs
/// Needleman–Wunsch (end-to-end).
fn align(a: &[u8], b: &[u8], local: bool) -> Alignment {
    let n = a.len();
    let m = b.len();
    // Three-state DP: h = best, e = gap-in-a open, f = gap-in-b open.
    let mut h = vec![vec![0i32; m + 1]; n + 1];
    let mut e = vec![vec![NEG; m + 1]; n + 1];
    let mut f = vec![vec![NEG; m + 1]; n + 1];
    let mut tb = vec![vec![Tb::Stop; m + 1]; n + 1];

    if !local {
        for i in 1..=n {
            f[i][0] = -GAP_OPEN - GAP_EXTEND * i as i32;
            h[i][0] = f[i][0];
            tb[i][0] = Tb::Up;
        }
        for j in 1..=m {
            e[0][j] = -GAP_OPEN - GAP_EXTEND * j as i32;
            h[0][j] = e[0][j];
            tb[0][j] = Tb::Left;
        }
    }

    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=n {
        for j in 1..=m {
            e[i][j] = (h[i][j - 1] - GAP_OPEN - GAP_EXTEND).max(e[i][j - 1] - GAP_EXTEND);
            f[i][j] = (h[i - 1][j] - GAP_OPEN - GAP_EXTEND).max(f[i - 1][j] - GAP_EXTEND);
            let diag = h[i - 1][j - 1] + score(a[i - 1], b[j - 1]);
            let mut v = diag.max(e[i][j]).max(f[i][j]);
            let mut dir = if v == diag {
                Tb::Diag
            } else if v == f[i][j] {
                Tb::Up
            } else {
                Tb::Left
            };
            if local && v <= 0 {
                v = 0;
                dir = Tb::Stop;
            }
            h[i][j] = v;
            tb[i][j] = dir;
            if v > best.0 {
                best = (v, i, j);
            }
        }
    }

    let (score, mut i, mut j) = if local { best } else { (h[n][m], n, m) };
    let mut ra = Vec::new();
    let mut rb = Vec::new();
    while i > 0 || j > 0 {
        match tb[i][j] {
            Tb::Stop => break,
            Tb::Diag => {
                ra.push(a[i - 1]);
                rb.push(b[j - 1]);
                i -= 1;
                j -= 1;
            }
            Tb::Up => {
                ra.push(a[i - 1]);
                rb.push(b'-');
                i -= 1;
            }
            Tb::Left => {
                ra.push(b'-');
                rb.push(b[j - 1]);
                j -= 1;
            }
        }
    }
    ra.reverse();
    rb.reverse();
    Alignment {
        score,
        aligned_a: ra,
        aligned_b: rb,
        start_a: i,
        start_b: j,
    }
}

/// Global alignment (Needleman–Wunsch) with affine gaps under BLOSUM62.
pub fn global(a: &[u8], b: &[u8]) -> Alignment {
    align(a, b, false)
}

/// Local alignment (Smith–Waterman) with affine gaps under BLOSUM62.
pub fn local(a: &[u8], b: &[u8]) -> Alignment {
    align(a, b, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::random_protein;
    use ppc_core::rng::Pcg32;

    #[test]
    fn identical_sequences_align_perfectly() {
        let s = b"MKVLAATGLRWQYHNDEFFK";
        let g = global(s, s);
        assert_eq!(g.aligned_a, g.aligned_b);
        assert!((g.identity() - 1.0).abs() < 1e-12);
        assert_eq!(g.gaps(), 0);
        let expect: i32 = s.iter().map(|&c| score(c, c)).sum();
        assert_eq!(g.score, expect);
        let l = local(s, s);
        assert_eq!(l.score, expect);
    }

    #[test]
    fn local_finds_embedded_match() {
        let core = b"WWHHKKRRFFYY";
        let mut a = b"MAAAA".to_vec();
        a.extend_from_slice(core);
        a.extend_from_slice(b"GGGG");
        let mut b = b"PPPPPPPP".to_vec();
        b.extend_from_slice(core);
        let l = local(&a, &b);
        assert_eq!(l.aligned_a, core.to_vec());
        assert_eq!(l.aligned_b, core.to_vec());
        assert_eq!(l.start_a, 5);
        assert_eq!(l.start_b, 8);
    }

    #[test]
    fn global_handles_deletion_with_affine_gap() {
        let a = b"MKVLAATGLRWQYHNDE";
        let mut b = a.to_vec();
        b.drain(6..9); // one 3-long gap
        let g = global(a, &b);
        assert_eq!(g.gaps(), 3);
        // Affine: one open + three extends.
        let matched: i32 = a
            .iter()
            .enumerate()
            .filter(|(i, _)| !(6..9).contains(i))
            .map(|(_, &c)| score(c, c))
            .sum();
        assert_eq!(g.score, matched - GAP_OPEN - 3 * GAP_EXTEND);
    }

    #[test]
    fn local_score_never_negative_and_global_le_local_alignedwise() {
        let mut rng = Pcg32::new(9);
        for _ in 0..20 {
            let a = random_protein(40, &mut rng);
            let b = random_protein(40, &mut rng);
            let l = local(&a, &b);
            assert!(l.score >= 0);
            // Local is at least as good as global on the same pair.
            assert!(l.score >= global(&a, &b).score);
        }
    }

    #[test]
    fn traceback_reconstructs_inputs() {
        let mut rng = Pcg32::new(11);
        for _ in 0..10 {
            let a = random_protein(30, &mut rng);
            let b = random_protein(25, &mut rng);
            let g = global(&a, &b);
            let ra: Vec<u8> = g.aligned_a.iter().copied().filter(|&c| c != b'-').collect();
            let rb: Vec<u8> = g.aligned_b.iter().copied().filter(|&c| c != b'-').collect();
            assert_eq!(ra, a);
            assert_eq!(rb, b);
            assert_eq!(g.aligned_a.len(), g.aligned_b.len());
        }
    }

    #[test]
    fn alignment_score_consistent_with_columns() {
        // Recompute the score from the traceback columns; must match.
        let mut rng = Pcg32::new(13);
        let a = random_protein(35, &mut rng);
        let mut b = a.clone();
        b.drain(10..14);
        b[20] = b'W';
        let g = global(&a, &b);
        let mut recomputed = 0i32;
        let mut in_gap = false;
        for (&x, &y) in g.aligned_a.iter().zip(&g.aligned_b) {
            if x == b'-' || y == b'-' {
                recomputed -= GAP_EXTEND + if in_gap { 0 } else { GAP_OPEN };
                in_gap = true;
            } else {
                recomputed += score(x, y);
                in_gap = false;
            }
        }
        assert_eq!(recomputed, g.score);
    }
}
