//! Protein scoring: BLOSUM62 and alignment parameters.

/// The 20 standard amino acids, in BLOSUM62 row order.
pub const AMINO_ACIDS: [u8; 20] = [
    b'A', b'R', b'N', b'D', b'C', b'Q', b'E', b'G', b'H', b'I', b'L', b'K', b'M', b'F', b'P', b'S',
    b'T', b'W', b'Y', b'V',
];

/// BLOSUM62 substitution matrix (Henikoff & Henikoff 1992), row order as
/// [`AMINO_ACIDS`].
#[rustfmt::skip]
pub const BLOSUM62: [[i32; 20]; 20] = [
    //A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [ 4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0], // A
    [-1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3], // R
    [-2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3], // N
    [-2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3], // D
    [ 0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1], // C
    [-1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2], // Q
    [-1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2], // E
    [ 0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3], // G
    [-2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3], // H
    [-1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3], // I
    [-1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1], // L
    [-1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2], // K
    [-1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1], // M
    [-2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1], // F
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2], // P
    [ 1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2], // S
    [ 0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0], // T
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3], // W
    [-2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -2], // Y
    [ 0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -2,  4], // V
];

/// Map an amino-acid byte to its BLOSUM62 index; `None` for non-standard.
pub fn aa_index(b: u8) -> Option<usize> {
    match b.to_ascii_uppercase() {
        b'A' => Some(0),
        b'R' => Some(1),
        b'N' => Some(2),
        b'D' => Some(3),
        b'C' => Some(4),
        b'Q' => Some(5),
        b'E' => Some(6),
        b'G' => Some(7),
        b'H' => Some(8),
        b'I' => Some(9),
        b'L' => Some(10),
        b'K' => Some(11),
        b'M' => Some(12),
        b'F' => Some(13),
        b'P' => Some(14),
        b'S' => Some(15),
        b'T' => Some(16),
        b'W' => Some(17),
        b'Y' => Some(18),
        b'V' => Some(19),
        _ => None,
    }
}

/// Score a pair of residues; non-standard residues score the worst-case -4.
#[inline]
pub fn score(a: u8, b: u8) -> i32 {
    match (aa_index(a), aa_index(b)) {
        (Some(i), Some(j)) => BLOSUM62[i][j],
        _ => -4,
    }
}

/// BLAST-style affine gap penalties (blastp defaults: 11/1).
pub const GAP_OPEN: i32 = 11;
pub const GAP_EXTEND: i32 = 1;

/// Karlin–Altschul parameters for BLOSUM62 ungapped statistics.
// (0.3176, Altschul & Gish 1996 — coincidentally near 1/pi, but a
// measured statistical parameter, not the mathematical constant.)
pub const KA_LAMBDA: f64 = 0.3176;
pub const KA_K: f64 = 0.134;

/// Bit score from a raw score.
pub fn bit_score(raw: i32) -> f64 {
    (KA_LAMBDA * raw as f64 - KA_K.ln()) / std::f64::consts::LN_2
}

/// E-value for a raw score against a database of `db_residues` total
/// residues with a query of `query_len` residues.
pub fn e_value(raw: i32, query_len: usize, db_residues: usize) -> f64 {
    let m = query_len as f64;
    let n = db_residues as f64;
    KA_K * m * n * (-KA_LAMBDA * raw as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_symmetric() {
        for (i, row) in BLOSUM62.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, BLOSUM62[j][i], "({i},{j})");
            }
        }
    }

    #[test]
    fn diagonal_is_positive() {
        for (i, row) in BLOSUM62.iter().enumerate() {
            assert!(row[i] > 0);
        }
    }

    #[test]
    fn known_entries() {
        assert_eq!(score(b'W', b'W'), 11);
        assert_eq!(score(b'A', b'A'), 4);
        assert_eq!(score(b'W', b'A'), -3);
        assert_eq!(score(b'a', b'a'), 4, "case-insensitive");
        assert_eq!(score(b'X', b'A'), -4, "unknown residue worst-case");
    }

    #[test]
    fn index_round_trip() {
        for (i, &aa) in AMINO_ACIDS.iter().enumerate() {
            assert_eq!(aa_index(aa), Some(i));
        }
        assert_eq!(aa_index(b'B'), None);
        assert_eq!(aa_index(b'Z'), None);
    }

    #[test]
    fn evalue_decreases_with_score() {
        let e1 = e_value(50, 100, 1_000_000);
        let e2 = e_value(60, 100, 1_000_000);
        assert!(e2 < e1);
        // And grows with database size.
        let e3 = e_value(50, 100, 10_000_000);
        assert!(e3 > e1);
    }

    #[test]
    fn bit_score_monotone() {
        assert!(bit_score(60) > bit_score(50));
    }
}
