//! The native job service: a long-lived front door over real [`Engine`]s.
//!
//! `submit` applies admission control and parks the job in its tenant's
//! bounded queue; `drain` runs everything to completion in fair-share
//! order, one job at a time, charging each job's engine-reported cost to
//! its tenant. The service clock is *virtual*: it advances by each job's
//! makespan, so latency rollups are deterministic and mean the same thing
//! as the load generator's (a single-server queueing view of the shared
//! fleet).

use crate::admission::AdmissionPolicy;
use crate::job::{JobId, JobPayload, JobRecord, JobSpec, JobStatus, Priority, NO_CLIENT};
use crate::report::{FleetSummary, ServeReport};
use crate::scheduler::{DrrScheduler, QueuedJob};
use crate::tenant::{TenantRollup, TenantSpec};
use ppc_compute::billing::CostBreakdown;
use ppc_core::money::Usd;
use ppc_core::{PpcError, Result};
use ppc_exec::{Engine, RunContext};
use ppc_trace::{EventKind, TraceEvent, NO_WORKER};

/// Service-level tuning.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    pub tenants: Vec<TenantSpec>,
    pub admission: AdmissionPolicy,
    /// Fair-share quantum in cpu-seconds.
    pub quantum_s: f64,
}

impl ServiceConfig {
    pub fn new(tenants: Vec<TenantSpec>) -> ServiceConfig {
        ServiceConfig {
            tenants,
            admission: AdmissionPolicy::default(),
            quantum_s: 60.0,
        }
    }
}

struct Pending {
    engine: usize,
    payload: JobPayload,
    deadline_hint_s: Option<f64>,
}

/// The multi-tenant job service. Holds the engine set it dispatches to;
/// queryable by [`JobId`] after the fact.
pub struct JobService {
    cfg: ServiceConfig,
    engines: Vec<Box<dyn Engine>>,
    sched: DrrScheduler,
    records: Vec<JobRecord>,
    pending: Vec<Option<Pending>>,
    rollups: Vec<TenantRollup>,
    queued: Vec<usize>,
    running: Vec<usize>,
    clock_s: f64,
    events: Vec<TraceEvent>,
}

impl JobService {
    pub fn new(cfg: ServiceConfig, engines: Vec<Box<dyn Engine>>) -> Result<JobService> {
        if cfg.tenants.is_empty() {
            return Err(PpcError::InvalidArgument(
                "job service needs at least one tenant".into(),
            ));
        }
        if engines.is_empty() {
            return Err(PpcError::InvalidArgument(
                "job service needs at least one engine".into(),
            ));
        }
        let mut names: Vec<&str> = cfg.tenants.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != cfg.tenants.len() {
            return Err(PpcError::InvalidArgument("duplicate tenant name".into()));
        }
        if cfg.tenants.iter().any(|t| t.weight == 0) {
            return Err(PpcError::InvalidArgument(
                "tenant weights must be positive".into(),
            ));
        }
        let weights: Vec<u32> = cfg.tenants.iter().map(|t| t.weight).collect();
        let n = cfg.tenants.len();
        Ok(JobService {
            sched: DrrScheduler::new(cfg.quantum_s, &weights),
            cfg,
            engines,
            records: Vec::new(),
            pending: Vec::new(),
            rollups: vec![TenantRollup::default(); n],
            queued: vec![0; n],
            running: vec![0; n],
            clock_s: 0.0,
            events: Vec::new(),
        })
    }

    pub fn tenants(&self) -> &[TenantSpec] {
        &self.cfg.tenants
    }

    /// The lifecycle events emitted so far (submit/admit/reject/…).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn tenant_index(&self, name: &str) -> Result<usize> {
        self.cfg
            .tenants
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| PpcError::InvalidArgument(format!("unknown tenant '{name}'")))
    }

    fn engine_index(&self, name: &str) -> Result<usize> {
        self.engines
            .iter()
            .position(|e| e.name() == name)
            .ok_or_else(|| PpcError::InvalidArgument(format!("unknown engine '{name}'")))
    }

    /// Submit a job. Unknown tenants/engines are errors (a malformed
    /// request); a full buffer is a *rejection* (a well-formed request the
    /// service sheds), returned as `Ok((id, Rejected))` so callers can
    /// tell the two apart.
    pub fn submit(&mut self, spec: JobSpec) -> Result<(JobId, JobStatus)> {
        let tenant = self.tenant_index(&spec.tenant)?;
        let engine = self.engine_index(&spec.engine)?;
        let id = JobId(self.records.len() as u64);
        let demand_s = spec.payload.demand_s();
        let now = self.clock_s;
        self.rollups[tenant].submitted += 1;

        let total_queued: usize = self.queued.iter().sum();
        let quota = &self.cfg.tenants[tenant].quota;
        match self
            .cfg
            .admission
            .decide(self.queued[tenant], quota, total_queued)
        {
            Err(_) => {
                self.records.push(JobRecord::rejected(
                    id,
                    tenant as u32,
                    NO_CLIENT,
                    demand_s,
                    now,
                ));
                self.pending.push(None);
                self.rollups[tenant].rejected += 1;
                self.events.push(TraceEvent {
                    at_s: now,
                    worker: NO_WORKER,
                    kind: EventKind::JobReject,
                });
                Ok((id, JobStatus::Rejected))
            }
            Ok(()) => {
                self.records.push(JobRecord::queued(
                    id,
                    tenant as u32,
                    NO_CLIENT,
                    demand_s,
                    now,
                ));
                self.pending.push(Some(Pending {
                    engine,
                    payload: spec.payload,
                    deadline_hint_s: spec.deadline_hint_s,
                }));
                self.sched.enqueue(
                    tenant,
                    QueuedJob {
                        job: id.0,
                        demand_s,
                        submitted_s: now,
                    },
                    spec.priority == Priority::Interactive,
                );
                self.queued[tenant] += 1;
                if self.queued[tenant] > self.rollups[tenant].peak_queued {
                    self.rollups[tenant].peak_queued = self.queued[tenant];
                }
                self.events.push(TraceEvent {
                    at_s: now,
                    worker: NO_WORKER,
                    kind: EventKind::JobSubmit,
                });
                Ok((id, JobStatus::Queued))
            }
        }
    }

    /// Current status of a job, queryable forever.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.records.get(id.0 as usize).map(|r| r.status)
    }

    /// The full lifecycle record of a job.
    pub fn record(&self, id: JobId) -> Option<&JobRecord> {
        self.records.get(id.0 as usize)
    }

    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Run every queued job to completion in fair-share order and return
    /// the service report. Per-tenant bills are the exact sums of each
    /// job's engine-reported cost, so they add up to the fleet total by
    /// construction.
    pub fn drain(&mut self, ctx: &RunContext) -> Result<ServeReport> {
        let n = self.cfg.tenants.len();
        let mut tenant_costs = vec![
            CostBreakdown {
                compute_cost: Usd::ZERO,
                amortized_cost: Usd::ZERO,
            };
            n
        ];
        loop {
            let next = {
                let running = &self.running;
                let tenants = &self.cfg.tenants;
                self.sched
                    .dequeue(|t| running[t] < tenants[t].quota.max_running)
            };
            let Some((tenant, qj)) = next else { break };
            let id = qj.job as usize;
            self.queued[tenant] -= 1;
            self.running[tenant] += 1;
            if self.running[tenant] > self.rollups[tenant].peak_running {
                self.rollups[tenant].peak_running = self.running[tenant];
            }
            let now = self.clock_s;
            self.records[id].advance(JobStatus::Admitted, now);
            self.events.push(TraceEvent {
                at_s: now,
                worker: NO_WORKER,
                kind: EventKind::JobAdmit,
            });
            self.records[id].advance(JobStatus::Running, now);
            self.events.push(TraceEvent {
                at_s: now,
                worker: 0,
                kind: EventKind::JobDispatch,
            });

            let pending = self.pending[id]
                .take()
                .expect("queued job lost its payload");
            let engine = &self.engines[pending.engine];
            let (makespan, cost, complete) = run_payload(engine.as_ref(), ctx, pending.payload)?;
            self.clock_s += makespan;
            let done = self.clock_s;

            self.running[tenant] -= 1;
            let status = if complete {
                JobStatus::Done
            } else {
                JobStatus::Failed
            };
            self.records[id].advance(status, done);
            self.events.push(TraceEvent {
                at_s: done,
                worker: 0,
                kind: EventKind::JobComplete,
            });
            let rec = self.records[id];
            let roll = &mut self.rollups[tenant];
            if complete {
                roll.completed += 1;
            } else {
                roll.failed += 1;
            }
            roll.busy_seconds += makespan;
            if let Some(lat) = rec.latency_s() {
                roll.latency.observe(lat);
                if pending.deadline_hint_s.is_some_and(|d| lat > d) {
                    roll.deadline_missed += 1;
                }
            }
            if let Some(wait) = rec.wait_s() {
                roll.wait.observe(wait);
            }
            if let Some(c) = cost {
                tenant_costs[tenant].compute_cost += c.compute_cost;
                tenant_costs[tenant].amortized_cost += c.amortized_cost;
            }
        }

        let fleet_cost = CostBreakdown {
            compute_cost: tenant_costs.iter().map(|c| c.compute_cost).sum(),
            amortized_cost: tenant_costs.iter().map(|c| c.amortized_cost).sum(),
        };
        let busy: f64 = self.rollups.iter().map(|r| r.busy_seconds).sum();
        let fleet = FleetSummary {
            instances_launched: 0,
            billed_hours: 0,
            used_seconds: busy,
            utilization: if busy > 0.0 { 1.0 } else { 0.0 },
            cost: fleet_cost,
        };
        Ok(ServeReport::build(
            "serve",
            &self.cfg.tenants,
            &self.rollups,
            tenant_costs,
            fleet,
            self.clock_s,
        ))
    }
}

/// Run one payload on `engine`, returning (makespan, cost, completed).
fn run_payload(
    engine: &dyn Engine,
    ctx: &RunContext,
    payload: JobPayload,
) -> Result<(f64, Option<CostBreakdown>, bool)> {
    match payload {
        JobPayload::Modeled { tasks, task_s } => {
            let specs: Vec<_> = (0..tasks as u64)
                .map(|i| {
                    ppc_core::task::TaskSpec::new(
                        i,
                        "modeled",
                        format!("job/task-{i}"),
                        ppc_core::task::ResourceProfile::cpu_bound(task_s),
                    )
                })
                .collect();
            let report = engine.simulate(ctx, &specs);
            Ok((
                report.summary.makespan_seconds,
                report.cost,
                report.is_complete(),
            ))
        }
        JobPayload::Workload(wl) => {
            let (report, _outputs) = engine.run(ctx, &wl)?;
            Ok((
                report.summary.makespan_seconds,
                report.cost,
                report.is_complete(),
            ))
        }
        JobPayload::Workflow(wf) => {
            let report = engine.simulate_workflow(ctx, &wf)?;
            let complete = report.is_complete();
            Ok((report.makespan_seconds, report.cost, complete))
        }
    }
}
