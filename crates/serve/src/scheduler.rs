//! Weighted deficit-round-robin (DRR) fair-share scheduling.
//!
//! Each tenant owns a *lane* (FIFO queue, apart from interactive
//! front-insertions). Backlogged lanes sit on a round-robin ring; a lane
//! visited with insufficient credit is topped up by `weight × quantum`
//! cpu-seconds and rotated, so over any backlogged interval tenant
//! throughput converges to the weight proportions regardless of job
//! sizes — a tenant submitting 10× bigger jobs simply gets served 10×
//! less often. Classic DRR per Shreedhar & Varghese, adapted to dispatch
//! one job per call so the caller can interleave capacity checks.

use std::collections::VecDeque;

/// One queued job as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedJob {
    /// Raw [`crate::JobId`] value.
    pub job: u64,
    /// Deficit currency: reference cpu-seconds.
    pub demand_s: f64,
    pub submitted_s: f64,
}

#[derive(Debug, Clone)]
struct Lane {
    weight: u32,
    deficit_s: f64,
    queue: VecDeque<QueuedJob>,
    in_ring: bool,
    /// Whether the lane's next visit starts a fresh turn (grants one
    /// `weight × quantum` top-up). False while the lane is mid-burst at
    /// the ring front spending leftover credit — topping up on every
    /// dequeue call would let one lane burst through its whole queue.
    fresh: bool,
}

/// The scheduler: lanes indexed by tenant, plus the active ring.
#[derive(Debug, Clone)]
pub struct DrrScheduler {
    quantum_s: f64,
    lanes: Vec<Lane>,
    ring: VecDeque<u32>,
}

impl DrrScheduler {
    /// `quantum_s` is the credit granted per ring visit to a weight-1
    /// lane; any positive value is fair, smaller values interleave
    /// tenants more finely.
    pub fn new(quantum_s: f64, weights: &[u32]) -> DrrScheduler {
        assert!(quantum_s > 0.0, "quantum must be positive");
        assert!(
            weights.iter().all(|&w| w > 0),
            "fair-share weights must be positive"
        );
        DrrScheduler {
            quantum_s,
            lanes: weights
                .iter()
                .map(|&w| Lane {
                    weight: w,
                    deficit_s: 0.0,
                    queue: VecDeque::new(),
                    in_ring: false,
                    fresh: true,
                })
                .collect(),
            ring: VecDeque::new(),
        }
    }

    /// Append a job to `lane` (or push it to the lane's front for
    /// interactive priority).
    pub fn enqueue(&mut self, lane: usize, job: QueuedJob, front: bool) {
        let l = &mut self.lanes[lane];
        if front {
            l.queue.push_front(job);
        } else {
            l.queue.push_back(job);
        }
        if !l.in_ring {
            l.in_ring = true;
            self.ring.push_back(lane as u32);
        }
    }

    pub fn queued(&self, lane: usize) -> usize {
        self.lanes[lane].queue.len()
    }

    pub fn total_queued(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// Earliest submission time among lane heads — the queue-age signal
    /// fed to the autoscaler (approximate under front-insertions).
    pub fn oldest_submitted(&self) -> Option<f64> {
        self.lanes
            .iter()
            .filter_map(|l| l.queue.front().map(|j| j.submitted_s))
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Dispatch the next job among lanes for which `eligible(lane)` holds
    /// (the caller's running-quota check). Returns `None` when nothing is
    /// queued or no eligible lane exists. A lane that drains its queue
    /// forfeits leftover credit — the standard DRR rule that stops idle
    /// tenants banking unbounded deficit.
    pub fn dequeue(
        &mut self,
        mut eligible: impl FnMut(usize) -> bool,
    ) -> Option<(usize, QueuedJob)> {
        loop {
            let len = self.ring.len();
            if len == 0 {
                return None;
            }
            let mut any_eligible = false;
            for _ in 0..len {
                let idx = self.ring.pop_front().unwrap() as usize;
                let quantum_s = self.quantum_s;
                let lane = &mut self.lanes[idx];
                if lane.queue.is_empty() {
                    lane.in_ring = false;
                    lane.deficit_s = 0.0;
                    lane.fresh = true;
                    continue;
                }
                if !eligible(idx) {
                    self.ring.push_back(idx as u32);
                    continue;
                }
                any_eligible = true;
                if lane.fresh {
                    lane.deficit_s += lane.weight as f64 * quantum_s;
                    lane.fresh = false;
                }
                if lane.queue.front().unwrap().demand_s <= lane.deficit_s {
                    let job = lane.queue.pop_front().unwrap();
                    lane.deficit_s -= job.demand_s;
                    if lane.queue.is_empty() {
                        // Standard DRR: a drained lane forfeits credit.
                        lane.in_ring = false;
                        lane.deficit_s = 0.0;
                        lane.fresh = true;
                    } else {
                        // Leftover credit: the burst continues next call.
                        self.ring.push_front(idx as u32);
                    }
                    return Some((idx, job));
                }
                // Turn over: rotate away; the next visit is a fresh turn.
                lane.fresh = true;
                self.ring.push_back(idx as u32);
            }
            // A full rotation with no eligible lane proves nothing can be
            // served; with eligible-but-unaffordable lanes, credit grew,
            // so another rotation makes progress.
            if !any_eligible {
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, demand: f64, at: f64) -> QueuedJob {
        QueuedJob {
            job: id,
            demand_s: demand,
            submitted_s: at,
        }
    }

    fn drain_order(s: &mut DrrScheduler) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        while let Some((lane, j)) = s.dequeue(|_| true) {
            out.push((lane, j.job));
        }
        out
    }

    #[test]
    fn equal_weights_alternate() {
        let mut s = DrrScheduler::new(10.0, &[1, 1]);
        for i in 0..4 {
            s.enqueue(0, job(i, 10.0, i as f64), false);
            s.enqueue(1, job(100 + i, 10.0, i as f64), false);
        }
        let lanes: Vec<usize> = drain_order(&mut s).iter().map(|(l, _)| *l).collect();
        assert_eq!(lanes, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn weights_set_throughput_ratio() {
        // Weight 3 vs 1, equal unit jobs: served counts track 3:1.
        let mut s = DrrScheduler::new(1.0, &[3, 1]);
        for i in 0..300 {
            s.enqueue(0, job(i, 1.0, 0.0), false);
        }
        for i in 0..300 {
            s.enqueue(1, job(1000 + i, 1.0, 0.0), false);
        }
        let first = drain_order(&mut s);
        let lane0_early = first[..200].iter().filter(|(l, _)| *l == 0).count();
        assert!(
            (140..=160).contains(&lane0_early),
            "weight-3 lane got {lane0_early}/200 of the early grants"
        );
    }

    #[test]
    fn big_jobs_do_not_hog() {
        // Lane 0 submits 10× bigger jobs at equal weight: over the
        // backlogged window it must be served ~10× less often, so served
        // *demand* stays near 1:1.
        let mut s = DrrScheduler::new(5.0, &[1, 1]);
        for i in 0..20 {
            s.enqueue(0, job(i, 50.0, 0.0), false);
        }
        for i in 0..200 {
            s.enqueue(1, job(1000 + i, 5.0, 0.0), false);
        }
        let mut served = [0.0f64, 0.0];
        for _ in 0..110 {
            let (lane, j) = s.dequeue(|_| true).unwrap();
            served[lane] += j.demand_s;
        }
        let ratio = served[0] / served[1];
        assert!(
            (0.7..=1.4).contains(&ratio),
            "served demand ratio {ratio} strayed from fair share"
        );
    }

    #[test]
    fn ineligible_lanes_are_skipped_without_starving_others() {
        let mut s = DrrScheduler::new(10.0, &[1, 1]);
        s.enqueue(0, job(0, 1.0, 0.0), false);
        s.enqueue(1, job(1, 1.0, 0.0), false);
        let got = s.dequeue(|lane| lane != 0).unwrap();
        assert_eq!(got.0, 1);
        // Lane 0 still queued; nobody eligible ⇒ None, no livelock.
        assert!(s.dequeue(|_| false).is_none());
        assert_eq!(s.queued(0), 1);
    }

    #[test]
    fn front_insertion_jumps_own_lane_only() {
        let mut s = DrrScheduler::new(1.0, &[1, 1]);
        s.enqueue(0, job(0, 1.0, 0.0), false);
        s.enqueue(0, job(1, 1.0, 1.0), true); // interactive
        s.enqueue(1, job(2, 1.0, 0.0), false);
        let order: Vec<u64> = drain_order(&mut s).iter().map(|(_, j)| *j).collect();
        // Job 1 beat job 0 within lane 0, but lane 1 kept its turn.
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn drained_lane_forfeits_credit() {
        // Lane 0 drains (forfeiting leftover credit), then both lanes
        // refill with 60-demand jobs under a 100 quantum. Had lane 0 kept
        // its 99 s of banked credit it could serve two jobs before lane 1
        // got one; with forfeiture the lanes alternate.
        let mut s = DrrScheduler::new(100.0, &[1, 1]);
        s.enqueue(0, job(0, 1.0, 0.0), false);
        assert_eq!(s.dequeue(|_| true).unwrap().1.job, 0);
        for i in 0..2 {
            s.enqueue(0, job(10 + i, 60.0, 0.0), false);
            s.enqueue(1, job(20 + i, 60.0, 0.0), false);
        }
        let lanes: Vec<usize> = drain_order(&mut s).iter().map(|(l, _)| *l).collect();
        assert_eq!(lanes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn oldest_submitted_tracks_lane_heads() {
        let mut s = DrrScheduler::new(10.0, &[1, 1]);
        assert_eq!(s.oldest_submitted(), None);
        s.enqueue(0, job(0, 1.0, 5.0), false);
        s.enqueue(1, job(1, 1.0, 2.0), false);
        assert_eq!(s.oldest_submitted(), Some(2.0));
    }

    #[test]
    fn huge_demand_eventually_served() {
        // A job 1000× the quantum must still be dispatched (credit
        // accumulates across rotations rather than livelocking).
        let mut s = DrrScheduler::new(1.0, &[1, 1]);
        s.enqueue(0, job(0, 1000.0, 0.0), false);
        s.enqueue(1, job(1, 1.0, 0.0), false);
        let mut got = Vec::new();
        while let Some((_, j)) = s.dequeue(|_| true) {
            got.push(j.job);
        }
        assert_eq!(got.len(), 2);
        assert!(got.contains(&0));
    }
}
