//! # ppc-serve — the multi-tenant job-service front door
//!
//! The paper runs each biomedical workload as a one-shot batch, but its
//! thesis is that pleasingly parallel bio apps belong on *shared* elastic
//! cloud infrastructure — many users submitting Cap3/BLAST/GTM jobs to a
//! long-lived service (the RBioCloud/CloudQTL evolution). This crate is
//! that front door, layered on `ppc-exec`:
//!
//! * [`JobSpec`]/[`JobId`]/[`JobStatus`] — the submission API and the
//!   queryable lifecycle state machine
//!   (`Queued → Admitted → Running → Done/Failed`, `Rejected` on shed).
//! * [`AdmissionPolicy`] — bounded per-tenant buffers with a service-wide
//!   cap; over-limit submissions are 429-rejected, never silently dropped
//!   after admission.
//! * [`DrrScheduler`] — weighted deficit round-robin across tenants, in
//!   units of reference cpu-seconds, so job-size games don't beat weights.
//! * [`JobService`] — the native service over real [`ppc_exec::Engine`]s.
//! * [`simulate_serve`] — the deterministic closed-loop load generator
//!   that drives millions of submissions through the DES against a fixed
//!   or `ppc-autoscale`-elastic fleet, reporting latency percentiles,
//!   rejection rate, Jain fairness, and per-tenant bills that sum
//!   *exactly* (micro-dollar) to the fleet's [`FleetLedger`] cost.
//!
//! [`FleetLedger`]: ppc_compute::billing::FleetLedger

pub mod admission;
pub mod job;
pub mod report;
pub mod scheduler;
pub mod service;
pub mod sim;
pub mod tenant;

pub use admission::{AdmissionPolicy, RejectReason};
pub use job::{JobId, JobPayload, JobRecord, JobSpec, JobStatus, Priority, NO_CLIENT};
pub use report::{
    apportion, apportion_cost, jain_index, FleetSummary, ServeReport, TenantReport, REPORT_SCHEMA,
};
pub use scheduler::{DrrScheduler, QueuedJob};
pub use service::{JobService, ServiceConfig};
pub use sim::{simulate_serve, ServeFleet, ServeRun, ServeSimConfig, TenantLoad};
pub use tenant::{TenantQuota, TenantRollup, TenantSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::metrics::RunSummary;
    use ppc_core::task::TaskSpec;
    use ppc_core::Result;
    use ppc_exec::{Engine, JobOutputs, RunContext, RunReport, Workload};

    /// A stub engine: each task "runs" for its reference cpu-seconds on
    /// one core, serially — enough to exercise the service machinery
    /// without pulling a real paradigm crate into the dependency graph.
    struct StubEngine;

    impl Engine for StubEngine {
        fn name(&self) -> &str {
            "stub"
        }

        fn run(&self, _ctx: &RunContext, _workload: &Workload) -> Result<(RunReport, JobOutputs)> {
            unimplemented!("the service tests only submit modeled jobs")
        }

        fn simulate(&self, _ctx: &RunContext, tasks: &[TaskSpec]) -> RunReport {
            let makespan: f64 = tasks.iter().map(|t| t.profile.cpu_seconds_ref).sum();
            RunReport {
                summary: RunSummary {
                    platform: "stub".into(),
                    cores: 1,
                    tasks: tasks.len(),
                    makespan_seconds: makespan,
                    redundant_executions: 0,
                    remote_bytes: 0,
                },
                failed: Vec::new(),
                total_attempts: tasks.len(),
                worker_deaths: 0,
                cost: Some(ppc_compute::billing::instance_cost(
                    &ppc_compute::instance::EC2_HCXL,
                    1,
                    makespan,
                )),
                trace: None,
            }
        }
    }

    fn service(max_queued: usize) -> JobService {
        let quota = TenantQuota {
            max_queued,
            max_running: 4,
        };
        let cfg = ServiceConfig::new(vec![
            TenantSpec::new("blast", 2).with_quota(quota),
            TenantSpec::new("cap3", 1).with_quota(quota),
        ]);
        JobService::new(cfg, vec![Box::new(StubEngine)]).unwrap()
    }

    #[test]
    fn submit_query_drain_roundtrip() {
        let mut svc = service(16);
        let (a, st) = svc
            .submit(JobSpec::modeled("blast", "stub", 4, 10.0))
            .unwrap();
        assert_eq!(st, JobStatus::Queued);
        let (b, _) = svc
            .submit(JobSpec::modeled("cap3", "stub", 2, 5.0))
            .unwrap();
        assert_eq!(svc.status(a), Some(JobStatus::Queued));

        let report = svc.drain(&RunContext::local()).unwrap();
        assert_eq!(svc.status(a), Some(JobStatus::Done));
        assert_eq!(svc.status(b), Some(JobStatus::Done));
        assert_eq!(report.completed, 2);
        assert_eq!(report.rejected, 0);
        // Status stays queryable after the fact, with a full history.
        let hist = svc.record(a).unwrap().history();
        assert_eq!(hist.len(), 4);
        assert_eq!(hist.last().unwrap().0, JobStatus::Done);
        // Per-tenant bills sum exactly to the fleet bill.
        let sum: ppc_core::money::Usd = report.tenants.iter().map(|t| t.cost.compute_cost).sum();
        assert_eq!(sum, report.fleet.cost.compute_cost);
    }

    #[test]
    fn full_buffer_rejects_with_429_semantics() {
        let mut svc = service(2);
        for _ in 0..2 {
            let (_, st) = svc
                .submit(JobSpec::modeled("blast", "stub", 1, 1.0))
                .unwrap();
            assert_eq!(st, JobStatus::Queued);
        }
        let (id, st) = svc
            .submit(JobSpec::modeled("blast", "stub", 1, 1.0))
            .unwrap();
        assert_eq!(st, JobStatus::Rejected);
        assert_eq!(svc.status(id), Some(JobStatus::Rejected));
        // The other tenant's buffer is unaffected.
        let (_, st) = svc
            .submit(JobSpec::modeled("cap3", "stub", 1, 1.0))
            .unwrap();
        assert_eq!(st, JobStatus::Queued);
        // Rejected jobs stay rejected through a drain; queued ones run.
        let report = svc.drain(&RunContext::local()).unwrap();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.completed, 3);
        assert_eq!(svc.status(id), Some(JobStatus::Rejected));
    }

    #[test]
    fn unknown_names_are_errors_not_rejections() {
        let mut svc = service(4);
        assert!(svc
            .submit(JobSpec::modeled("nobody", "stub", 1, 1.0))
            .is_err());
        assert!(svc
            .submit(JobSpec::modeled("blast", "hadoop2", 1, 1.0))
            .is_err());
    }

    #[test]
    fn drain_respects_fair_share_order() {
        let mut svc = service(64);
        for _ in 0..6 {
            svc.submit(JobSpec::modeled("blast", "stub", 1, 30.0))
                .unwrap();
            svc.submit(JobSpec::modeled("cap3", "stub", 1, 30.0))
                .unwrap();
        }
        let report = svc.drain(&RunContext::local()).unwrap();
        assert_eq!(report.completed, 12);
        // Weight-2 blast got served earlier on average; its mean wait on
        // the virtual clock must be at most cap3's.
        let blast = &report.tenants[0];
        let cap3 = &report.tenants[1];
        assert!(blast.mean_wait_s <= cap3.mean_wait_s + 1e-9);
    }

    #[test]
    fn interactive_priority_jumps_own_queue() {
        let mut svc = service(64);
        let (batch, _) = svc
            .submit(JobSpec::modeled("blast", "stub", 1, 10.0))
            .unwrap();
        let (inter, _) = svc
            .submit(JobSpec::modeled("blast", "stub", 1, 10.0).with_priority(Priority::Interactive))
            .unwrap();
        svc.drain(&RunContext::local()).unwrap();
        let b = svc.record(batch).unwrap();
        let i = svc.record(inter).unwrap();
        assert!(i.started_s.unwrap() < b.started_s.unwrap());
    }
}
