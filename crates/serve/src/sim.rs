//! The deterministic closed-loop load generator: thousands of simulated
//! clients submitting jobs to the service front door, driven through the
//! DES core so a million submissions replay bit-identically from a seed.
//!
//! Each client loops `submit → wait for completion (or back off after a
//! rejection) → think → submit` until its submission budget is spent, so
//! the offered load is *closed-loop*: overload shows up as queueing delay
//! and shed submissions, not as an unbounded event backlog. Jobs occupy
//! one instance each for `overhead + demand / cores` seconds; the fleet is
//! either fixed or elastic under the `ppc-autoscale` controller, and the
//! bill comes from the same [`FleetLedger`] the batch engines use.

use crate::admission::AdmissionPolicy;
use crate::job::{JobId, JobRecord, JobStatus, Priority};
use crate::report::{apportion_cost, FleetSummary, ServeReport};
use crate::scheduler::{DrrScheduler, QueuedJob};
use crate::tenant::{TenantRollup, TenantSpec};
use ppc_autoscale::{AutoscaleConfig, Controller, Decision, Telemetry};
use ppc_compute::billing::FleetLedger;
use ppc_compute::instance::InstanceType;
use ppc_core::rng::Pcg32;
use ppc_des::{Engine as DesEngine, QueueKind, SimTime};
use ppc_exec::RunContext;
use ppc_trace::{EventKind, TraceEvent, NO_WORKER};
use std::cell::RefCell;
use std::rc::Rc;

/// One tenant's offered load.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    pub spec: TenantSpec,
    /// Closed-loop clients submitting on this tenant's behalf.
    pub clients: u32,
    /// Submissions each client makes before retiring (rejected attempts
    /// count — the budget bounds the run deterministically).
    pub jobs_per_client: u32,
    /// Mean think time between a client's jobs, seconds (exponential).
    pub think_s: f64,
    /// Tasks per job and reference seconds per task.
    pub job_tasks: u32,
    pub task_s: f64,
    /// Log-normal sigma jittering each job's total demand.
    pub jitter_sigma: f64,
    /// Client back-off after a rejection, seconds (uniformly jittered).
    pub retry_backoff_s: f64,
    pub priority: Priority,
    /// Latency hint; completions past it count as `deadline_missed`.
    pub deadline_hint_s: Option<f64>,
}

impl TenantLoad {
    pub fn new(spec: TenantSpec, clients: u32, jobs_per_client: u32) -> TenantLoad {
        TenantLoad {
            spec,
            clients,
            jobs_per_client,
            think_s: 10.0,
            job_tasks: 8,
            task_s: 4.0,
            jitter_sigma: 0.3,
            retry_backoff_s: 15.0,
            priority: Priority::Batch,
            deadline_hint_s: None,
        }
    }

    /// Total submissions this tenant's clients will make.
    pub fn submissions(&self) -> u64 {
        self.clients as u64 * self.jobs_per_client as u64
    }
}

/// The shared fleet the service multiplexes tenants over.
#[derive(Debug, Clone)]
pub enum ServeFleet {
    /// A fixed pool of instances, billed from t=0 to the horizon.
    Fixed { instances: u32 },
    /// An elastic pool under the autoscale controller.
    Elastic(AutoscaleConfig),
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct ServeSimConfig {
    pub seed: u64,
    pub itype: InstanceType,
    pub fleet: ServeFleet,
    /// Fair-share quantum (cpu-seconds of credit per scheduler visit).
    pub quantum_s: f64,
    pub admission: AdmissionPolicy,
    /// Fixed per-job dispatch/teardown overhead, seconds.
    pub dispatch_overhead_s: f64,
    /// Billed-hour length (tests compress it).
    pub billing_hour_s: f64,
    /// Event-queue backend (`RunContext::with_event_queue` overrides).
    pub queue: QueueKind,
    /// Record per-job lifecycle [`TraceEvent`]s (off for 1M-job runs).
    pub record_events: bool,
    pub tenants: Vec<TenantLoad>,
}

impl ServeSimConfig {
    pub fn new(itype: InstanceType, fleet: ServeFleet, tenants: Vec<TenantLoad>) -> ServeSimConfig {
        ServeSimConfig {
            seed: 4242,
            itype,
            fleet,
            quantum_s: 60.0,
            admission: AdmissionPolicy::default(),
            dispatch_overhead_s: 1.0,
            billing_hour_s: 3600.0,
            queue: QueueKind::TimingWheel,
            record_events: false,
            tenants,
        }
    }

    /// Total submissions across all tenants.
    pub fn submissions(&self) -> u64 {
        self.tenants.iter().map(|t| t.submissions()).sum()
    }
}

/// Everything a load-generator run produces.
pub struct ServeRun {
    pub report: ServeReport,
    /// One record per submission, indexed by [`JobId`].
    pub records: Vec<JobRecord>,
    /// Job lifecycle + fleet events (empty unless `record_events`).
    pub events: Vec<TraceEvent>,
}

struct SimSlot {
    /// Usable for dispatch (warmed up, not retired).
    live: bool,
    draining: bool,
    busy: Option<JobId>,
}

struct Client {
    tenant: u32,
    remaining: u32,
    rng: Pcg32,
}

struct World {
    loads: Vec<TenantLoad>,
    admission: AdmissionPolicy,
    itype_cores: usize,
    dispatch_overhead_s: f64,
    sched: DrrScheduler,
    records: Vec<JobRecord>,
    rollups: Vec<TenantRollup>,
    queued: Vec<usize>,
    running: Vec<usize>,
    total_queued: usize,
    total_running: usize,
    /// Idle usable slots, LIFO (deterministic, keeps hot instances busy).
    free: Vec<u32>,
    slots: Vec<SimSlot>,
    controller: Option<Controller>,
    clients: Vec<Client>,
    active_clients: usize,
    last_finish_s: f64,
    record_events: bool,
    events: Vec<TraceEvent>,
}

impl World {
    fn event(&mut self, at_s: f64, worker: u32, kind: EventKind) {
        if self.record_events {
            self.events.push(TraceEvent { at_s, worker, kind });
        }
    }

    fn finished(&self) -> bool {
        self.active_clients == 0 && self.total_queued == 0 && self.total_running == 0
    }

    fn service_time(&self, demand_s: f64, tasks: u32) -> f64 {
        // Pleasingly parallel: the job's tasks spread over the instance's
        // cores; a job smaller than the core count still pays per-wave.
        let lanes = (self.itype_cores as u32).min(tasks.max(1)) as f64;
        self.dispatch_overhead_s + demand_s / lanes
    }
}

type Shared = Rc<RefCell<World>>;

/// Run the closed-loop load generator. Deterministic in
/// `ctx.seed_or(cfg.seed)`; the event-queue backend
/// (`ctx.queue_or(cfg.queue)`) never changes results, only speed.
pub fn simulate_serve(ctx: &RunContext, cfg: &ServeSimConfig) -> ServeRun {
    assert!(
        !cfg.tenants.is_empty(),
        "serve sim needs at least one tenant"
    );
    let seed = ctx.seed_or(cfg.seed);
    let mut des = DesEngine::with_queue(ctx.queue_or(cfg.queue));

    let weights: Vec<u32> = cfg.tenants.iter().map(|t| t.spec.weight).collect();
    let n_tenants = cfg.tenants.len();

    // Fleet: fixed slots are live at t=0; elastic starts at the
    // controller's min fleet (launched warm at t=0, like the batch sims).
    let (controller, initial_slots) = match &cfg.fleet {
        ServeFleet::Fixed { instances } => {
            assert!(*instances >= 1, "fixed fleet needs at least one instance");
            (None, *instances)
        }
        ServeFleet::Elastic(auto) => {
            let c = Controller::new(auto.clone());
            let n = c.capacity();
            (Some(c), n)
        }
    };

    let mut clients = Vec::new();
    for (t, load) in cfg.tenants.iter().enumerate() {
        for c in 0..load.clients {
            clients.push(Client {
                tenant: t as u32,
                remaining: load.jobs_per_client,
                // Per-client stream: deterministic and independent of
                // event interleaving.
                rng: Pcg32::for_stream(seed, ((t as u64) << 32) | c as u64),
            });
        }
    }
    let n_clients = clients.len();

    let world: Shared = Rc::new(RefCell::new(World {
        loads: cfg.tenants.clone(),
        admission: cfg.admission,
        itype_cores: cfg.itype.cores,
        dispatch_overhead_s: cfg.dispatch_overhead_s,
        sched: DrrScheduler::new(cfg.quantum_s, &weights),
        records: Vec::with_capacity(cfg.submissions() as usize),
        rollups: vec![TenantRollup::default(); n_tenants],
        queued: vec![0; n_tenants],
        running: vec![0; n_tenants],
        total_queued: 0,
        total_running: 0,
        free: (0..initial_slots).rev().collect(),
        slots: (0..initial_slots)
            .map(|_| SimSlot {
                live: true,
                draining: false,
                busy: None,
            })
            .collect(),
        controller,
        clients,
        active_clients: n_clients,
        last_finish_s: 0.0,
        record_events: cfg.record_events,
        events: Vec::new(),
    }));

    // Stagger first submissions over one mean think time per tenant so a
    // million clients do not all arrive in the same microsecond.
    for ci in 0..n_clients {
        let first = {
            let mut w = world.borrow_mut();
            let tenant = w.clients[ci].tenant as usize;
            let think = w.loads[tenant].think_s;
            w.clients[ci].rng.uniform(0.0, think.max(1e-6))
        };
        let w = world.clone();
        des.schedule_at(SimTime::from_secs_f64(first), move |des| {
            submit(&w, des, ci);
        });
    }

    // Autoscale evaluation ticks.
    if let ServeFleet::Elastic(auto) = &cfg.fleet {
        let w = world.clone();
        let interval = auto.interval_s;
        des.schedule_at(SimTime::from_secs_f64(interval), move |des| {
            tick(&w, des, interval);
        });
    }

    des.run();

    let world = Rc::try_unwrap(world)
        .unwrap_or_else(|_| panic!("events still hold the world"))
        .into_inner();
    finalize(cfg, world)
}

fn submit(world: &Shared, des: &mut DesEngine, ci: usize) {
    let now = des.now().as_secs_f64();
    let mut w = world.borrow_mut();
    let tenant = w.clients[ci].tenant as usize;
    let load = w.loads[tenant].clone();
    w.clients[ci].remaining -= 1;

    let demand_s = {
        let rng = &mut w.clients[ci].rng;
        let jitter = if load.jitter_sigma > 0.0 {
            rng.log_normal(0.0, load.jitter_sigma)
        } else {
            1.0
        };
        load.job_tasks as f64 * load.task_s * jitter
    };
    let id = JobId(w.records.len() as u64);
    w.rollups[tenant].submitted += 1;

    let verdict = w
        .admission
        .decide(w.queued[tenant], &load.spec.quota, w.total_queued);
    match verdict {
        Err(_) => {
            let rec = JobRecord::rejected(id, tenant as u32, ci as u32, demand_s, now);
            w.records.push(rec);
            w.rollups[tenant].rejected += 1;
            w.event(now, NO_WORKER, EventKind::JobReject);
            // Shed: the client backs off and retries (a fresh submission)
            // if it still has budget.
            if w.clients[ci].remaining > 0 {
                let backoff = {
                    let rng = &mut w.clients[ci].rng;
                    load.retry_backoff_s * rng.uniform(0.5, 1.5)
                };
                drop(w);
                let wshared = world.clone();
                des.schedule_in(SimTime::from_secs_f64(backoff), move |des| {
                    submit(&wshared, des, ci);
                });
            } else {
                w.active_clients -= 1;
            }
        }
        Ok(()) => {
            let rec = JobRecord::queued(id, tenant as u32, ci as u32, demand_s, now);
            w.records.push(rec);
            w.sched.enqueue(
                tenant,
                QueuedJob {
                    job: id.0,
                    demand_s,
                    submitted_s: now,
                },
                load.priority == Priority::Interactive,
            );
            w.queued[tenant] += 1;
            w.total_queued += 1;
            if w.queued[tenant] > w.rollups[tenant].peak_queued {
                w.rollups[tenant].peak_queued = w.queued[tenant];
            }
            w.event(now, NO_WORKER, EventKind::JobSubmit);
            drop(w);
            try_dispatch(world, des);
        }
    }
}

fn try_dispatch(world: &Shared, des: &mut DesEngine) {
    let now = des.now().as_secs_f64();
    loop {
        let mut w = world.borrow_mut();
        if w.free.is_empty() {
            return;
        }
        let next = {
            let World {
                sched,
                running,
                loads,
                ..
            } = &mut *w;
            sched.dequeue(|t| running[t] < loads[t].spec.quota.max_running)
        };
        let Some((tenant, qj)) = next else {
            return;
        };
        let slot = w.free.pop().unwrap();
        let id = JobId(qj.job);
        let load_tasks = w.loads[tenant].job_tasks;
        let service = w.service_time(qj.demand_s, load_tasks);

        let rec = &mut w.records[qj.job as usize];
        rec.advance(JobStatus::Admitted, now);
        rec.advance(JobStatus::Running, now);
        w.queued[tenant] -= 1;
        w.total_queued -= 1;
        w.running[tenant] += 1;
        w.total_running += 1;
        if w.running[tenant] > w.rollups[tenant].peak_running {
            w.rollups[tenant].peak_running = w.running[tenant];
        }
        w.rollups[tenant].busy_seconds += service;
        w.slots[slot as usize].busy = Some(id);
        w.event(now, slot, EventKind::JobDispatch);
        drop(w);

        let wshared = world.clone();
        des.schedule_in(SimTime::from_secs_f64(service), move |des| {
            complete(&wshared, des, slot);
        });
    }
}

fn complete(world: &Shared, des: &mut DesEngine, slot: u32) {
    let now = des.now().as_secs_f64();
    let mut w = world.borrow_mut();
    let id = w.slots[slot as usize]
        .busy
        .take()
        .expect("completion on an idle slot");
    let (tenant, ci, latency, wait) = {
        let rec = &mut w.records[id.0 as usize];
        rec.advance(JobStatus::Done, now);
        (
            rec.tenant as usize,
            rec.client as usize,
            rec.latency_s().unwrap(),
            rec.wait_s().unwrap(),
        )
    };
    w.running[tenant] -= 1;
    w.total_running -= 1;
    w.last_finish_s = now;
    let deadline = w.loads[tenant].deadline_hint_s;
    {
        let roll = &mut w.rollups[tenant];
        roll.completed += 1;
        roll.latency.observe(latency);
        roll.wait.observe(wait);
        if deadline.is_some_and(|d| latency > d) {
            roll.deadline_missed += 1;
        }
    }
    w.event(now, slot, EventKind::JobComplete);

    // Slot teardown: a draining slot retires the moment its job finishes;
    // otherwise it returns to the idle pool.
    if w.slots[slot as usize].draining {
        w.slots[slot as usize].live = false;
        w.controller
            .as_mut()
            .expect("draining slot without a controller")
            .confirm_retired(slot, now);
    } else {
        w.free.push(slot);
    }

    // Closed loop: the submitting client thinks, then submits again.
    if w.clients[ci].remaining > 0 {
        let think = {
            let mean = w.loads[tenant].think_s;
            w.clients[ci].rng.exponential(mean.max(1e-9))
        };
        drop(w);
        let wshared = world.clone();
        des.schedule_in(SimTime::from_secs_f64(think), move |des| {
            submit(&wshared, des, ci);
        });
    } else {
        w.active_clients -= 1;
        drop(w);
    }
    try_dispatch(world, des);
}

fn tick(world: &Shared, des: &mut DesEngine, interval_s: f64) {
    let now = des.now().as_secs_f64();
    let mut w = world.borrow_mut();
    if w.finished() {
        return; // stop rescheduling; the run drains out
    }
    let telemetry = Telemetry {
        queued: w.total_queued,
        in_flight: w.total_running,
        oldest_age_s: w.sched.oldest_submitted().map(|s| (now - s).max(0.0)),
    };
    let warmup_s = w
        .controller
        .as_ref()
        .expect("tick without a controller")
        .config()
        .warmup_s;
    let decision = w.controller.as_mut().unwrap().decide(now, &telemetry);
    match decision {
        Decision::Hold => {}
        Decision::Launch { ids } => {
            for id in ids {
                assert_eq!(id as usize, w.slots.len(), "slot ids must be dense");
                w.slots.push(SimSlot {
                    live: false,
                    draining: false,
                    busy: None,
                });
                w.event(now, id, EventKind::Launch);
                let wshared = world.clone();
                des.schedule_in(SimTime::from_secs_f64(warmup_s), move |des| {
                    warm(&wshared, des, id);
                });
            }
        }
        Decision::Drain { ids } => {
            for id in ids {
                w.event(now, id, EventKind::Drain);
                let slot = &mut w.slots[id as usize];
                slot.draining = true;
                if slot.busy.is_none() {
                    // Idle victim: retire right away.
                    slot.live = false;
                    if let Some(pos) = w.free.iter().position(|&s| s == id) {
                        w.free.swap_remove(pos);
                    }
                    w.controller.as_mut().unwrap().confirm_retired(id, now);
                }
            }
        }
    }
    drop(w);
    let wshared = world.clone();
    des.schedule_in(SimTime::from_secs_f64(interval_s), move |des| {
        tick(&wshared, des, interval_s);
    });
}

fn warm(world: &Shared, des: &mut DesEngine, slot: u32) {
    let mut w = world.borrow_mut();
    // The controller only drains *active* slots and a warm event always
    // precedes a same-instant tick, but guard anyway: a slot drained
    // before its warm event must never re-enter the idle pool.
    if w.slots[slot as usize].draining {
        return;
    }
    w.slots[slot as usize].live = true;
    w.free.push(slot);
    drop(w);
    try_dispatch(world, des);
}

fn finalize(cfg: &ServeSimConfig, w: World) -> ServeRun {
    let horizon = w.last_finish_s;
    let mut ledger = FleetLedger::new(cfg.itype, cfg.billing_hour_s);
    match &w.controller {
        None => {
            for _ in 0..w.slots.len() {
                ledger.launch(0.0);
            }
        }
        Some(c) => {
            for slot in c.slots() {
                let idx = ledger.launch(slot.launched_at);
                if let Some(r) = slot.retired_at {
                    ledger.retire(idx, r.min(horizon.max(slot.launched_at)));
                }
            }
        }
    }
    let fleet_cost = ledger.cost(horizon);
    let used = ledger.used_seconds(horizon);
    let busy: f64 = w.rollups.iter().map(|r| r.busy_seconds).sum();
    let fleet = FleetSummary {
        instances_launched: ledger.launched(),
        billed_hours: ledger.billed_hours(horizon),
        used_seconds: used,
        utilization: if used > 0.0 { busy / used } else { 0.0 },
        cost: fleet_cost,
    };
    let shares: Vec<f64> = w.rollups.iter().map(|r| r.busy_seconds).collect();
    let tenant_costs = apportion_cost(&fleet_cost, &shares);
    let specs: Vec<TenantSpec> = cfg.tenants.iter().map(|t| t.spec.clone()).collect();
    let report = ServeReport::build(
        "serve-sim",
        &specs,
        &w.rollups,
        tenant_costs,
        fleet,
        horizon,
    );
    ServeRun {
        report,
        records: w.records,
        events: w.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantQuota;
    use ppc_compute::instance::EC2_HCXL;

    fn two_tenant_cfg(overload: bool) -> ServeSimConfig {
        let quota = TenantQuota {
            max_queued: 50,
            max_running: 8,
        };
        // Overload needs more clients than the bounded buffer holds
        // (closed-loop queue depth is capped by the client count).
        let (clients, jobs) = if overload { (80, 12) } else { (20, 25) };
        let mk = |name: &str, weight| {
            TenantLoad::new(
                TenantSpec::new(name, weight).with_quota(quota),
                clients,
                jobs,
            )
        };
        let mut a = mk("blast", 2);
        let mut b = mk("cap3", 1);
        a.think_s = if overload { 2.0 } else { 40.0 };
        b.think_s = a.think_s;
        a.deadline_hint_s = Some(300.0);
        let mut cfg = ServeSimConfig::new(EC2_HCXL, ServeFleet::Fixed { instances: 8 }, vec![a, b]);
        cfg.record_events = true;
        cfg
    }

    fn ctx() -> RunContext {
        RunContext::local()
    }

    #[test]
    fn all_submissions_accounted() {
        let cfg = two_tenant_cfg(false);
        let run = simulate_serve(&ctx(), &cfg);
        assert_eq!(run.records.len() as u64, cfg.submissions());
        assert_eq!(run.report.submitted, cfg.submissions());
        assert_eq!(
            run.report.submitted,
            run.report.rejected + run.report.completed + run.report.failed
        );
        // Every non-rejected job reached a terminal state.
        assert!(run.records.iter().all(|r| r.status.is_terminal()));
    }

    #[test]
    fn replay_is_bit_identical_across_backends() {
        let cfg = two_tenant_cfg(true);
        let a = simulate_serve(&ctx(), &cfg);
        let b = simulate_serve(&ctx().with_event_queue(QueueKind::BinaryHeap), &cfg);
        let c = simulate_serve(&ctx().with_event_queue(QueueKind::Calendar), &cfg);
        assert_eq!(JobRecord::digest(&a.records), JobRecord::digest(&b.records));
        assert_eq!(JobRecord::digest(&a.records), JobRecord::digest(&c.records));
        assert_eq!(a.report, b.report);
        assert_eq!(a.report, c.report);
    }

    #[test]
    fn context_seed_changes_the_run() {
        let cfg = two_tenant_cfg(false);
        let a = simulate_serve(&ctx(), &cfg);
        let b = simulate_serve(&ctx().with_seed(7), &cfg);
        assert_ne!(JobRecord::digest(&a.records), JobRecord::digest(&b.records));
    }

    #[test]
    fn quotas_hold_under_overload() {
        let cfg = two_tenant_cfg(true);
        let run = simulate_serve(&ctx(), &cfg);
        for t in &run.report.tenants {
            assert!(
                t.peak_queued <= 50,
                "{}: peak_queued {}",
                t.tenant,
                t.peak_queued
            );
            assert!(
                t.peak_running <= 8,
                "{}: peak_running {}",
                t.tenant,
                t.peak_running
            );
        }
        // Overload must shed something through the bounded buffers.
        assert!(run.report.rejected > 0);
    }

    #[test]
    fn elastic_fleet_scales_and_bills_exactly() {
        let mut cfg = two_tenant_cfg(true);
        let mut auto = AutoscaleConfig::target_tracking(2, 12, 2.0);
        auto.interval_s = 5.0;
        auto.warmup_s = 10.0;
        auto.scale_up_cooldown_s = 10.0;
        auto.scale_down_cooldown_s = 20.0;
        auto.billing_hour_s = cfg.billing_hour_s;
        cfg.fleet = ServeFleet::Elastic(auto);
        let run = simulate_serve(&ctx(), &cfg);
        assert!(run.report.fleet.instances_launched > 2, "never scaled up");
        // Per-tenant bills sum exactly to the fleet bill (ServeReport::build
        // asserts it; double-check through the public type).
        let sum: ppc_core::money::Usd =
            run.report.tenants.iter().map(|t| t.cost.compute_cost).sum();
        assert_eq!(sum, run.report.fleet.cost.compute_cost);
        assert_eq!(run.report.submitted, cfg.submissions());
    }

    #[test]
    fn weighted_tenant_gets_more_service_under_contention() {
        // Same offered load, weight 2 vs 1, scarce fixed fleet: the
        // heavier tenant must complete more work.
        let cfg = two_tenant_cfg(true);
        let run = simulate_serve(&ctx(), &cfg);
        let blast = &run.report.tenants[0];
        let cap3 = &run.report.tenants[1];
        assert!(
            blast.busy_seconds > cap3.busy_seconds,
            "weight-2 tenant served {} s vs {} s",
            blast.busy_seconds,
            cap3.busy_seconds
        );
        assert!(run.report.fairness_jain > 0.5);
    }

    #[test]
    fn lifecycle_events_recorded() {
        let cfg = two_tenant_cfg(false);
        let run = simulate_serve(&ctx(), &cfg);
        let kinds: Vec<EventKind> = run.events.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::JobSubmit));
        assert!(kinds.contains(&EventKind::JobDispatch));
        assert!(kinds.contains(&EventKind::JobComplete));
        let dispatches = kinds
            .iter()
            .filter(|k| **k == EventKind::JobDispatch)
            .count();
        assert_eq!(dispatches as u64, run.report.completed + run.report.failed);
    }
}
