//! Tenants: quotas, weights, and the per-tenant accounting rollup.

use ppc_trace::Histogram;

/// Bounded-buffer limits for one tenant. Both bounds are *hard*: the
/// admission layer sheds submissions past `max_queued`, and the scheduler
/// never dispatches a tenant past `max_running` — the two invariants the
/// property tests pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Most jobs the tenant may have waiting (its bounded buffer size).
    pub max_queued: usize,
    /// Most jobs the tenant may have on fleet capacity at once.
    pub max_running: usize,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            max_queued: 1024,
            max_running: 256,
        }
    }
}

/// One tenant of the service.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    pub name: String,
    /// Fair-share weight: a weight-2 tenant gets twice the backlogged
    /// throughput of a weight-1 tenant (deficit round-robin credit rate).
    pub weight: u32,
    pub quota: TenantQuota,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>, weight: u32) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight,
            quota: TenantQuota::default(),
        }
    }

    pub fn with_quota(mut self, quota: TenantQuota) -> TenantSpec {
        self.quota = quota;
        self
    }
}

/// Mutable per-tenant accounting, updated as jobs move through the
/// lifecycle; the raw material for [`crate::report::TenantReport`].
#[derive(Debug, Clone, Default)]
pub struct TenantRollup {
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    /// Jobs that finished after their `deadline_hint_s`.
    pub deadline_missed: u64,
    pub peak_queued: usize,
    pub peak_running: usize,
    /// Instance-seconds this tenant's jobs occupied — the billing share.
    pub busy_seconds: f64,
    /// Submit → terminal latency of completed jobs.
    pub latency: Histogram,
    /// Submit → dispatch queueing delay of completed jobs.
    pub wait: Histogram,
}

impl TenantRollup {
    pub fn rejection_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.rejected as f64 / self.submitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_rejection_rate() {
        let mut r = TenantRollup::default();
        assert_eq!(r.rejection_rate(), 0.0);
        r.submitted = 10;
        r.rejected = 3;
        assert!((r.rejection_rate() - 0.3).abs() < 1e-12);
    }
}
