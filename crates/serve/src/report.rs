//! Service-level reporting: per-tenant rollups, fleet summary, fairness,
//! and the exact apportionment of fleet cost to tenants.

use crate::tenant::{TenantRollup, TenantSpec};
use ppc_compute::billing::CostBreakdown;
use ppc_core::json::Json;
use ppc_core::money::Usd;
use ppc_trace::Histogram;

pub use ppc_exec::REPORT_SCHEMA;

/// Jain's fairness index over per-tenant normalized service:
/// `J = (Σx)² / (n·Σx²)`, 1.0 = perfectly fair, `1/n` = one tenant took
/// everything. Empty or all-zero input reads as fair (nobody was
/// shortchanged when nobody was served).
pub fn jain_index(xs: &[f64]) -> f64 {
    let xs: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if xs.is_empty() {
        return 1.0;
    }
    let s: f64 = xs.iter().sum();
    let s2: f64 = xs.iter().map(|x| x * x).sum();
    if s2 <= 0.0 {
        return 1.0;
    }
    (s * s) / (xs.len() as f64 * s2)
}

/// Split `total` across `shares` proportionally, exactly: the parts are
/// micro-dollar amounts that sum to `total` bit-for-bit (largest-remainder
/// apportionment). All-zero shares split equally, so no money is ever
/// dropped or minted.
pub fn apportion(total: Usd, shares: &[f64]) -> Vec<Usd> {
    if shares.is_empty() {
        return Vec::new();
    }
    let clamped: Vec<f64> = shares
        .iter()
        .map(|&s| if s.is_finite() && s > 0.0 { s } else { 0.0 })
        .collect();
    let sum: f64 = clamped.iter().sum();
    if sum <= 0.0 {
        return apportion(total, &vec![1.0; shares.len()]);
    }
    let micros = total.as_micros();
    let mut parts = vec![0i64; clamped.len()];
    let mut rems: Vec<(f64, usize)> = Vec::with_capacity(clamped.len());
    for (i, s) in clamped.iter().enumerate() {
        let exact = micros as f64 * (s / sum);
        let floor = exact.floor() as i64;
        parts[i] = floor;
        rems.push((exact - floor as f64, i));
    }
    let mut left = micros - parts.iter().sum::<i64>();
    // Largest fractional remainders absorb the leftover micro-dollars;
    // ties break by index so the split is deterministic. Float rounding
    // can leave `left` slightly outside [0, n]; the cyclic walk below
    // stays exact regardless.
    rems.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let n = rems.len();
    let mut k = 0usize;
    while left > 0 {
        parts[rems[k % n].1] += 1;
        left -= 1;
        k += 1;
    }
    k = 0;
    while left < 0 {
        let idx = rems[n - 1 - (k % n)].1;
        if parts[idx] > 0 {
            parts[idx] -= 1;
            left += 1;
        }
        k += 1;
    }
    parts.into_iter().map(Usd::micros).collect()
}

/// Split a [`CostBreakdown`] across shares; both views sum exactly.
pub fn apportion_cost(total: &CostBreakdown, shares: &[f64]) -> Vec<CostBreakdown> {
    let compute = apportion(total.compute_cost, shares);
    let amortized = apportion(total.amortized_cost, shares);
    compute
        .into_iter()
        .zip(amortized)
        .map(|(c, a)| CostBreakdown {
            compute_cost: c,
            amortized_cost: a,
        })
        .collect()
}

/// One tenant's slice of a service run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantReport {
    pub tenant: String,
    pub weight: u32,
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub deadline_missed: u64,
    pub peak_queued: usize,
    pub peak_running: usize,
    pub busy_seconds: f64,
    pub rejection_rate: f64,
    pub latency_p50_s: f64,
    pub latency_p95_s: f64,
    pub latency_p99_s: f64,
    pub mean_wait_s: f64,
    /// This tenant's exact slice of the fleet bill.
    pub cost: CostBreakdown,
}

/// The shared fleet's bill and usage.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    pub instances_launched: usize,
    pub billed_hours: u64,
    pub used_seconds: f64,
    /// Busy instance-seconds / provisioned instance-seconds.
    pub utilization: f64,
    pub cost: CostBreakdown,
}

/// The service-level report: overload headline numbers plus per-tenant
/// rollups whose bills sum exactly to the fleet's.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    pub platform: String,
    /// End of the run: the last job completion time.
    pub horizon_s: f64,
    pub submitted: u64,
    pub rejected: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejection_rate: f64,
    pub latency_p50_s: f64,
    pub latency_p95_s: f64,
    pub latency_p99_s: f64,
    /// Jain's index over per-tenant `busy_seconds / weight`.
    pub fairness_jain: f64,
    pub fleet: FleetSummary,
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// Assemble the report from per-tenant rollups. `tenant_costs` must be
    /// the exact apportionment of `fleet.cost` (use [`apportion_cost`]);
    /// the constructor asserts the sums match so a drifting bill fails
    /// loudly rather than shipping.
    pub fn build(
        platform: impl Into<String>,
        specs: &[TenantSpec],
        rollups: &[TenantRollup],
        tenant_costs: Vec<CostBreakdown>,
        fleet: FleetSummary,
        horizon_s: f64,
    ) -> ServeReport {
        assert_eq!(specs.len(), rollups.len());
        assert_eq!(specs.len(), tenant_costs.len());
        let compute_sum: Usd = tenant_costs.iter().map(|c| c.compute_cost).sum();
        let amortized_sum: Usd = tenant_costs.iter().map(|c| c.amortized_cost).sum();
        assert_eq!(
            compute_sum, fleet.cost.compute_cost,
            "tenant compute bills do not sum to the fleet's"
        );
        assert_eq!(
            amortized_sum, fleet.cost.amortized_cost,
            "tenant amortized bills do not sum to the fleet's"
        );

        let mut latency = Histogram::new();
        for r in rollups {
            latency.merge(&r.latency);
        }
        let norm: Vec<f64> = specs
            .iter()
            .zip(rollups)
            .filter(|(_, r)| r.submitted > 0)
            .map(|(s, r)| r.busy_seconds / s.weight as f64)
            .collect();
        let submitted: u64 = rollups.iter().map(|r| r.submitted).sum();
        let rejected: u64 = rollups.iter().map(|r| r.rejected).sum();
        let tenants = specs
            .iter()
            .zip(rollups)
            .zip(tenant_costs)
            .map(|((s, r), cost)| TenantReport {
                tenant: s.name.clone(),
                weight: s.weight,
                submitted: r.submitted,
                rejected: r.rejected,
                completed: r.completed,
                failed: r.failed,
                deadline_missed: r.deadline_missed,
                peak_queued: r.peak_queued,
                peak_running: r.peak_running,
                busy_seconds: r.busy_seconds,
                rejection_rate: r.rejection_rate(),
                latency_p50_s: r.latency.p50(),
                latency_p95_s: r.latency.p95(),
                latency_p99_s: r.latency.p99(),
                mean_wait_s: r.wait.mean(),
                cost,
            })
            .collect();
        ServeReport {
            platform: platform.into(),
            horizon_s,
            submitted,
            rejected,
            completed: rollups.iter().map(|r| r.completed).sum(),
            failed: rollups.iter().map(|r| r.failed).sum(),
            rejection_rate: if submitted == 0 {
                0.0
            } else {
                rejected as f64 / submitted as f64
            },
            latency_p50_s: latency.p50(),
            latency_p95_s: latency.p95(),
            latency_p99_s: latency.p99(),
            fairness_jain: jain_index(&norm),
            fleet,
            tenants,
        }
    }

    /// The serve-report JSON serializer; shares the versioned `"schema"`
    /// contract with `RunReport::to_json`.
    pub fn to_json(&self) -> Json {
        let cost_json = |c: &CostBreakdown| {
            Json::Obj(vec![
                ("compute".into(), Json::Float(c.compute_cost.as_f64())),
                ("amortized".into(), Json::Float(c.amortized_cost.as_f64())),
            ])
        };
        Json::Obj(vec![
            ("schema".into(), Json::from(REPORT_SCHEMA)),
            ("platform".into(), Json::Str(self.platform.clone())),
            ("horizon_seconds".into(), Json::Float(self.horizon_s)),
            ("submitted".into(), Json::from(self.submitted)),
            ("rejected".into(), Json::from(self.rejected)),
            ("completed".into(), Json::from(self.completed)),
            ("failed".into(), Json::from(self.failed)),
            ("rejection_rate".into(), Json::Float(self.rejection_rate)),
            ("latency_p50_s".into(), Json::Float(self.latency_p50_s)),
            ("latency_p95_s".into(), Json::Float(self.latency_p95_s)),
            ("latency_p99_s".into(), Json::Float(self.latency_p99_s)),
            ("fairness_jain".into(), Json::Float(self.fairness_jain)),
            (
                "fleet".into(),
                Json::Obj(vec![
                    (
                        "instances_launched".into(),
                        Json::from(self.fleet.instances_launched),
                    ),
                    ("billed_hours".into(), Json::from(self.fleet.billed_hours)),
                    ("used_seconds".into(), Json::Float(self.fleet.used_seconds)),
                    ("utilization".into(), Json::Float(self.fleet.utilization)),
                    ("cost".into(), cost_json(&self.fleet.cost)),
                ]),
            ),
            (
                "tenants".into(),
                Json::Arr(
                    self.tenants
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("tenant".into(), Json::Str(t.tenant.clone())),
                                ("weight".into(), Json::from(t.weight as u64)),
                                ("submitted".into(), Json::from(t.submitted)),
                                ("rejected".into(), Json::from(t.rejected)),
                                ("completed".into(), Json::from(t.completed)),
                                ("failed".into(), Json::from(t.failed)),
                                ("deadline_missed".into(), Json::from(t.deadline_missed)),
                                ("peak_queued".into(), Json::from(t.peak_queued)),
                                ("peak_running".into(), Json::from(t.peak_running)),
                                ("busy_seconds".into(), Json::Float(t.busy_seconds)),
                                ("rejection_rate".into(), Json::Float(t.rejection_rate)),
                                ("latency_p50_s".into(), Json::Float(t.latency_p50_s)),
                                ("latency_p95_s".into(), Json::Float(t.latency_p95_s)),
                                ("latency_p99_s".into(), Json::Float(t.latency_p99_s)),
                                ("mean_wait_s".into(), Json::Float(t.mean_wait_s)),
                                ("cost".into(), cost_json(&t.cost)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same contract as `RunReport`/`WorkflowReport`: the exact key set is
    /// versioned, so any shape change must bump `REPORT_SCHEMA`.
    #[test]
    fn serve_report_json_key_set_is_versioned() {
        let specs = vec![TenantSpec::new("blast", 1)];
        let rollups = vec![TenantRollup::default()];
        let zero = CostBreakdown {
            compute_cost: Usd::ZERO,
            amortized_cost: Usd::ZERO,
        };
        let fleet = FleetSummary {
            instances_launched: 0,
            billed_hours: 0,
            used_seconds: 0.0,
            utilization: 0.0,
            cost: zero,
        };
        let report = ServeReport::build("serve", &specs, &rollups, vec![zero], fleet, 0.0);
        let Json::Obj(fields) = report.to_json() else {
            panic!("serve report JSON must be an object");
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema",
                "platform",
                "horizon_seconds",
                "submitted",
                "rejected",
                "completed",
                "failed",
                "rejection_rate",
                "latency_p50_s",
                "latency_p95_s",
                "latency_p99_s",
                "fairness_jain",
                "fleet",
                "tenants",
            ]
        );
        assert_eq!(fields[0].1, Json::from(REPORT_SCHEMA));
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One tenant took everything: J = 1/n.
        assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        let j = jain_index(&[4.0, 1.0]);
        assert!(j > 0.5 && j < 1.0);
    }

    #[test]
    fn apportion_sums_exactly() {
        use ppc_core::rng::Pcg32;
        let mut rng = Pcg32::new(0xA11C);
        for _ in 0..200 {
            let n = 1 + rng.next_below(6) as usize;
            let shares: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 100.0)).collect();
            let total = Usd::micros(rng.next_below(2_000_000_000) as i64);
            let parts = apportion(total, &shares);
            assert_eq!(parts.len(), n);
            let sum: Usd = parts.iter().copied().sum();
            assert_eq!(sum, total, "shares {shares:?}");
            assert!(parts.iter().all(|p| p.as_micros() >= 0));
        }
    }

    #[test]
    fn apportion_zero_shares_split_equally() {
        let parts = apportion(Usd::cents(10), &[0.0, 0.0, 0.0, 0.0]);
        let sum: Usd = parts.iter().copied().sum();
        assert_eq!(sum, Usd::cents(10));
        assert_eq!(parts[0], Usd::micros(25_000));
    }

    #[test]
    fn apportion_is_proportional() {
        let parts = apportion(Usd::dollars(100), &[3.0, 1.0]);
        assert_eq!(parts[0], Usd::dollars(75));
        assert_eq!(parts[1], Usd::dollars(25));
    }

    #[test]
    #[should_panic(expected = "do not sum")]
    fn mismatched_tenant_bills_fail_loudly() {
        let specs = vec![TenantSpec::new("a", 1)];
        let rollups = vec![TenantRollup::default()];
        let fleet = FleetSummary {
            instances_launched: 1,
            billed_hours: 1,
            used_seconds: 3600.0,
            utilization: 0.5,
            cost: CostBreakdown {
                compute_cost: Usd::cents(68),
                amortized_cost: Usd::cents(34),
            },
        };
        // A tenant bill that does not match the fleet's must panic.
        let bad = vec![CostBreakdown {
            compute_cost: Usd::cents(67),
            amortized_cost: Usd::cents(34),
        }];
        ServeReport::build("serve-sim", &specs, &rollups, bad, fleet, 10.0);
    }

    #[test]
    fn report_json_has_schema_and_exact_bills() {
        let specs = vec![TenantSpec::new("blast", 2), TenantSpec::new("cap3", 1)];
        let mut rollups = vec![TenantRollup::default(), TenantRollup::default()];
        rollups[0].submitted = 10;
        rollups[0].completed = 10;
        rollups[0].busy_seconds = 200.0;
        rollups[1].submitted = 5;
        rollups[1].completed = 5;
        rollups[1].busy_seconds = 100.0;
        let fleet_cost = CostBreakdown {
            compute_cost: Usd::cents(204),
            amortized_cost: Usd::cents(137),
        };
        let costs = apportion_cost(&fleet_cost, &[200.0, 100.0]);
        let fleet = FleetSummary {
            instances_launched: 3,
            billed_hours: 3,
            used_seconds: 10_800.0,
            utilization: 300.0 / 10_800.0,
            cost: fleet_cost,
        };
        let report = ServeReport::build("serve-sim", &specs, &rollups, costs, fleet, 400.0);
        assert!((report.fairness_jain - 1.0).abs() < 1e-12);
        let j = Json::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(j.field("schema").unwrap().as_i64().unwrap(), 2);
        assert_eq!(j.field("submitted").unwrap().as_u64().unwrap(), 15);
        let tenants = j.field("tenants").unwrap().as_arr().unwrap();
        assert_eq!(tenants.len(), 2);
        let billed: f64 = tenants
            .iter()
            .map(|t| {
                t.field("cost")
                    .unwrap()
                    .field("compute")
                    .unwrap()
                    .as_f64()
                    .unwrap()
            })
            .sum();
        let fleet_billed = j
            .field("fleet")
            .unwrap()
            .field("cost")
            .unwrap()
            .field("compute")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((billed - fleet_billed).abs() < 1e-9);
    }
}
