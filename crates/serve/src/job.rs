//! Job identity, specification, and the queryable lifecycle state machine.

use ppc_exec::{Workflow, Workload};

/// Opaque job handle returned by submission. Ids are dense (the Nth
/// submission gets id N), which lets the service index records by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Scheduling hint *within* a tenant's queue. Fair share is between
/// tenants; priority only reorders a tenant's own backlog, so one tenant
/// cannot buy capacity from another by marking everything interactive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Queued behind the tenant's earlier batch jobs (FIFO).
    #[default]
    Batch,
    /// Jumps ahead of the tenant's queued batch jobs.
    Interactive,
}

/// What a job runs.
pub enum JobPayload {
    /// Simulation-only job: `tasks` independent tasks of `task_s`
    /// reference seconds each — the closed-loop load generator's currency.
    Modeled { tasks: u32, task_s: f64 },
    /// A real single-stage workload run through `Engine::run`.
    Workload(Workload),
    /// A real multi-stage DAG run through `Engine::run_workflow`.
    Workflow(Workflow),
}

impl JobPayload {
    /// Reference demand in cpu-seconds — the fair-share scheduler's
    /// deficit currency, so a tenant submitting few huge jobs and one
    /// submitting many small jobs get equal *work* shares, not equal
    /// job counts.
    pub fn demand_s(&self) -> f64 {
        match self {
            JobPayload::Modeled { tasks, task_s } => *tasks as f64 * task_s,
            JobPayload::Workload(wl) => wl
                .inputs
                .iter()
                .map(|(t, _)| t.profile.cpu_seconds_ref)
                .sum(),
            JobPayload::Workflow(wf) => wf
                .stages
                .iter()
                .flat_map(|s| s.specs.iter())
                .map(|t| t.profile.cpu_seconds_ref)
                .sum(),
        }
    }
}

/// A submission: who wants what run where, with scheduling hints.
pub struct JobSpec {
    pub tenant: String,
    /// Engine name resolved against the service's engine set
    /// (`"classic"`, `"mapreduce"`, `"dryad"`).
    pub engine: String,
    pub payload: JobPayload,
    pub priority: Priority,
    /// Completion-latency hint, seconds from submission. Not a guarantee:
    /// jobs finishing past the hint are counted in the tenant's
    /// `deadline_missed` rollup rather than failed.
    pub deadline_hint_s: Option<f64>,
}

impl JobSpec {
    pub fn new(
        tenant: impl Into<String>,
        engine: impl Into<String>,
        payload: JobPayload,
    ) -> JobSpec {
        JobSpec {
            tenant: tenant.into(),
            engine: engine.into(),
            payload,
            priority: Priority::Batch,
            deadline_hint_s: None,
        }
    }

    /// A modeled job of `tasks` × `task_s` reference seconds.
    pub fn modeled(
        tenant: impl Into<String>,
        engine: impl Into<String>,
        tasks: u32,
        task_s: f64,
    ) -> JobSpec {
        JobSpec::new(tenant, engine, JobPayload::Modeled { tasks, task_s })
    }

    pub fn with_priority(mut self, p: Priority) -> JobSpec {
        self.priority = p;
        self
    }

    pub fn with_deadline_hint(mut self, s: f64) -> JobSpec {
        self.deadline_hint_s = Some(s);
        self
    }
}

/// The job lifecycle: `Queued → Admitted → Running → Done/Failed`, with
/// `Rejected` the terminal shed path (bounded buffers full — the HTTP 429
/// of the front door).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Accepted into the tenant's bounded queue, awaiting fair share.
    Queued,
    /// Picked by the scheduler under the tenant's running quota.
    Admitted,
    /// Occupying fleet capacity.
    Running,
    /// Completed successfully.
    Done,
    /// The engine reported incomplete tasks.
    Failed,
    /// Shed at the front door; never held capacity.
    Rejected,
}

impl JobStatus {
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Rejected
        )
    }

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Admitted => "admitted",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Rejected => "rejected",
        }
    }

    /// Legal forward edges of the state machine.
    pub fn can_advance_to(self, next: JobStatus) -> bool {
        matches!(
            (self, next),
            (JobStatus::Queued, JobStatus::Admitted)
                | (JobStatus::Queued, JobStatus::Rejected)
                | (JobStatus::Admitted, JobStatus::Running)
                | (JobStatus::Running, JobStatus::Done)
                | (JobStatus::Running, JobStatus::Failed)
        )
    }
}

/// Compact post-hoc record of one job's lifecycle — the after-the-fact
/// answer to "what happened to job N?". Small enough that a million of
/// them fit comfortably in memory for the load-generator runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    pub id: JobId,
    /// Index into the service's tenant list.
    pub tenant: u32,
    /// Flattened client index of the submitting closed-loop client
    /// (`u32::MAX` for direct API submissions).
    pub client: u32,
    /// Reference demand in cpu-seconds.
    pub demand_s: f64,
    pub submitted_s: f64,
    pub admitted_s: Option<f64>,
    pub started_s: Option<f64>,
    pub finished_s: Option<f64>,
    pub status: JobStatus,
}

/// Client marker for jobs submitted straight through the API rather than
/// by a simulated closed-loop client.
pub const NO_CLIENT: u32 = u32::MAX;

impl JobRecord {
    /// A freshly queued job.
    pub fn queued(id: JobId, tenant: u32, client: u32, demand_s: f64, now_s: f64) -> JobRecord {
        JobRecord {
            id,
            tenant,
            client,
            demand_s,
            submitted_s: now_s,
            admitted_s: None,
            started_s: None,
            finished_s: None,
            status: JobStatus::Queued,
        }
    }

    /// A job shed at submission; `Rejected` is stamped as its finish.
    pub fn rejected(id: JobId, tenant: u32, client: u32, demand_s: f64, now_s: f64) -> JobRecord {
        JobRecord {
            id,
            tenant,
            client,
            demand_s,
            submitted_s: now_s,
            admitted_s: None,
            started_s: None,
            finished_s: Some(now_s),
            status: JobStatus::Rejected,
        }
    }

    /// Advance the state machine, stamping the transition time. Panics on
    /// an illegal edge — lifecycle bugs must not silently corrupt rollups.
    pub fn advance(&mut self, to: JobStatus, now_s: f64) {
        assert!(
            self.status.can_advance_to(to),
            "job {}: illegal transition {:?} -> {to:?}",
            self.id.0,
            self.status
        );
        match to {
            JobStatus::Admitted => self.admitted_s = Some(now_s),
            JobStatus::Running => self.started_s = Some(now_s),
            JobStatus::Done | JobStatus::Failed | JobStatus::Rejected => {
                self.finished_s = Some(now_s)
            }
            JobStatus::Queued => unreachable!(),
        }
        self.status = to;
    }

    /// The `(status, at_s)` history, reconstructed from the timestamps.
    pub fn history(&self) -> Vec<(JobStatus, f64)> {
        let mut h = vec![(JobStatus::Queued, self.submitted_s)];
        if self.status == JobStatus::Rejected {
            return vec![(JobStatus::Rejected, self.submitted_s)];
        }
        if let Some(t) = self.admitted_s {
            h.push((JobStatus::Admitted, t));
        }
        if let Some(t) = self.started_s {
            h.push((JobStatus::Running, t));
        }
        if let Some(t) = self.finished_s {
            h.push((self.status, t));
        }
        h
    }

    /// Submission-to-completion latency; `None` until terminal (and for
    /// rejected jobs, which never ran).
    pub fn latency_s(&self) -> Option<f64> {
        match self.status {
            JobStatus::Done | JobStatus::Failed => Some(self.finished_s? - self.submitted_s),
            _ => None,
        }
    }

    /// Submission-to-dispatch queueing delay.
    pub fn wait_s(&self) -> Option<f64> {
        Some(self.started_s? - self.submitted_s)
    }

    /// FNV-1a digest over a slice of records — the currency of the
    /// determinism tests (identical replays ⇒ identical digests).
    pub fn digest(records: &[JobRecord]) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for r in records {
            mix(r.id.0);
            mix(r.tenant as u64);
            mix(r.client as u64);
            mix(r.demand_s.to_bits());
            mix(r.submitted_s.to_bits());
            mix(r.admitted_s.unwrap_or(-1.0).to_bits());
            mix(r.started_s.unwrap_or(-1.0).to_bits());
            mix(r.finished_s.unwrap_or(-1.0).to_bits());
            mix(r.status.name().len() as u64 ^ (r.status as u64) << 8);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_edges() {
        assert!(JobStatus::Queued.can_advance_to(JobStatus::Admitted));
        assert!(JobStatus::Admitted.can_advance_to(JobStatus::Running));
        assert!(JobStatus::Running.can_advance_to(JobStatus::Done));
        assert!(JobStatus::Running.can_advance_to(JobStatus::Failed));
        assert!(!JobStatus::Queued.can_advance_to(JobStatus::Running));
        assert!(!JobStatus::Done.can_advance_to(JobStatus::Running));
        assert!(!JobStatus::Rejected.can_advance_to(JobStatus::Queued));
        for s in [JobStatus::Done, JobStatus::Failed, JobStatus::Rejected] {
            assert!(s.is_terminal());
        }
    }

    #[test]
    fn record_history_reconstructs() {
        let mut r = JobRecord::queued(JobId(7), 1, 0, 30.0, 10.0);
        r.advance(JobStatus::Admitted, 12.0);
        r.advance(JobStatus::Running, 12.0);
        r.advance(JobStatus::Done, 42.0);
        assert_eq!(
            r.history(),
            vec![
                (JobStatus::Queued, 10.0),
                (JobStatus::Admitted, 12.0),
                (JobStatus::Running, 12.0),
                (JobStatus::Done, 42.0),
            ]
        );
        assert_eq!(r.latency_s(), Some(32.0));
        assert_eq!(r.wait_s(), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "illegal transition")]
    fn illegal_transition_panics() {
        let mut r = JobRecord::queued(JobId(0), 0, 0, 1.0, 0.0);
        r.advance(JobStatus::Done, 1.0);
    }

    #[test]
    fn rejected_record_is_terminal_at_submit() {
        let r = JobRecord::rejected(JobId(3), 0, 2, 5.0, 9.0);
        assert_eq!(r.status, JobStatus::Rejected);
        assert_eq!(r.history(), vec![(JobStatus::Rejected, 9.0)]);
        assert_eq!(r.latency_s(), None);
    }

    #[test]
    fn digest_detects_divergence() {
        let a = vec![JobRecord::queued(JobId(0), 0, 0, 1.0, 0.0)];
        let mut b = a.clone();
        assert_eq!(JobRecord::digest(&a), JobRecord::digest(&b));
        b[0].advance(JobStatus::Admitted, 0.5);
        assert_ne!(JobRecord::digest(&a), JobRecord::digest(&b));
    }
}
