//! Front-door admission control: bounded buffers with per-tenant and
//! service-wide limits. An over-limit submission is shed immediately with
//! a [`RejectReason`] (the HTTP-429 path) instead of queued without
//! bound — backpressure is applied at the door, never by dropping a job
//! that was already admitted.

use crate::tenant::TenantQuota;

/// Why a submission was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's own bounded queue is full — it exceeded its share.
    TenantQueueFull,
    /// The service-wide queued-job bound is hit (global backpressure);
    /// even under-quota tenants are shed until the backlog drains.
    ServiceSaturated,
}

impl RejectReason {
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::TenantQueueFull => "tenant_queue_full",
            RejectReason::ServiceSaturated => "service_saturated",
        }
    }
}

/// The admission policy: pure in its inputs, so the native service and the
/// DES load generator shed identically on identical state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Cap on total queued jobs across all tenants.
    pub global_max_queued: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> AdmissionPolicy {
        AdmissionPolicy {
            global_max_queued: 10_000,
        }
    }
}

impl AdmissionPolicy {
    /// Decide one submission given the tenant's current queue depth, its
    /// quota, and the service-wide queued total. Per-tenant bounds are
    /// checked first so a hog tenant is named as the reason even when the
    /// service is also saturated.
    pub fn decide(
        &self,
        tenant_queued: usize,
        quota: &TenantQuota,
        total_queued: usize,
    ) -> Result<(), RejectReason> {
        if tenant_queued >= quota.max_queued {
            Err(RejectReason::TenantQueueFull)
        } else if total_queued >= self.global_max_queued {
            Err(RejectReason::ServiceSaturated)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(max_queued: usize) -> TenantQuota {
        TenantQuota {
            max_queued,
            max_running: 4,
        }
    }

    #[test]
    fn admits_under_both_bounds() {
        let p = AdmissionPolicy {
            global_max_queued: 100,
        };
        assert_eq!(p.decide(3, &quota(10), 50), Ok(()));
    }

    #[test]
    fn tenant_bound_sheds_first() {
        let p = AdmissionPolicy {
            global_max_queued: 10,
        };
        // Both bounds violated: the tenant's own quota is the reason.
        assert_eq!(
            p.decide(10, &quota(10), 10),
            Err(RejectReason::TenantQueueFull)
        );
        assert_eq!(
            p.decide(0, &quota(10), 10),
            Err(RejectReason::ServiceSaturated)
        );
    }

    #[test]
    fn bounds_are_inclusive_caps() {
        // `max_queued` jobs already waiting ⇒ the next one is shed, so the
        // depth can never exceed the quota.
        let p = AdmissionPolicy {
            global_max_queued: 100,
        };
        assert!(p.decide(9, &quota(10), 0).is_ok());
        assert!(p.decide(10, &quota(10), 0).is_err());
    }
}
