//! # ppc-core — shared vocabulary for the `ppc` workspace
//!
//! This crate holds the types every other crate speaks:
//!
//! * [`money`] — exact fixed-point USD arithmetic for billing.
//! * [`task`] — task identity and the [`task::ResourceProfile`] service-time
//!   model used by both the native runtimes and the discrete-event simulator.
//! * [`metrics`] — the paper's Equation 1 (parallel efficiency) and
//!   Equation 2 (average time per task per core), plus run summaries.
//! * [`pricing`] — cloud service price books (per-request, per-GB rates).
//! * [`report`] — aligned text tables and data series used by the benchmark
//!   harness to print the paper's tables and figures.
//! * [`retry`] — the shared recovery layer: [`retry::RetryPolicy`]
//!   (exponential backoff + jitter + retry budget), a circuit breaker,
//!   and deadline propagation, adopted by storage, queue, and runtimes.
//! * [`rng`] — tiny deterministic PRNGs (SplitMix64 / PCG32) so simulation
//!   results are reproducible without threading `rand` through everything.
//! * [`json`] — a small JSON value/parser/writer for the wire formats
//!   (queue task messages, distributed GTM models).
//! * [`sync`] — poison-free `Mutex`/`RwLock` wrappers for the services.
//! * [`par`] — index-parallel map over scoped threads for the kernels.
//! * [`error`] — the workspace error type.
//!
//! The crate is dependency-light by design: everything downstream (storage,
//! queue, compute, the three frameworks, the applications) builds on it.

pub mod error;
pub mod exec;
pub mod json;
pub mod metrics;
pub mod money;
pub mod par;
pub mod pricing;
pub mod report;
pub mod retry;
pub mod rng;
pub mod sync;
pub mod task;
pub mod trace;

pub use error::{PpcError, Result};
pub use exec::{Executor, FnExecutor};
pub use money::Usd;
pub use retry::{BreakerState, CircuitBreaker, Deadline, RetryPolicy};
pub use task::{ResourceProfile, TaskId, TaskSpec};
