//! Execution timelines: per-worker busy intervals and their rendering.
//!
//! A [`Timeline`] records which worker ran which task over which interval.
//! The simulated runtimes fill one in on request, giving the Gantt-style
//! view operators use to diagnose load imbalance (e.g. DryadLINQ's static
//! partitions leaving whole nodes idle while one node grinds on).

use serde::{Deserialize, Serialize};

/// One task execution on one worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskInterval {
    /// Flat worker index within the fleet.
    pub worker: usize,
    /// Task id.
    pub task: u64,
    pub start_s: f64,
    pub end_s: f64,
}

/// A recorded execution timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    intervals: Vec<TaskInterval>,
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::default()
    }

    pub fn push(&mut self, worker: usize, task: u64, start_s: f64, end_s: f64) {
        debug_assert!(end_s >= start_s, "interval must not be negative");
        self.intervals.push(TaskInterval {
            worker,
            task,
            start_s,
            end_s,
        });
    }

    pub fn intervals(&self) -> &[TaskInterval] {
        &self.intervals
    }

    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of distinct workers that ran anything.
    pub fn n_workers(&self) -> usize {
        self.intervals
            .iter()
            .map(|i| i.worker)
            .max()
            .map(|w| w + 1)
            .unwrap_or(0)
    }

    /// End of the last interval.
    pub fn horizon_s(&self) -> f64 {
        self.intervals.iter().map(|i| i.end_s).fold(0.0, f64::max)
    }

    /// Total busy seconds of one worker.
    pub fn worker_busy_s(&self, worker: usize) -> f64 {
        self.intervals
            .iter()
            .filter(|i| i.worker == worker)
            .map(|i| i.end_s - i.start_s)
            .sum()
    }

    /// Mean utilization across `n_workers` over the full horizon.
    pub fn utilization(&self, n_workers: usize) -> f64 {
        let horizon = self.horizon_s();
        if horizon <= 0.0 || n_workers == 0 {
            return 0.0;
        }
        let busy: f64 = self.intervals.iter().map(|i| i.end_s - i.start_s).sum();
        busy / (horizon * n_workers as f64)
    }

    /// Render as an ASCII Gantt chart: one row per worker, `#` where busy.
    /// `width` columns span the horizon.
    pub fn render_ascii(&self, width: usize) -> String {
        let horizon = self.horizon_s();
        let n = self.n_workers();
        if horizon <= 0.0 || n == 0 || width == 0 {
            return String::from("(empty timeline)\n");
        }
        let mut rows = vec![vec![b' '; width]; n];
        for iv in &self.intervals {
            let lo = ((iv.start_s / horizon) * width as f64).floor() as usize;
            let hi = (((iv.end_s / horizon) * width as f64).ceil() as usize).min(width);
            for cell in &mut rows[iv.worker][lo.min(width.saturating_sub(1))..hi] {
                *cell = b'#';
            }
        }
        let mut out = String::with_capacity(n * (width + 12));
        for (w, row) in rows.iter().enumerate() {
            out.push_str(&format!("w{w:03} |{}|\n", String::from_utf8_lossy(row)));
        }
        out.push_str(&format!(
            "      0s{:>w$}\n",
            format!("{horizon:.0}s"),
            w = width - 2
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.push(0, 1, 0.0, 10.0);
        t.push(0, 2, 10.0, 20.0);
        t.push(1, 3, 0.0, 5.0);
        t
    }

    #[test]
    fn accounting() {
        let t = sample();
        assert_eq!(t.n_workers(), 2);
        assert_eq!(t.horizon_s(), 20.0);
        assert_eq!(t.worker_busy_s(0), 20.0);
        assert_eq!(t.worker_busy_s(1), 5.0);
        // (20 + 5) / (20 * 2) = 0.625
        assert!((t.utilization(2) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn render_shows_imbalance() {
        let t = sample();
        let art = t.render_ascii(20);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].starts_with("w000"));
        // Worker 0 busy across the whole span; worker 1 only the first quarter.
        let w0 = lines[0].matches('#').count();
        let w1 = lines[1].matches('#').count();
        assert_eq!(w0, 20);
        assert!((4..=6).contains(&w1), "w1 {w1}");
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.utilization(4), 0.0);
        assert_eq!(t.render_ascii(10), "(empty timeline)\n");
    }
}
