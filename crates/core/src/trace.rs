//! Execution timelines: per-worker busy intervals and their rendering.
//!
//! A [`Timeline`] records which worker ran which task over which interval.
//! The simulated runtimes fill one in on request, giving the Gantt-style
//! view operators use to diagnose load imbalance (e.g. DryadLINQ's static
//! partitions leaving whole nodes idle while one node grinds on).

/// One task execution on one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskInterval {
    /// Flat worker index within the fleet.
    pub worker: usize,
    /// Task id.
    pub task: u64,
    pub start_s: f64,
    pub end_s: f64,
}

/// A recorded execution timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    intervals: Vec<TaskInterval>,
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::default()
    }

    pub fn push(&mut self, worker: usize, task: u64, start_s: f64, end_s: f64) {
        debug_assert!(end_s >= start_s, "interval must not be negative");
        self.intervals.push(TaskInterval {
            worker,
            task,
            start_s,
            end_s,
        });
    }

    pub fn intervals(&self) -> &[TaskInterval] {
        &self.intervals
    }

    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of distinct workers that ran anything.
    pub fn n_workers(&self) -> usize {
        self.intervals
            .iter()
            .map(|i| i.worker)
            .max()
            .map(|w| w + 1)
            .unwrap_or(0)
    }

    /// End of the last interval.
    pub fn horizon_s(&self) -> f64 {
        self.intervals.iter().map(|i| i.end_s).fold(0.0, f64::max)
    }

    /// Total busy seconds of one worker.
    pub fn worker_busy_s(&self, worker: usize) -> f64 {
        self.intervals
            .iter()
            .filter(|i| i.worker == worker)
            .map(|i| i.end_s - i.start_s)
            .sum()
    }

    /// Mean utilization across `n_workers` over the full horizon.
    pub fn utilization(&self, n_workers: usize) -> f64 {
        let horizon = self.horizon_s();
        if horizon <= 0.0 || n_workers == 0 {
            return 0.0;
        }
        let busy: f64 = self.intervals.iter().map(|i| i.end_s - i.start_s).sum();
        busy / (horizon * n_workers as f64)
    }

    /// Render as an ASCII Gantt chart: one row per worker, `#` where busy.
    /// `width` columns span the horizon.
    pub fn render_ascii(&self, width: usize) -> String {
        let horizon = self.horizon_s();
        let n = self.n_workers();
        if horizon <= 0.0 || n == 0 || width == 0 {
            return String::from("(empty timeline)\n");
        }
        let mut rows = vec![vec![b' '; width]; n];
        for iv in &self.intervals {
            let lo = ((iv.start_s / horizon) * width as f64).floor() as usize;
            let hi = (((iv.end_s / horizon) * width as f64).ceil() as usize).min(width);
            for cell in &mut rows[iv.worker][lo.min(width.saturating_sub(1))..hi] {
                *cell = b'#';
            }
        }
        let mut out = String::with_capacity(n * (width + 12));
        for (w, row) in rows.iter().enumerate() {
            out.push_str(&format!("w{w:03} |{}|\n", String::from_utf8_lossy(row)));
        }
        out.push_str(&format!(
            "      0s{:>w$}\n",
            format!("{horizon:.0}s"),
            w = width - 2
        ));
        out
    }
}

/// A step function of fleet size over time — the companion trace to a
/// [`Timeline`] for *elastic* runs, where the number of billed instances
/// changes as the autoscaler launches and retires workers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTimeline {
    /// `(at_s, fleet_size_after)`, in non-decreasing time order.
    steps: Vec<(f64, u32)>,
}

impl FleetTimeline {
    pub fn new() -> FleetTimeline {
        FleetTimeline::default()
    }

    /// Record the fleet reaching `size` at `at_s`. Consecutive records at
    /// the same instant collapse to the last one.
    pub fn record(&mut self, at_s: f64, size: u32) {
        if let Some(last) = self.steps.last_mut() {
            debug_assert!(at_s >= last.0, "fleet records must be time-ordered");
            if last.0 == at_s {
                last.1 = size;
                return;
            }
        }
        self.steps.push((at_s, size));
    }

    pub fn steps(&self) -> &[(f64, u32)] {
        &self.steps
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Fleet size at a given time (0 before the first record).
    pub fn size_at(&self, at_s: f64) -> u32 {
        self.steps
            .iter()
            .take_while(|(t, _)| *t <= at_s)
            .last()
            .map(|&(_, s)| s)
            .unwrap_or(0)
    }

    /// Largest fleet ever held.
    pub fn peak(&self) -> u32 {
        self.steps.iter().map(|&(_, s)| s).max().unwrap_or(0)
    }

    /// Time-weighted mean fleet size over `[0, horizon_s]`.
    pub fn mean_size(&self, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 {
            return 0.0;
        }
        let mut area = 0.0;
        for (i, &(t, s)) in self.steps.iter().enumerate() {
            let next = self
                .steps
                .get(i + 1)
                .map(|&(t2, _)| t2)
                .unwrap_or(horizon_s)
                .min(horizon_s);
            if next > t {
                area += (next - t) * s as f64;
            }
        }
        area / horizon_s
    }

    /// The distinct fleet sizes visited, in order (adjacent duplicates
    /// collapsed) — the signature cross-engine agreement tests compare.
    pub fn size_sequence(&self) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &(_, s) in &self.steps {
            if out.last() != Some(&s) {
                out.push(s);
            }
        }
        out
    }

    /// Render as an ASCII step chart: one row per fleet size (top = peak),
    /// `#` while the fleet held at least that many instances. `width`
    /// columns span `[0, horizon_s]`. Prints next to a Gantt chart of the
    /// same width, this shows capacity tracking load.
    pub fn render_ascii(&self, width: usize, horizon_s: f64) -> String {
        let peak = self.peak();
        if peak == 0 || width == 0 || horizon_s <= 0.0 {
            return String::from("(empty fleet timeline)\n");
        }
        let mut out = String::new();
        for level in (1..=peak).rev() {
            let mut row = vec![b' '; width];
            for (i, &(t, s)) in self.steps.iter().enumerate() {
                if s < level {
                    continue;
                }
                let next = self
                    .steps
                    .get(i + 1)
                    .map(|&(t2, _)| t2)
                    .unwrap_or(horizon_s)
                    .min(horizon_s);
                let lo = ((t / horizon_s) * width as f64).floor() as usize;
                let hi = (((next / horizon_s) * width as f64).ceil() as usize).min(width);
                for cell in &mut row[lo.min(width.saturating_sub(1))..hi] {
                    *cell = b'#';
                }
            }
            out.push_str(&format!(
                "n={level:03} |{}|\n",
                String::from_utf8_lossy(&row)
            ));
        }
        out.push_str(&format!(
            "       0s{:>w$}\n",
            format!("{horizon_s:.0}s"),
            w = width - 1
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new();
        t.push(0, 1, 0.0, 10.0);
        t.push(0, 2, 10.0, 20.0);
        t.push(1, 3, 0.0, 5.0);
        t
    }

    #[test]
    fn accounting() {
        let t = sample();
        assert_eq!(t.n_workers(), 2);
        assert_eq!(t.horizon_s(), 20.0);
        assert_eq!(t.worker_busy_s(0), 20.0);
        assert_eq!(t.worker_busy_s(1), 5.0);
        // (20 + 5) / (20 * 2) = 0.625
        assert!((t.utilization(2) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn render_shows_imbalance() {
        let t = sample();
        let art = t.render_ascii(20);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].starts_with("w000"));
        // Worker 0 busy across the whole span; worker 1 only the first quarter.
        let w0 = lines[0].matches('#').count();
        let w1 = lines[1].matches('#').count();
        assert_eq!(w0, 20);
        assert!((4..=6).contains(&w1), "w1 {w1}");
    }

    #[test]
    fn empty_timeline() {
        let t = Timeline::new();
        assert!(t.is_empty());
        assert_eq!(t.utilization(4), 0.0);
        assert_eq!(t.render_ascii(10), "(empty timeline)\n");
    }

    fn fleet_sample() -> FleetTimeline {
        let mut f = FleetTimeline::new();
        f.record(0.0, 2);
        f.record(10.0, 4);
        f.record(30.0, 1);
        f
    }

    #[test]
    fn fleet_step_function() {
        let f = fleet_sample();
        assert_eq!(f.size_at(0.0), 2);
        assert_eq!(f.size_at(9.9), 2);
        assert_eq!(f.size_at(10.0), 4);
        assert_eq!(f.size_at(100.0), 1);
        assert_eq!(f.peak(), 4);
        // (10*2 + 20*4 + 10*1) / 40 = 110/40
        assert!((f.mean_size(40.0) - 2.75).abs() < 1e-12);
        assert_eq!(f.size_sequence(), vec![2, 4, 1]);
    }

    #[test]
    fn fleet_same_instant_collapses() {
        let mut f = FleetTimeline::new();
        f.record(5.0, 3);
        f.record(5.0, 4);
        assert_eq!(f.steps(), &[(5.0, 4)]);
    }

    #[test]
    fn fleet_render_rows_per_level() {
        let f = fleet_sample();
        let art = f.render_ascii(40, 40.0);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 5, "4 levels + axis");
        assert!(lines[0].starts_with("n=004"));
        // Level 1 is held for the whole horizon.
        let bottom = lines[3];
        assert_eq!(bottom.matches('#').count(), 40);
        // Level 4 only during [10, 30).
        let top = lines[0].matches('#').count();
        assert!((18..=22).contains(&top), "top row {top}");
        // Empty cases degrade gracefully.
        assert_eq!(
            FleetTimeline::new().render_ascii(10, 10.0),
            "(empty fleet timeline)\n"
        );
    }
}
