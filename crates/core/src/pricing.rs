//! Cloud service price books.
//!
//! Encodes the 2010-era prices the paper's Table 4 uses so that the cost
//! harness reproduces its line items exactly:
//!
//! | line item                  | AWS          | Azure              |
//! |----------------------------|--------------|--------------------|
//! | queue requests (~10,000)   | $0.01        | $0.01              |
//! | storage (1 GB, 1 month)    | $0.14        | $0.15              |
//! | transfer in (1 GB)         | $0.10        | $0.10              |
//! | transfer out (1 GB)        | (not billed) | $0.15              |
//!
//! Instance-hour prices live with the instance catalog in `ppc-compute`.

use crate::money::Usd;
pub const GIB: u64 = 1 << 30;

/// Price book for the infrastructure services of one cloud provider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceBook {
    /// Human-readable provider name ("aws", "azure").
    pub provider: &'static str,
    /// Cost per 10,000 queue API requests (send, receive, delete each count).
    pub queue_per_10k_requests: Usd,
    /// Object storage, per GiB-month.
    pub storage_per_gib_month: Usd,
    /// Per 10,000 storage API requests.
    pub storage_per_10k_requests: Usd,
    /// Network transfer into the cloud, per GiB.
    pub transfer_in_per_gib: Usd,
    /// Network transfer out of the cloud, per GiB.
    pub transfer_out_per_gib: Usd,
}

/// Amazon Web Services price book (mid-2010 list prices used by the paper).
pub const AWS_2010: PriceBook = PriceBook {
    provider: "aws",
    queue_per_10k_requests: Usd::cents(1),
    storage_per_gib_month: Usd::cents(14),
    storage_per_10k_requests: Usd::cents(1),
    transfer_in_per_gib: Usd::cents(10),
    transfer_out_per_gib: Usd::cents(15),
};

/// Windows Azure price book (mid-2010 list prices used by the paper).
pub const AZURE_2010: PriceBook = PriceBook {
    provider: "azure",
    queue_per_10k_requests: Usd::cents(1),
    storage_per_gib_month: Usd::cents(15),
    storage_per_10k_requests: Usd::cents(1),
    transfer_in_per_gib: Usd::cents(10),
    transfer_out_per_gib: Usd::cents(15),
};

impl PriceBook {
    /// Cost for `n` queue API requests, pro-rated (no 10k rounding: the
    /// services bill per request at 1/10000th of the bundle price).
    pub fn queue_requests(&self, n: u64) -> Usd {
        self.queue_per_10k_requests.scale(n as f64 / 10_000.0)
    }

    /// Cost for `n` storage API requests.
    pub fn storage_requests(&self, n: u64) -> Usd {
        self.storage_per_10k_requests.scale(n as f64 / 10_000.0)
    }

    /// Cost to keep `bytes` stored for `months`.
    pub fn storage(&self, bytes: u64, months: f64) -> Usd {
        self.storage_per_gib_month
            .scale(bytes as f64 / GIB as f64 * months)
    }

    /// Cost to move `bytes` into the cloud.
    pub fn transfer_in(&self, bytes: u64) -> Usd {
        self.transfer_in_per_gib.scale(bytes as f64 / GIB as f64)
    }

    /// Cost to move `bytes` out of the cloud.
    pub fn transfer_out(&self, bytes: u64) -> Usd {
        self.transfer_out_per_gib.scale(bytes as f64 / GIB as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_line_items_aws() {
        // ~10,000 queue messages -> $0.01
        assert_eq!(AWS_2010.queue_requests(10_000), Usd::cents(1));
        // 1 GB for a month -> $0.14
        assert_eq!(AWS_2010.storage(GIB, 1.0), Usd::cents(14));
        // 1 GB in -> $0.10
        assert_eq!(AWS_2010.transfer_in(GIB), Usd::cents(10));
    }

    #[test]
    fn table4_line_items_azure() {
        assert_eq!(AZURE_2010.queue_requests(10_000), Usd::cents(1));
        assert_eq!(AZURE_2010.storage(GIB, 1.0), Usd::cents(15));
        // in + out of 1 GB each -> $0.10 + $0.15
        let total = AZURE_2010.transfer_in(GIB) + AZURE_2010.transfer_out(GIB);
        assert_eq!(total, Usd::cents(25));
    }

    #[test]
    fn pro_rated_requests() {
        // A single request costs a micro-dollar: 0.01$/10k.
        assert_eq!(AWS_2010.queue_requests(1), Usd::micros(1));
        assert_eq!(AWS_2010.queue_requests(0), Usd::ZERO);
    }

    #[test]
    fn fractional_storage() {
        // Half a GiB for two months equals one GiB-month.
        assert_eq!(AWS_2010.storage(GIB / 2, 2.0), Usd::cents(14));
    }
}
