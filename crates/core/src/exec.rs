//! The executable-program abstraction all frameworks schedule.
//!
//! The paper's frameworks all wrap *existing sequential executables*:
//! "user can configure the workers to use any executable program in the
//! virtual machine to process the tasks, provided that it takes input in the
//! form of a file" (§2.1.3). [`Executor`] is that contract — bytes of one
//! input file in, bytes of one output file out — implemented by the Cap3
//! assembler, the BLAST searcher, the GTM interpolator, and test kernels.

use crate::task::TaskSpec;
use crate::Result;
use std::sync::Arc;

/// A pure, idempotent program applied to one input file.
///
/// Idempotence and determinism are *requirements*, not niceties: queue
/// redelivery and speculative execution mean the same task may run more than
/// once, possibly concurrently, and any copy's output must be acceptable
/// (paper §2.1.3: "Rare occurrences of multiple instances processing the
/// same task ... will not affect the result due to the idempotent nature of
/// the independent tasks").
pub trait Executor: Send + Sync {
    /// Process one task's input payload into its output payload.
    fn run(&self, spec: &TaskSpec, input: &[u8]) -> Result<Vec<u8>>;

    /// Human-readable name for logs and reports.
    fn name(&self) -> &str {
        "executor"
    }
}

/// Wrap a plain function (or closure) as an [`Executor`].
pub struct FnExecutor<F> {
    name: String,
    f: F,
}

impl<F> FnExecutor<F>
where
    F: Fn(&TaskSpec, &[u8]) -> Result<Vec<u8>> + Send + Sync,
{
    pub fn new(name: impl Into<String>, f: F) -> Arc<Self> {
        Arc::new(FnExecutor {
            name: name.into(),
            f,
        })
    }
}

impl<F> Executor for FnExecutor<F>
where
    F: Fn(&TaskSpec, &[u8]) -> Result<Vec<u8>> + Send + Sync,
{
    fn run(&self, spec: &TaskSpec, input: &[u8]) -> Result<Vec<u8>> {
        (self.f)(spec, input)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ResourceProfile;

    #[test]
    fn fn_executor_runs_closure() {
        let exec = FnExecutor::new(
            "upper",
            |_spec, input: &[u8]| Ok(input.to_ascii_uppercase()),
        );
        let spec = TaskSpec::new(1, "t", "in", ResourceProfile::cpu_bound(0.0));
        assert_eq!(exec.run(&spec, b"acgt").unwrap(), b"ACGT");
        assert_eq!(exec.name(), "upper");
    }

    #[test]
    fn executor_errors_propagate() {
        let exec = FnExecutor::new("boom", |_s, _i: &[u8]| {
            Err(crate::PpcError::TaskFailed("bad input".into()))
        });
        let spec = TaskSpec::new(1, "t", "in", ResourceProfile::cpu_bound(0.0));
        assert_eq!(exec.run(&spec, b"").unwrap_err().code(), "TaskFailed");
    }

    #[test]
    fn usable_as_trait_object_across_threads() {
        let exec: Arc<dyn Executor> = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let spec = TaskSpec::new(1, "t", "in", ResourceProfile::cpu_bound(0.0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let exec = exec.clone();
                let spec = spec.clone();
                s.spawn(move || {
                    assert_eq!(exec.run(&spec, b"x").unwrap(), b"x");
                });
            }
        });
    }
}
