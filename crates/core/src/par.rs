//! Minimal data parallelism over indices: the one `rayon` idiom the
//! kernels actually use (`(0..n).into_par_iter().map(f).collect()`),
//! implemented with scoped threads so the workspace stays dependency-free.
//!
//! Work is split into contiguous chunks, one per available core; each chunk
//! is computed on its own thread and results land in input order, so the
//! output is identical to the sequential `(0..n).map(f).collect()`.

/// Number of worker threads to fan out over.
pub fn parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `0..n` in parallel, preserving index order in the output.
///
/// `f` runs concurrently from multiple threads, so it must be `Sync` (all
/// captures read-only). Falls back to a plain sequential map for small `n`
/// where thread spawn overhead would dominate.
pub fn par_map<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = parallelism().min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots = &mut out[..];
    let f = &f;
    std::thread::scope(|scope| {
        // Hand each thread a disjoint slice of the output.
        let mut rest = slots;
        let mut start = 0;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = start;
            start += take;
            scope.spawn(move || {
                for (offset, slot) in head.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            });
        }
    });
    out.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Map `f` over a slice in parallel, preserving order.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_order() {
        let got = par_map(1000, |i| i * i);
        let expect: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 1), vec![1]);
    }

    #[test]
    fn slice_variant() {
        let items = vec!["a", "bb", "ccc"];
        assert_eq!(par_map_slice(&items, |s| s.len()), vec![1, 2, 3]);
    }
}
