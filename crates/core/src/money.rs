//! Exact USD arithmetic for billing.
//!
//! Cloud bills in the paper mix hourly instance charges (e.g. $0.68/h for a
//! High-CPU-Extra-Large instance), per-10k-request queue charges, and
//! per-GB-month storage charges. Floating point drifts when summing thousands
//! of such line items, so [`Usd`] stores **micro-dollars** in an `i64`:
//! exact addition, exact comparison, and enough range for ~9 trillion dollars.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A USD amount stored as an integral number of micro-dollars (1e-6 $).
///
/// ```
/// use ppc_core::money::Usd;
/// let hourly = Usd::cents(68);                 // one HCXL hour
/// let fleet: Usd = std::iter::repeat(hourly).take(16).sum();
/// assert_eq!(fleet, Usd::cents(1088));
/// assert_eq!(fleet.to_string(), "10.88$");     // exactly, no float drift
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Usd(i64);

impl Usd {
    pub const ZERO: Usd = Usd(0);

    /// One micro-dollar, the smallest representable amount.
    pub const EPSILON: Usd = Usd(1);

    /// Build from whole dollars.
    pub const fn dollars(d: i64) -> Usd {
        Usd(d * 1_000_000)
    }

    /// Build from cents. `Usd::cents(68)` is $0.68.
    pub const fn cents(c: i64) -> Usd {
        Usd(c * 10_000)
    }

    /// Build from micro-dollars directly.
    pub const fn micros(u: i64) -> Usd {
        Usd(u)
    }

    /// Build from an `f64` dollar amount, rounding to the nearest
    /// micro-dollar. Intended for constants like `Usd::from_f64(0.34)`,
    /// not for accumulation.
    pub fn from_f64(d: f64) -> Usd {
        Usd((d * 1e6).round() as i64)
    }

    /// The amount in (possibly fractional) dollars.
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The raw micro-dollar count.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Multiply by a non-negative scalar (e.g. hours, GB), rounding to the
    /// nearest micro-dollar.
    pub fn scale(self, factor: f64) -> Usd {
        Usd((self.0 as f64 * factor).round() as i64)
    }

    /// `true` when the amount is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction clamped at zero; bills never go negative.
    pub fn saturating_sub_zero(self, other: Usd) -> Usd {
        Usd((self.0 - other.0).max(0))
    }

    /// Parse a dollar amount: `"10.88"`, `"10.88$"`, `"$10.88"`, `"-0.34"`.
    /// Accepts up to 6 decimal places (micro-dollar precision).
    pub fn parse(text: &str) -> crate::Result<Usd> {
        let t = text
            .trim()
            .trim_start_matches('$')
            .trim_end_matches('$')
            .trim();
        let (sign, t) = match t.strip_prefix('-') {
            Some(rest) => (-1i64, rest),
            None => (1i64, t),
        };
        let (whole, frac) = match t.split_once('.') {
            Some((w, f)) => (w, f),
            None => (t, ""),
        };
        if whole.is_empty() && frac.is_empty() {
            return Err(crate::PpcError::InvalidArgument(format!(
                "'{text}' is not a dollar amount"
            )));
        }
        if frac.len() > 6 {
            return Err(crate::PpcError::InvalidArgument(format!(
                "'{text}' has sub-micro-dollar precision"
            )));
        }
        let whole: i64 = if whole.is_empty() {
            0
        } else {
            whole.parse().map_err(|_| {
                crate::PpcError::InvalidArgument(format!("'{text}' is not a dollar amount"))
            })?
        };
        let frac_micros: i64 = if frac.is_empty() {
            0
        } else {
            let padded = format!("{frac:0<6}");
            padded.parse().map_err(|_| {
                crate::PpcError::InvalidArgument(format!("'{text}' is not a dollar amount"))
            })?
        };
        Ok(Usd(sign * (whole * 1_000_000 + frac_micros)))
    }
}

impl Add for Usd {
    type Output = Usd;
    fn add(self, rhs: Usd) -> Usd {
        Usd(self.0 + rhs.0)
    }
}

impl AddAssign for Usd {
    fn add_assign(&mut self, rhs: Usd) {
        self.0 += rhs.0;
    }
}

impl Sub for Usd {
    type Output = Usd;
    fn sub(self, rhs: Usd) -> Usd {
        Usd(self.0 - rhs.0)
    }
}

impl SubAssign for Usd {
    fn sub_assign(&mut self, rhs: Usd) {
        self.0 -= rhs.0;
    }
}

impl Neg for Usd {
    type Output = Usd;
    fn neg(self) -> Usd {
        Usd(-self.0)
    }
}

impl Mul<i64> for Usd {
    type Output = Usd;
    fn mul(self, rhs: i64) -> Usd {
        Usd(self.0 * rhs)
    }
}

impl Sum for Usd {
    fn sum<I: Iterator<Item = Usd>>(iter: I) -> Usd {
        iter.fold(Usd::ZERO, Add::add)
    }
}

impl fmt::Display for Usd {
    /// Formats like the paper's tables: `10.88$`, trimming to 2 decimal
    /// places but extending when sub-cent precision matters (`0.0001$`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let abs = self.0.unsigned_abs();
        let dollars = abs / 1_000_000;
        let micros = abs % 1_000_000;
        if micros.is_multiple_of(10_000) {
            write!(f, "{sign}{dollars}.{:02}$", micros / 10_000)
        } else {
            // Sub-cent amounts (queue requests cost ~$0.000001 each).
            let s = format!("{micros:06}");
            let trimmed = s.trim_end_matches('0');
            write!(f, "{sign}{dollars}.{trimmed}$")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Usd::dollars(2), Usd::cents(200));
        assert_eq!(Usd::cents(68), Usd::from_f64(0.68));
        assert_eq!(Usd::micros(1_000_000), Usd::dollars(1));
    }

    #[test]
    fn exact_accumulation() {
        // 16 HCXL instances at $0.68/h -> exactly $10.88 (paper Table 4).
        let total: Usd = std::iter::repeat_n(Usd::cents(68), 16).sum();
        assert_eq!(total, Usd::cents(1088));
        assert_eq!(total.to_string(), "10.88$");
    }

    #[test]
    fn display_formats() {
        assert_eq!(Usd::cents(1).to_string(), "0.01$");
        assert_eq!(Usd::dollars(15).to_string(), "15.00$");
        assert_eq!(Usd::micros(100).to_string(), "0.0001$");
        assert_eq!((-Usd::cents(34)).to_string(), "-0.34$");
        assert_eq!(Usd::ZERO.to_string(), "0.00$");
    }

    #[test]
    fn scale_rounds_to_micro() {
        // $0.68/hour for 1000 seconds = 0.68 * 1000/3600.
        let hourly = Usd::cents(68);
        let frac = hourly.scale(1000.0 / 3600.0);
        assert_eq!(frac, Usd::micros(188_889));
    }

    #[test]
    fn saturating_sub() {
        assert_eq!(Usd::cents(5).saturating_sub_zero(Usd::cents(10)), Usd::ZERO);
        assert_eq!(
            Usd::cents(10).saturating_sub_zero(Usd::cents(5)),
            Usd::cents(5)
        );
    }

    #[test]
    fn parse_round_trips_display() {
        for usd in [
            Usd::cents(68),
            Usd::dollars(15),
            Usd::micros(100),
            -Usd::cents(34),
            Usd::ZERO,
        ] {
            assert_eq!(Usd::parse(&usd.to_string()).unwrap(), usd, "{usd}");
        }
        assert_eq!(Usd::parse("$10.88").unwrap(), Usd::cents(1088));
        assert_eq!(Usd::parse(" 2 ").unwrap(), Usd::dollars(2));
        assert_eq!(Usd::parse(".5").unwrap(), Usd::cents(50));
        assert!(Usd::parse("abc").is_err());
        assert!(Usd::parse("").is_err());
        assert!(Usd::parse("1.2345678").is_err(), "too precise");
    }

    #[test]
    fn ordering_and_arith() {
        assert!(Usd::cents(68) < Usd::dollars(1));
        assert_eq!(Usd::dollars(1) - Usd::cents(32), Usd::cents(68));
        assert_eq!(Usd::cents(12) * 128, Usd::cents(1536));
    }
}
