//! Plain-text tables and figures for the benchmark harness.
//!
//! The paper's evaluation is a set of tables (instance catalogs, cost
//! comparison) and bar/line figures (time, cost, efficiency). The harness
//! regenerates each as an aligned text table — [`Table`] for tables and
//! [`Figure`] for multi-series plots, where each series becomes a column —
//! plus CSV for downstream plotting.

use std::fmt;

/// An aligned, pipe-separated text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the arity disagrees with the header, which is
    /// always a harness programming error worth failing loudly on.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as comma-separated values (header first), for plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, w) in widths.iter().enumerate().take(ncols) {
                write!(
                    f,
                    " {:<w$} |",
                    cells.get(i).map(String::as_str).unwrap_or(""),
                    w = w
                )?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// One named series of (x-label, value) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub label: String,
    pub points: Vec<(String, f64)>,
}

impl Series {
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: impl Into<String>, y: f64) -> &mut Self {
        self.points.push((x.into(), y));
        self
    }

    pub fn value_at(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(px, _)| px == x).map(|&(_, y)| y)
    }
}

/// A figure: several series sharing an x axis, rendered as one table with a
/// column per series (the text analog of the paper's grouped bars / lines).
#[derive(Debug, Clone)]
pub struct Figure {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
    /// Decimal places for values (cost wants 4, seconds want 1).
    pub precision: usize,
}

impl Figure {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            precision: 2,
        }
    }

    pub fn with_precision(mut self, p: usize) -> Figure {
        self.precision = p;
        self
    }

    pub fn add(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// All distinct x labels in first-appearance order across series.
    pub fn x_values(&self) -> Vec<String> {
        let mut xs: Vec<String> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !xs.contains(x) {
                    xs.push(x.clone());
                }
            }
        }
        xs
    }

    /// Render to a [`Table`] (one row per x value, one column per series).
    pub fn to_table(&self) -> Table {
        let mut headers: Vec<&str> = vec![self.x_label.as_str()];
        for s in &self.series {
            headers.push(&s.label);
        }
        let mut t = Table::new(format!("{} [{}]", self.title, self.y_label), &headers);
        for x in self.x_values() {
            let mut row = vec![x.clone()];
            for s in &self.series {
                row.push(match s.value_at(&x) {
                    Some(v) => format!("{v:.p$}", p = self.precision),
                    None => "-".to_string(),
                });
            }
            t.row(row);
        }
        t
    }

    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.to_table().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 22    |"));
        assert_eq!(t.to_csv(), "name,value\nalpha,1\nb,22\n");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn figure_merges_x_axes() {
        let mut f = Figure::new("Fig", "cores", "efficiency").with_precision(3);
        let mut s1 = Series::new("hadoop");
        s1.push("64", 0.95).push("128", 0.93);
        let mut s2 = Series::new("ec2");
        s2.push("128", 0.90).push("256", 0.88);
        f.add(s1);
        f.add(s2);
        assert_eq!(f.x_values(), vec!["64", "128", "256"]);
        let rendered = f.to_string();
        assert!(rendered.contains("0.950"));
        // hole where ec2 has no 64-core point
        assert!(rendered
            .lines()
            .any(|l| l.contains("| 64 ") && l.contains(" - ")));
    }

    #[test]
    fn series_lookup() {
        let mut s = Series::new("x");
        s.push("a", 1.0);
        assert_eq!(s.value_at("a"), Some(1.0));
        assert_eq!(s.value_at("zz"), None);
    }
}
