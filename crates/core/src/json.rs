//! A small JSON value type, parser, and writer.
//!
//! The queue wire format ("every message in the queue describes a single
//! task") and the GTM model-distribution format are JSON so they stay
//! inspectable and language-neutral, but the workspace is dependency-free
//! by design — this module is the ~300 lines of JSON we actually need.
//!
//! Numbers keep integer/float identity: integers round-trip exactly at
//! full `u64`/`i64` range (not through `f64`), and floats are written with
//! Rust's shortest round-trip formatting.

use crate::error::{PpcError, Result};
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer literal (no fraction/exponent in the source).
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key-value pairs in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that errors with the missing key's name.
    pub fn field(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| PpcError::Codec(format!("missing field '{key}'")))
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(type_err("bool", other)),
        }
    }

    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).map_err(|_| type_err("u64", self)),
            Json::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Ok(*f as u64)
            }
            other => Err(type_err("u64", other)),
        }
    }

    pub fn as_usize(&self) -> Result<usize> {
        usize::try_from(self.as_u64()?).map_err(|_| type_err("usize", self))
    }

    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).map_err(|_| type_err("i64", self)),
            other => Err(type_err("i64", other)),
        }
    }

    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(f) => Ok(*f),
            other => Err(type_err("number", other)),
        }
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(type_err("string", other)),
        }
    }

    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(type_err("array", other)),
        }
    }

    /// Array of numbers → `Vec<f64>` (the matrix payload shape).
    pub fn as_f64_vec(&self) -> Result<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "int",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn type_err(want: &str, got: &Json) -> PpcError {
    PpcError::Codec(format!("expected {want}, got {}", got.kind()))
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl FromIterator<f64> for Json {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Json::Float).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip float formatting; force a
                    // fraction so the value re-parses as a float.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no NaN/Infinity; null is the conventional hole.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> PpcError {
        PpcError::Codec(format!("json parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uDC00-\uDFFF next.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 advanced pos past the digits; continue the
                            // loop without the extra +1 below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid float literal"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid integer literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-17", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
    }

    #[test]
    fn float_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 12345.6789, -2.5e17, 1.0] {
            let v = Json::Float(f);
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(back.as_f64().unwrap(), f, "float {f} round trip");
        }
    }

    #[test]
    fn u64_range_is_exact() {
        let v = Json::from(u64::MAX);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn nested_document() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":true}, "e": -3}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.field("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.field("e").unwrap().as_i64().unwrap(), -3);
        assert!(matches!(v.field("b").unwrap().get("c"), Some(Json::Null)));
        // Re-render and re-parse: stable.
        let again = Json::parse(&v.to_string()).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn string_escapes() {
        let original = "line1\nline2\t\"quoted\" back\\slash \u{1F600} ünïcode";
        let v = Json::Str(original.to_string());
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str().unwrap(), original);
        // Escaped-source forms parse too.
        let v = Json::parse(r#""aA\n😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\n\u{1F600}");
    }

    #[test]
    fn errors_are_codec_errors() {
        for bad in [
            "{not json",
            "[1,",
            "\"unterminated",
            "01x",
            "{\"a\":1} junk",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert_eq!(err.code(), "Codec", "input {bad:?}");
        }
    }

    #[test]
    fn missing_field_names_the_key() {
        let v = Json::parse("{}").unwrap();
        let err = v.field("profile").unwrap_err();
        assert!(err.to_string().contains("profile"));
    }
}
