//! Evaluation metrics from the paper's §3.
//!
//! * **Equation 1 — parallel efficiency**: `E = T1 / (P · Tp)` where `T1` is
//!   the best sequential time for the same workload on the same platform and
//!   `Tp` the parallel time on `P` cores.
//! * **Equation 2 — average time per task per core**: the wall time a user
//!   can expect one unit of work to take on one core of a given environment,
//!   `t̄ = Tp · P / N` for `N` tasks.
//!
//! Also provides [`RunSummary`], the record every framework run returns to
//! the harness, and simple descriptive statistics for reporting.

/// Equation 1: parallel efficiency on `p` cores.
///
/// `t1` is the sequential time for the *whole* workload; `tp` the measured
/// parallel time. Returns 0 for degenerate inputs rather than panicking so
/// sweeps with empty cells stay well-formed.
pub fn parallel_efficiency(t1_seconds: f64, tp_seconds: f64, p_cores: usize) -> f64 {
    if tp_seconds <= 0.0 || p_cores == 0 {
        return 0.0;
    }
    t1_seconds / (p_cores as f64 * tp_seconds)
}

/// Equation 2: average time for a single task on a single core.
pub fn avg_time_per_task_per_core(tp_seconds: f64, p_cores: usize, n_tasks: usize) -> f64 {
    if n_tasks == 0 {
        return 0.0;
    }
    tp_seconds * p_cores as f64 / n_tasks as f64
}

/// Speedup `T1 / Tp`; the paper reports efficiency, but ablations use both.
pub fn speedup(t1_seconds: f64, tp_seconds: f64) -> f64 {
    if tp_seconds <= 0.0 {
        return 0.0;
    }
    t1_seconds / tp_seconds
}

/// Outcome of one framework run, consumed by the benchmark harness.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Which framework produced this run ("classic-ec2", "hadoop", ...).
    pub platform: String,
    /// Number of worker cores used.
    pub cores: usize,
    /// Number of tasks completed (including none-lost re-executions only once).
    pub tasks: usize,
    /// Wall-clock (native) or simulated (DES) makespan, seconds.
    pub makespan_seconds: f64,
    /// Count of task executions that were retries/duplicates — wasted work.
    pub redundant_executions: usize,
    /// Total bytes moved through remote storage (0 for local-disk platforms).
    pub remote_bytes: u64,
}

impl RunSummary {
    /// Canonical JSON rendering. This is the one shared report serializer:
    /// `ppc_exec::RunReport::to_json` embeds it, and every paradigm
    /// report's JSON in turn embeds that — no per-crate copies.
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        Json::Obj(vec![
            ("platform".into(), Json::from(self.platform.as_str())),
            ("cores".into(), Json::from(self.cores)),
            ("tasks".into(), Json::from(self.tasks)),
            (
                "makespan_seconds".into(),
                Json::Float(self.makespan_seconds),
            ),
            (
                "redundant_executions".into(),
                Json::from(self.redundant_executions),
            ),
            ("remote_bytes".into(), Json::from(self.remote_bytes)),
        ])
    }

    /// Equation 1 against a supplied sequential baseline.
    pub fn efficiency(&self, t1_seconds: f64) -> f64 {
        parallel_efficiency(t1_seconds, self.makespan_seconds, self.cores)
    }

    /// Equation 2.
    pub fn per_task_per_core(&self) -> f64 {
        avg_time_per_task_per_core(self.makespan_seconds, self.cores, self.tasks)
    }
}

/// Descriptive statistics over a sample, used when reporting repeated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Stats {
    /// Compute stats over a non-empty sample; returns `None` when empty.
    pub fn from_sample(xs: &[f64]) -> Option<Stats> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Stats {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        })
    }

    /// Coefficient of variation in percent — the paper reports 1.56% (AWS)
    /// and 2.25% (Azure) sustained-performance variation this way.
    pub fn cv_percent(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            100.0 * self.std_dev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_perfect_scaling() {
        // 1600 s sequential, 100 s on 16 cores -> E = 1.
        assert!((parallel_efficiency(1600.0, 100.0, 16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_with_overhead() {
        // 25% overhead -> E = 0.8.
        assert!((parallel_efficiency(1600.0, 125.0, 16) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn efficiency_degenerate() {
        assert_eq!(parallel_efficiency(1.0, 0.0, 4), 0.0);
        assert_eq!(parallel_efficiency(1.0, 1.0, 0), 0.0);
    }

    #[test]
    fn per_task_per_core() {
        // 200 tasks, 1000 s on 16 cores -> 80 s per task per core.
        assert!((avg_time_per_task_per_core(1000.0, 16, 200) - 80.0).abs() < 1e-12);
        assert_eq!(avg_time_per_task_per_core(1000.0, 16, 0), 0.0);
    }

    #[test]
    fn summary_wraps_equations() {
        let s = RunSummary {
            platform: "hadoop".into(),
            cores: 16,
            tasks: 200,
            makespan_seconds: 125.0,
            redundant_executions: 3,
            remote_bytes: 0,
        };
        assert!((s.efficiency(1600.0) - 0.8).abs() < 1e-12);
        assert!((s.per_task_per_core() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn summary_json_round_trips() {
        let s = RunSummary {
            platform: "classic-ec2".into(),
            cores: 128,
            tasks: 4096,
            makespan_seconds: 3000.5,
            redundant_executions: 4,
            remote_bytes: 2 << 30,
        };
        let j = crate::json::Json::parse(&s.to_json().to_string()).unwrap();
        assert_eq!(
            j.field("platform").unwrap().as_str().unwrap(),
            "classic-ec2"
        );
        assert_eq!(j.field("cores").unwrap().as_usize().unwrap(), 128);
        assert_eq!(
            j.field("makespan_seconds").unwrap().as_f64().unwrap(),
            3000.5
        );
        assert_eq!(j.field("remote_bytes").unwrap().as_u64().unwrap(), 2 << 30);
    }

    #[test]
    fn stats_basics() {
        let s = Stats::from_sample(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.13809).abs() < 1e-4); // sample std dev
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn stats_empty_and_singleton() {
        assert!(Stats::from_sample(&[]).is_none());
        let s = Stats::from_sample(&[3.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.cv_percent(), 0.0);
    }

    #[test]
    fn cv_percent() {
        let s = Stats {
            n: 2,
            mean: 100.0,
            std_dev: 1.56,
            min: 0.0,
            max: 0.0,
        };
        assert!((s.cv_percent() - 1.56).abs() < 1e-12);
    }
}
