//! Shared recovery layer: retry policy, circuit breaker, deadline.
//!
//! Every ad-hoc retry loop in the workspace (storage `get_with_retry`,
//! the queue client's transient-error polling, Dryad's vertex re-run)
//! routes through [`RetryPolicy`] so backoff, jitter, and retry budgets
//! behave identically across services — the way a cloud SDK centralises
//! its retry middleware.
//!
//! Time is injected, never read: callers pass a sleep function (native
//! engines sleep for real, the simulator advances virtual time, tests
//! record durations) and, for the circuit breaker, a clock in seconds.
//! That keeps the whole layer usable from both the threaded runtimes and
//! the discrete-event simulator, and keeps every test deterministic.

use crate::error::{PpcError, Result};
use crate::rng::Pcg32;
use std::time::{Duration, Instant};

/// Exponential backoff with jitter and a total-sleep retry budget.
///
/// `delay(attempt) = min(base * multiplier^attempt, max_delay)`, then up to
/// `jitter` (a fraction in `[0, 1]`) of that delay is randomised away so
/// synchronised clients don't retry in lockstep. The budget caps the *sum*
/// of sleeps across attempts: once spent, the loop stops retrying even if
/// attempts remain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total tries, including the first (`0` is treated as `1`).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling applied after exponential growth.
    pub max_delay: Duration,
    /// Growth factor per attempt (`2.0` doubles each retry).
    pub multiplier: f64,
    /// Fraction of each delay randomised away, in `[0, 1]`.
    pub jitter: f64,
    /// Cap on total sleep across all retries; `None` means unbounded.
    pub budget: Option<Duration>,
}

impl RetryPolicy {
    /// No retries at all: one attempt, surface the first error.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        base_delay: Duration::ZERO,
        max_delay: Duration::ZERO,
        multiplier: 1.0,
        jitter: 0.0,
        budget: None,
    };

    /// A sensible cloud-client default: `attempts` tries, 1 ms doubling
    /// backoff capped at 100 ms, 50% jitter, unbounded budget.
    pub fn with_attempts(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
            multiplier: 2.0,
            jitter: 0.5,
            budget: None,
        }
    }

    /// Immediate retries (no sleeping) — for compute-side re-runs where
    /// waiting buys nothing, e.g. Dryad vertex re-execution.
    pub fn immediate(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            multiplier: 1.0,
            jitter: 0.0,
            budget: None,
        }
    }

    /// Builder-style base delay override.
    pub fn with_base_delay(mut self, d: Duration) -> RetryPolicy {
        self.base_delay = d;
        self
    }

    /// Builder-style budget override.
    pub fn with_budget(mut self, budget: Duration) -> RetryPolicy {
        self.budget = Some(budget);
        self
    }

    /// The pre-jitter delay before retry number `attempt` (0-based: the
    /// delay between the first failure and the second try is `delay(0)`).
    pub fn delay(&self, attempt: u32) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let grown = self.base_delay.as_secs_f64() * self.multiplier.powi(attempt as i32);
        Duration::from_secs_f64(grown.min(self.max_delay.as_secs_f64().max(0.0)))
    }

    /// `delay(attempt)` with up to `jitter` of it randomised away.
    pub fn jittered_delay(&self, attempt: u32, rng: &mut Pcg32) -> Duration {
        let d = self.delay(attempt);
        if self.jitter <= 0.0 || d.is_zero() {
            return d;
        }
        let keep = 1.0 - self.jitter.min(1.0) * rng.next_f64();
        Duration::from_secs_f64(d.as_secs_f64() * keep)
    }

    /// Run `op` under this policy, retrying retryable errors.
    ///
    /// `op` receives the 0-based attempt index. `sleep` receives each
    /// backoff delay — pass `std::thread::sleep` in a native runtime, a
    /// virtual-time hook in a simulator, or a recorder in tests. Stops on
    /// the first success, the first non-retryable error, attempt
    /// exhaustion, budget exhaustion, or `deadline` expiry.
    pub fn run<T>(
        &self,
        rng: &mut Pcg32,
        deadline: Option<&Deadline>,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut slept = Duration::ZERO;
        let mut last = None;
        for attempt in 0..attempts {
            if let Some(d) = deadline {
                if d.expired() {
                    return Err(last.unwrap_or_else(|| {
                        PpcError::Transient("deadline expired before first attempt".into())
                    }));
                }
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() && attempt + 1 < attempts => {
                    let mut pause = self.jittered_delay(attempt, rng);
                    if let Some(budget) = self.budget {
                        if slept + pause > budget {
                            return Err(e);
                        }
                    }
                    if let Some(d) = deadline {
                        match d.remaining() {
                            Some(rem) => pause = pause.min(rem),
                            None => return Err(e),
                        }
                    }
                    if !pause.is_zero() {
                        sleep(pause);
                        slept += pause;
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| PpcError::Transient("retry policy made no attempts".into())))
    }

    /// [`RetryPolicy::run`] sleeping on the current thread.
    pub fn run_blocking<T>(&self, rng: &mut Pcg32, op: impl FnMut(u32) -> Result<T>) -> Result<T> {
        self.run(rng, None, std::thread::sleep, op)
    }
}

/// A wall-clock deadline propagated down through retry loops: the caller's
/// patience, carried with the request the way gRPC and SQS long-poll carry
/// theirs. Retry loops cap their sleeps at `remaining()` and stop retrying
/// once `expired()`.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Instant::now() + d,
        }
    }

    /// Absolute deadline.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// Time left, or `None` once past the deadline.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.checked_duration_since(Instant::now())
    }

    /// True once the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }
}

/// Circuit breaker state visible to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are refused until `reset_after_s` elapses.
    Open,
    /// One probe request is allowed through to test recovery.
    HalfOpen,
}

/// A minimal circuit breaker: after `failure_threshold` consecutive
/// failures it opens and fast-fails callers (no hammering a browned-out
/// service); after `reset_after_s` seconds it half-opens and lets one
/// probe through; a success closes it again, a failure re-opens it.
///
/// The clock is supplied by the caller in seconds (elapsed wall time for
/// the native engines, virtual time for the simulator), so the breaker is
/// deterministic under test.
pub struct CircuitBreaker {
    failure_threshold: u32,
    reset_after_s: f64,
    inner: crate::sync::Mutex<BreakerInner>,
}

struct BreakerInner {
    consecutive_failures: u32,
    opened_at_s: Option<f64>,
    probe_outstanding: bool,
    trips: u64,
}

impl CircuitBreaker {
    pub fn new(failure_threshold: u32, reset_after_s: f64) -> CircuitBreaker {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            reset_after_s: reset_after_s.max(0.0),
            inner: crate::sync::Mutex::new(BreakerInner {
                consecutive_failures: 0,
                opened_at_s: None,
                probe_outstanding: false,
                trips: 0,
            }),
        }
    }

    /// Current state at time `now_s` (an Open breaker reports `HalfOpen`
    /// once the reset interval has elapsed).
    pub fn state(&self, now_s: f64) -> BreakerState {
        let inner = self.inner.lock();
        match inner.opened_at_s {
            None => BreakerState::Closed,
            Some(at) if now_s - at >= self.reset_after_s => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Whether a request may proceed at `now_s`. In the half-open state
    /// only the first caller gets through (the probe); the rest are
    /// refused until the probe reports back.
    pub fn allow(&self, now_s: f64) -> bool {
        let mut inner = self.inner.lock();
        match inner.opened_at_s {
            None => true,
            Some(at) if now_s - at >= self.reset_after_s => {
                if inner.probe_outstanding {
                    false
                } else {
                    inner.probe_outstanding = true;
                    true
                }
            }
            Some(_) => false,
        }
    }

    /// Record a successful request: closes the breaker.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        inner.opened_at_s = None;
        inner.probe_outstanding = false;
    }

    /// Record a failed request at `now_s`: may trip the breaker open.
    pub fn record_failure(&self, now_s: f64) {
        let mut inner = self.inner.lock();
        inner.probe_outstanding = false;
        inner.consecutive_failures += 1;
        if inner.opened_at_s.is_some() || inner.consecutive_failures >= self.failure_threshold {
            if inner.opened_at_s.is_none() {
                inner.trips += 1;
            }
            inner.opened_at_s = Some(now_s);
        }
    }

    /// How many times the breaker has tripped from closed to open.
    pub fn trips(&self) -> u64 {
        self.inner.lock().trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(40),
            multiplier: 2.0,
            jitter: 0.0,
            budget: None,
        }
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = policy();
        assert_eq!(p.delay(0), Duration::from_millis(10));
        assert_eq!(p.delay(1), Duration::from_millis(20));
        assert_eq!(p.delay(2), Duration::from_millis(40));
        assert_eq!(p.delay(3), Duration::from_millis(40), "capped at max_delay");
    }

    #[test]
    fn jitter_keeps_delay_within_bounds_and_is_deterministic() {
        let p = RetryPolicy {
            jitter: 0.5,
            ..policy()
        };
        let mut a = Pcg32::new(7);
        let mut b = Pcg32::new(7);
        for attempt in 0..4 {
            let da = p.jittered_delay(attempt, &mut a);
            let db = p.jittered_delay(attempt, &mut b);
            assert_eq!(da, db, "same seed, same jitter");
            let full = p.delay(attempt);
            assert!(da <= full);
            assert!(da.as_secs_f64() >= full.as_secs_f64() * 0.5 - 1e-9);
        }
    }

    #[test]
    fn retries_transient_until_success() {
        let mut rng = Pcg32::new(1);
        let mut sleeps = Vec::new();
        let mut calls = 0;
        let out = policy().run(
            &mut rng,
            None,
            |d| sleeps.push(d),
            |attempt| {
                calls += 1;
                if attempt < 2 {
                    Err(PpcError::Transient("flaky".into()))
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
        assert_eq!(sleeps.len(), 2, "one sleep per retry");
        assert_eq!(sleeps[0], Duration::from_millis(10));
        assert_eq!(sleeps[1], Duration::from_millis(20));
    }

    #[test]
    fn non_retryable_error_returns_immediately() {
        let mut rng = Pcg32::new(1);
        let mut calls = 0;
        let out: Result<()> = policy().run(
            &mut rng,
            None,
            |_| panic!("must not sleep"),
            |_| {
                calls += 1;
                Err(PpcError::NotFound("missing".into()))
            },
        );
        assert_eq!(out.unwrap_err().code(), "NotFound");
        assert_eq!(calls, 1);
    }

    #[test]
    fn attempts_exhausted_surfaces_last_error() {
        let mut rng = Pcg32::new(1);
        let mut calls = 0;
        let out: Result<()> = policy().run(
            &mut rng,
            None,
            |_| {},
            |_| {
                calls += 1;
                Err(PpcError::Transient("always".into()))
            },
        );
        assert_eq!(out.unwrap_err().code(), "Transient");
        assert_eq!(calls, 5);
    }

    #[test]
    fn budget_stops_retries_before_attempts_run_out() {
        let p = policy().with_budget(Duration::from_millis(25));
        let mut rng = Pcg32::new(1);
        let mut slept = Duration::ZERO;
        let mut calls = 0;
        let out: Result<()> = p.run(
            &mut rng,
            None,
            |d| slept += d,
            |_| {
                calls += 1;
                Err(PpcError::Transient("always".into()))
            },
        );
        assert!(out.is_err());
        // 10ms + 20ms would blow the 25ms budget, so only the first retry
        // sleeps: 2 calls, 10ms total sleep.
        assert_eq!(calls, 2);
        assert_eq!(slept, Duration::from_millis(10));
    }

    #[test]
    fn deadline_caps_sleep_and_stops_retries() {
        let p = policy();
        let mut rng = Pcg32::new(1);
        let deadline = Deadline::after(Duration::from_millis(5));
        let mut sleeps = Vec::new();
        let out: Result<()> = p.run(
            &mut rng,
            Some(&deadline),
            |d| sleeps.push(d),
            |_| Err(PpcError::Transient("always".into())),
        );
        assert!(out.is_err());
        // Every sleep is capped at the deadline's remaining time.
        for d in &sleeps {
            assert!(*d <= Duration::from_millis(5));
        }
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let mut rng = Pcg32::new(1);
        let mut calls = 0;
        let out: Result<()> = RetryPolicy::immediate(3).run(
            &mut rng,
            None,
            |_| panic!("immediate policy must not sleep"),
            |_| {
                calls += 1;
                Err(PpcError::Transient("always".into()))
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 3);
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let b = CircuitBreaker::new(3, 1.0);
        assert_eq!(b.state(0.0), BreakerState::Closed);
        b.record_failure(0.1);
        b.record_failure(0.2);
        assert!(b.allow(0.3), "still closed below threshold");
        b.record_failure(0.3);
        assert_eq!(b.state(0.3), BreakerState::Open);
        assert!(!b.allow(0.5), "open: fast-fail");
        assert_eq!(b.trips(), 1);
        // After the reset interval one probe gets through.
        assert_eq!(b.state(1.4), BreakerState::HalfOpen);
        assert!(b.allow(1.4), "half-open probe");
        assert!(!b.allow(1.4), "only one probe at a time");
        b.record_success();
        assert_eq!(b.state(1.5), BreakerState::Closed);
        assert!(b.allow(1.5));
    }

    #[test]
    fn breaker_reopens_on_failed_probe() {
        let b = CircuitBreaker::new(1, 1.0);
        b.record_failure(0.0);
        assert_eq!(b.state(0.5), BreakerState::Open);
        assert!(b.allow(1.2), "probe");
        b.record_failure(1.2);
        assert_eq!(b.state(1.5), BreakerState::Open);
        assert!(!b.allow(1.5));
        assert_eq!(b.trips(), 1, "re-opening is not a fresh trip");
    }
}
