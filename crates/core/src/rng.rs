//! Tiny deterministic PRNGs for the simulator and workload generators.
//!
//! The discrete-event simulator must be bit-for-bit reproducible across
//! machines and runs, and we do not want `rand`'s trait plumbing threaded
//! through every model. [`SplitMix64`] seeds; [`Pcg32`] generates. Both are
//! the standard public-domain algorithms (Steele et al. 2014; O'Neill 2014).

/// SplitMix64 — used to expand one `u64` seed into many independent seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Reserved stream id for the *client/master* role of a run (the job
/// submitter, shuffler, or locality synthesizer), far away from the dense
/// `0, 1, 2, …` ids that address worker slots.
pub const CLIENT_STREAM: u64 = u64::MAX;

/// Derive the seed of an independent RNG stream from one run-level seed.
///
/// All runtimes and simulators draw their per-worker randomness from
/// `stream_seed(run_seed, worker_index)` (and the client side from
/// [`CLIENT_STREAM`]), so a single seed governs every stochastic choice of
/// a run while streams stay statistically independent. Two SplitMix64
/// scrambles chain the words so nearby stream ids (0, 1, 2, …) land far
/// apart.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mixed = SplitMix64::new(seed).next_u64();
    SplitMix64::new(mixed ^ stream).next_u64()
}

/// PCG-XSH-RR 64/32 — small, fast, statistically solid for simulation use.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

impl Pcg32 {
    /// Construct from a seed; the stream constant is derived from the seed so
    /// two generators with different seeds are independent.
    pub fn new(seed: u64) -> Pcg32 {
        let mut sm = SplitMix64::new(seed);
        let initstate = sm.next_u64();
        let initseq = sm.next_u64();
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// Generator for stream `stream` of run `seed` — see [`stream_seed`].
    pub fn for_stream(seed: u64, stream: u64) -> Pcg32 {
        Pcg32::new(stream_seed(seed, stream))
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's method (unbiased enough
    /// for simulation; exact rejection for small bounds).
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling for exactness.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            if r >= threshold {
                return r % bound;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal via Box–Muller (one value per call; simple > fast here).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > f64::EPSILON {
                let u2 = self.next_f64();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return -mean * u.ln();
            }
        }
    }

    /// Log-normal parameterized by the mean/std-dev of the *underlying*
    /// normal; used for inhomogeneous task-duration distributions.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u32 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Pick one element uniformly; `None` on empty slices.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u32) as usize])
        }
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u32> = {
            let mut r = Pcg32::new(42);
            (0..16).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg32::new(42);
            (0..16).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u32> = {
            let mut r = Pcg32::new(43);
            (0..16).map(|_| r.next_u32()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = Pcg32::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn normal_moments() {
        let mut r = Pcg32::new(1234);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Pcg32::new(5);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Pcg32::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely to be identity"
        );
    }

    #[test]
    fn choose_and_chance() {
        let mut r = Pcg32::new(3);
        assert_eq!(r.choose::<u8>(&[]), None);
        assert!([1, 2, 3].contains(r.choose(&[1, 2, 3]).unwrap()));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let draw = |seed, stream| -> Vec<u32> {
            let mut r = Pcg32::for_stream(seed, stream);
            (0..16).map(|_| r.next_u32()).collect()
        };
        // Same (seed, stream) → same sequence.
        assert_eq!(draw(42, 0), draw(42, 0));
        assert_eq!(draw(42, CLIENT_STREAM), draw(42, CLIENT_STREAM));
        // Neighbouring streams and neighbouring seeds diverge.
        assert_ne!(draw(42, 0), draw(42, 1));
        assert_ne!(draw(42, 0), draw(43, 0));
        assert_ne!(draw(42, 0), draw(42, CLIENT_STREAM));
        // stream_seed itself is stable across calls.
        assert_eq!(stream_seed(7, 3), stream_seed(7, 3));
        assert_ne!(stream_seed(7, 3), stream_seed(7, 4));
    }

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 from the reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
