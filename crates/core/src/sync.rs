//! Poison-free locks with the `parking_lot` calling convention.
//!
//! The workspace originally used `parking_lot` for its non-poisoning
//! `lock()` API. These are thin wrappers over `std::sync` that recover the
//! guard on poison instead of propagating a panic-of-a-panic: a worker
//! thread that dies while holding a lock is exactly the failure the
//! frameworks are built to tolerate, so the services must keep serving.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose `read()`/`write()` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // A poisoned std mutex would panic here; ours recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
