//! Workspace error type.
//!
//! Every service in the workspace returns [`PpcError`] so that the framework
//! layers (Classic Cloud, MapReduce, Dryad) can handle storage/queue/compute
//! failures uniformly, the way a cloud client SDK surfaces HTTP error codes.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, PpcError>;

/// Unified error for all `ppc` services and frameworks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PpcError {
    /// A storage object, queue, file, or task was not found.
    NotFound(String),
    /// The named entity already exists (bucket, queue, path).
    AlreadyExists(String),
    /// The request was understood but is not valid in the current state
    /// (e.g. deleting a message whose receipt handle has expired).
    InvalidState(String),
    /// Bad input from the caller (malformed key, empty task set, ...).
    InvalidArgument(String),
    /// A service was asked to do something after shutdown.
    ServiceStopped(String),
    /// Injected or modeled infrastructure failure (worker death, datanode
    /// loss, transient service error a client is expected to retry).
    Transient(String),
    /// A task's user code failed; carries the task's own message.
    TaskFailed(String),
    /// Capacity exhausted (no instances available, quota hit).
    CapacityExceeded(String),
    /// Serialization / deserialization problems for messages and manifests.
    Codec(String),
}

impl PpcError {
    /// Whether a client is expected to retry the operation, matching the
    /// retry guidance real cloud SDKs attach to error codes.
    pub fn is_retryable(&self) -> bool {
        matches!(self, PpcError::Transient(_))
    }

    /// Short machine-readable code, handy in logs and test assertions.
    pub fn code(&self) -> &'static str {
        match self {
            PpcError::NotFound(_) => "NotFound",
            PpcError::AlreadyExists(_) => "AlreadyExists",
            PpcError::InvalidState(_) => "InvalidState",
            PpcError::InvalidArgument(_) => "InvalidArgument",
            PpcError::ServiceStopped(_) => "ServiceStopped",
            PpcError::Transient(_) => "Transient",
            PpcError::TaskFailed(_) => "TaskFailed",
            PpcError::CapacityExceeded(_) => "CapacityExceeded",
            PpcError::Codec(_) => "Codec",
        }
    }
}

impl fmt::Display for PpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            PpcError::NotFound(m)
            | PpcError::AlreadyExists(m)
            | PpcError::InvalidState(m)
            | PpcError::InvalidArgument(m)
            | PpcError::ServiceStopped(m)
            | PpcError::Transient(m)
            | PpcError::TaskFailed(m)
            | PpcError::CapacityExceeded(m)
            | PpcError::Codec(m) => m,
        };
        write!(f, "{}: {}", self.code(), msg)
    }
}

impl std::error::Error for PpcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_message() {
        let e = PpcError::NotFound("bucket 'b'".into());
        assert_eq!(e.to_string(), "NotFound: bucket 'b'");
    }

    #[test]
    fn only_transient_is_retryable() {
        assert!(PpcError::Transient("x".into()).is_retryable());
        assert!(!PpcError::NotFound("x".into()).is_retryable());
        assert!(!PpcError::TaskFailed("x".into()).is_retryable());
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(PpcError::Codec("x".into()).code(), "Codec");
        assert_eq!(
            PpcError::CapacityExceeded("x".into()).code(),
            "CapacityExceeded"
        );
    }
}
