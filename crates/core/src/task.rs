//! Task identity and the resource model shared by all frameworks.
//!
//! In the paper a *task* is one input file processed by one executable
//! invocation producing one output file (§2.1.3). All three frameworks
//! (Classic Cloud, Hadoop, DryadLINQ) schedule the same tasks; only the
//! transport differs. [`TaskSpec`] captures that framework-independent view.
//!
//! [`ResourceProfile`] is the service-time model the discrete-event simulator
//! uses to predict how long a task takes on a given instance type: CPU
//! seconds at a reference clock, the memory footprint (BLAST's database
//! residency), memory traffic (GTM's bandwidth-bound kernel), and I/O bytes
//! (what Classic Cloud must move through cloud storage).

use crate::json::Json;
use std::fmt;

/// Reference clock rate, in GHz, at which [`ResourceProfile::cpu_seconds_ref`]
/// is expressed. Matches the EC2 High-CPU-Extra-Large core (~2.5 GHz) the
/// paper treats as its workhorse.
pub const REFERENCE_CLOCK_GHZ: f64 = 2.5;

/// Globally unique task identifier within a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task-{}", self.0)
    }
}

/// Resource demands of a single task, measured (or calibrated) at the
/// reference platform. See the module docs for how the simulator scales it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceProfile {
    /// Pure compute time on one reference core ([`REFERENCE_CLOCK_GHZ`]),
    /// with the working set resident and no memory contention.
    pub cpu_seconds_ref: f64,
    /// Peak *private* resident working set per running task, bytes.
    pub mem_bytes: u64,
    /// Read-only working set *shared by all workers on a node* — the BLAST
    /// NR database, resident once per instance. Zero for most apps.
    /// Defaults to 0 when absent on the wire.
    pub shared_mem_bytes: u64,
    /// Bytes moved between memory and CPU over the task's life; drives the
    /// bandwidth-contention term for memory-bound kernels like GTM.
    pub mem_traffic_bytes: u64,
    /// Input payload the framework must deliver to the worker.
    pub input_bytes: u64,
    /// Output payload the framework must collect.
    pub output_bytes: u64,
}

impl ResourceProfile {
    /// A purely CPU-bound profile with negligible data movement.
    pub fn cpu_bound(cpu_seconds_ref: f64) -> Self {
        ResourceProfile {
            cpu_seconds_ref,
            mem_bytes: 64 << 20,
            shared_mem_bytes: 0,
            mem_traffic_bytes: 0,
            input_bytes: 0,
            output_bytes: 0,
        }
    }

    /// Merge two profiles as if the tasks ran back to back (used when
    /// bundling fine-grained work into coarser tasks).
    pub fn concat(self, other: ResourceProfile) -> ResourceProfile {
        ResourceProfile {
            cpu_seconds_ref: self.cpu_seconds_ref + other.cpu_seconds_ref,
            mem_bytes: self.mem_bytes.max(other.mem_bytes),
            shared_mem_bytes: self.shared_mem_bytes.max(other.shared_mem_bytes),
            mem_traffic_bytes: self.mem_traffic_bytes + other.mem_traffic_bytes,
            input_bytes: self.input_bytes + other.input_bytes,
            output_bytes: self.output_bytes + other.output_bytes,
        }
    }

    /// Scale the whole profile by a factor (e.g. replicate a workload 6x).
    pub fn scaled(self, factor: f64) -> ResourceProfile {
        ResourceProfile {
            cpu_seconds_ref: self.cpu_seconds_ref * factor,
            mem_bytes: self.mem_bytes,
            shared_mem_bytes: self.shared_mem_bytes,
            mem_traffic_bytes: (self.mem_traffic_bytes as f64 * factor) as u64,
            input_bytes: (self.input_bytes as f64 * factor) as u64,
            output_bytes: (self.output_bytes as f64 * factor) as u64,
        }
    }
}

/// A framework-independent description of one unit of pleasingly parallel
/// work: "run the application on this input object, produce that output
/// object".
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Identity within the job; used for dedup by idempotent re-execution.
    pub id: TaskId,
    /// Application name ("cap3", "blast", "gtm", or a test kernel).
    pub app: String,
    /// Storage key / file path of the input.
    pub input_key: String,
    /// Storage key / file path where the output must land.
    pub output_key: String,
    /// Resource model for the simulator; native runtimes ignore it.
    pub profile: ResourceProfile,
}

impl TaskSpec {
    /// Convenience constructor deriving the output key from the input key.
    pub fn new(
        id: u64,
        app: impl Into<String>,
        input_key: impl Into<String>,
        profile: ResourceProfile,
    ) -> Self {
        let input_key = input_key.into();
        let output_key = format!("{input_key}.out");
        TaskSpec {
            id: TaskId(id),
            app: app.into(),
            input_key,
            output_key,
            profile,
        }
    }

    /// Serialize to the wire format used as a queue message body, mirroring
    /// the paper's "every message in the queue describes a single task".
    pub fn to_message(&self) -> crate::Result<String> {
        let p = &self.profile;
        let doc = Json::Obj(vec![
            ("id".into(), Json::from(self.id.0)),
            ("app".into(), Json::from(self.app.as_str())),
            ("input_key".into(), Json::from(self.input_key.as_str())),
            ("output_key".into(), Json::from(self.output_key.as_str())),
            (
                "profile".into(),
                Json::Obj(vec![
                    ("cpu_seconds_ref".into(), Json::from(p.cpu_seconds_ref)),
                    ("mem_bytes".into(), Json::from(p.mem_bytes)),
                    ("shared_mem_bytes".into(), Json::from(p.shared_mem_bytes)),
                    ("mem_traffic_bytes".into(), Json::from(p.mem_traffic_bytes)),
                    ("input_bytes".into(), Json::from(p.input_bytes)),
                    ("output_bytes".into(), Json::from(p.output_bytes)),
                ]),
            ),
        ]);
        Ok(doc.to_string())
    }

    /// Parse a queue message body back into a task.
    pub fn from_message(body: &str) -> crate::Result<TaskSpec> {
        let doc = Json::parse(body)?;
        let p = doc.field("profile")?;
        Ok(TaskSpec {
            id: TaskId(doc.field("id")?.as_u64()?),
            app: doc.field("app")?.as_str()?.to_string(),
            input_key: doc.field("input_key")?.as_str()?.to_string(),
            output_key: doc.field("output_key")?.as_str()?.to_string(),
            profile: ResourceProfile {
                cpu_seconds_ref: p.field("cpu_seconds_ref")?.as_f64()?,
                mem_bytes: p.field("mem_bytes")?.as_u64()?,
                // Older messages predate the shared-residency field.
                shared_mem_bytes: match p.get("shared_mem_bytes") {
                    Some(v) => v.as_u64()?,
                    None => 0,
                },
                mem_traffic_bytes: p.field("mem_traffic_bytes")?.as_u64()?,
                input_bytes: p.field("input_bytes")?.as_u64()?,
                output_bytes: p.field("output_bytes")?.as_u64()?,
            },
        })
    }
}

/// One task plus the (virtual or wall-clock) offset at which it arrives at
/// the scheduling queue — the unit of a *bursty* workload. A job whose
/// tasks all carry `at_s == 0` degenerates to the paper's all-upfront
/// submission.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskArrival {
    pub spec: TaskSpec,
    /// Seconds after job start at which this task is enqueued.
    pub at_s: f64,
}

impl TaskArrival {
    pub fn upfront(spec: TaskSpec) -> TaskArrival {
        TaskArrival { spec, at_s: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskSpec {
        TaskSpec::new(
            7,
            "cap3",
            "inputs/file7.fa",
            ResourceProfile::cpu_bound(4.2),
        )
    }

    #[test]
    fn message_round_trip() {
        let t = sample();
        let wire = t.to_message().unwrap();
        let back = TaskSpec::from_message(&wire).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn bad_message_is_codec_error() {
        let err = TaskSpec::from_message("{not json").unwrap_err();
        assert_eq!(err.code(), "Codec");
    }

    #[test]
    fn output_key_derived() {
        assert_eq!(sample().output_key, "inputs/file7.fa.out");
    }

    #[test]
    fn concat_sums_flows_and_maxes_residency() {
        let a = ResourceProfile {
            cpu_seconds_ref: 1.0,
            mem_bytes: 100,
            shared_mem_bytes: 0,
            mem_traffic_bytes: 10,
            input_bytes: 5,
            output_bytes: 1,
        };
        let b = ResourceProfile {
            cpu_seconds_ref: 2.0,
            mem_bytes: 50,
            shared_mem_bytes: 0,
            mem_traffic_bytes: 20,
            input_bytes: 7,
            output_bytes: 3,
        };
        let c = a.concat(b);
        assert_eq!(c.cpu_seconds_ref, 3.0);
        assert_eq!(c.mem_bytes, 100);
        assert_eq!(c.mem_traffic_bytes, 30);
        assert_eq!(c.input_bytes, 12);
        assert_eq!(c.output_bytes, 4);
    }

    #[test]
    fn scaled_profile() {
        let p = ResourceProfile {
            cpu_seconds_ref: 2.0,
            mem_bytes: 100,
            shared_mem_bytes: 0,
            mem_traffic_bytes: 10,
            input_bytes: 4,
            output_bytes: 2,
        };
        let s = p.scaled(3.0);
        assert_eq!(s.cpu_seconds_ref, 6.0);
        assert_eq!(s.mem_bytes, 100); // residency unchanged
        assert_eq!(s.mem_traffic_bytes, 30);
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(3).to_string(), "task-3");
    }
}
