//! Run reports for MapReduce jobs.

use crate::scheduler::SchedulerStats;
use ppc_core::json::Json;
use ppc_exec::RunReport;

/// Everything a MapReduce run reports back: the cross-paradigm
/// [`RunReport`] core (summary, failed tasks, attempt/death counters,
/// cost, trace — reachable directly through `Deref`) plus the
/// Hadoop-specific extras.
#[derive(Debug, Clone)]
pub struct MapReduceReport {
    /// The shared report core; `report.summary`, `report.failed`,
    /// `report.total_attempts`, `report.worker_deaths`, `report.cost`,
    /// and `report.trace` all live here.
    pub core: RunReport,
    /// Scheduler counters: locality, retries, speculation.
    pub scheduler: SchedulerStats,
    /// Map attempts whose HDFS reads were all node-local.
    pub data_local_tasks: usize,
    /// Key/value records emitted by the map phase (before any combining).
    pub map_output_records: usize,
    /// Records actually shuffled to reducers (== map output unless a
    /// map-side combiner ran).
    pub shuffle_records: usize,
}

impl std::ops::Deref for MapReduceReport {
    type Target = RunReport;
    fn deref(&self) -> &RunReport {
        &self.core
    }
}

impl std::ops::DerefMut for MapReduceReport {
    fn deref_mut(&mut self) -> &mut RunReport {
        &mut self.core
    }
}

impl MapReduceReport {
    /// Fraction of executed map attempts that read only local data — the
    /// number Hadoop operators watch to validate locality scheduling.
    pub fn locality_fraction(&self) -> f64 {
        if self.core.total_attempts == 0 {
            0.0
        } else {
            self.data_local_tasks as f64 / self.core.total_attempts as f64
        }
    }

    /// JSON rendering: the core's canonical object
    /// ([`RunReport::to_json`]) extended with the Hadoop extras.
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.core.to_json() else {
            unreachable!("RunReport::to_json returns an object");
        };
        fields.push((
            "data_local_tasks".into(),
            Json::from(self.data_local_tasks as u64),
        ));
        fields.push((
            "locality_fraction".into(),
            Json::from(self.locality_fraction()),
        ));
        fields.push((
            "speculative_assignments".into(),
            Json::from(self.scheduler.speculative_assignments),
        ));
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::metrics::RunSummary;

    fn report() -> MapReduceReport {
        MapReduceReport {
            core: RunReport {
                summary: RunSummary {
                    platform: "hadoop".into(),
                    cores: 8,
                    tasks: 10,
                    makespan_seconds: 1.0,
                    redundant_executions: 0,
                    remote_bytes: 0,
                },
                failed: vec![],
                total_attempts: 10,
                worker_deaths: 0,
                cost: None,
                trace: None,
            },
            scheduler: SchedulerStats::default(),
            data_local_tasks: 9,
            map_output_records: 10,
            shuffle_records: 10,
        }
    }

    #[test]
    fn locality_fraction() {
        let r = report();
        assert!((r.locality_fraction() - 0.9).abs() < 1e-12);
        assert!(r.is_complete());
    }

    #[test]
    fn zero_attempts_no_panic() {
        let mut r = report();
        r.core.total_attempts = 0;
        r.data_local_tasks = 0;
        assert_eq!(r.locality_fraction(), 0.0);
    }

    #[test]
    fn json_extends_the_core_object() {
        let r = report();
        let j = Json::parse(&r.to_json().to_string()).unwrap();
        assert_eq!(
            j.field("summary")
                .unwrap()
                .field("platform")
                .unwrap()
                .as_str()
                .unwrap(),
            "hadoop"
        );
        assert_eq!(j.field("data_local_tasks").unwrap().as_u64().unwrap(), 9);
    }
}
