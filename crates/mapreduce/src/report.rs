//! Run reports for MapReduce jobs.

use crate::scheduler::SchedulerStats;
use ppc_core::metrics::RunSummary;

/// Everything a MapReduce run reports back.
#[derive(Debug, Clone)]
pub struct MapReduceReport {
    pub summary: RunSummary,
    /// Task indices that exhausted their attempt budget.
    pub failed: Vec<usize>,
    /// Scheduler counters: locality, retries, speculation.
    pub scheduler: SchedulerStats,
    /// Map attempts whose HDFS reads were all node-local.
    pub data_local_tasks: usize,
    /// Total map attempts actually executed (≥ tasks when retries or
    /// speculative duplicates ran).
    pub total_attempts: usize,
    /// Key/value records emitted by the map phase (before any combining).
    pub map_output_records: usize,
    /// Records actually shuffled to reducers (== map output unless a
    /// map-side combiner ran).
    pub shuffle_records: usize,
    /// Full span trace (traced runs): per-attempt `dispatch → read → map →
    /// commit` phases plus fleet events. Feed it to
    /// [`ppc_trace::OverheadReport`] or [`ppc_trace::chrome_trace_json`].
    pub trace: Option<ppc_trace::Trace>,
}

impl MapReduceReport {
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }

    /// Fraction of executed map attempts that read only local data — the
    /// number Hadoop operators watch to validate locality scheduling.
    pub fn locality_fraction(&self) -> f64 {
        if self.total_attempts == 0 {
            0.0
        } else {
            self.data_local_tasks as f64 / self.total_attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_fraction() {
        let r = MapReduceReport {
            summary: RunSummary {
                platform: "hadoop".into(),
                cores: 8,
                tasks: 10,
                makespan_seconds: 1.0,
                redundant_executions: 0,
                remote_bytes: 0,
            },
            failed: vec![],
            scheduler: SchedulerStats::default(),
            data_local_tasks: 9,
            total_attempts: 10,
            map_output_records: 10,
            shuffle_records: 10,
            trace: None,
        };
        assert!((r.locality_fraction() - 0.9).abs() < 1e-12);
        assert!(r.is_complete());
    }

    #[test]
    fn zero_attempts_no_panic() {
        let r = MapReduceReport {
            summary: RunSummary {
                platform: "hadoop".into(),
                cores: 1,
                tasks: 0,
                makespan_seconds: 0.0,
                redundant_executions: 0,
                remote_bytes: 0,
            },
            failed: vec![],
            scheduler: SchedulerStats::default(),
            data_local_tasks: 0,
            total_attempts: 0,
            map_output_records: 0,
            shuffle_records: 0,
            trace: None,
        };
        assert_eq!(r.locality_fraction(), 0.0);
    }
}
