//! # ppc-mapreduce — a Hadoop-like MapReduce runtime
//!
//! Reproduces the properties of Apache Hadoop the paper leans on (§2.2):
//!
//! * **HDFS storage** — inputs live in `ppc-hdfs` with replicated blocks.
//! * **Data-locality scheduling** — "Hadoop optimizes the data communication
//!   of MapReduce jobs by scheduling computations near the data using the
//!   data locality information provided by the HDFS file system."
//! * **Global-queue dynamic scheduling** — "a master node with many client
//!   workers approach ... a global queue for the task scheduling, achieving
//!   natural load balancing among the tasks."
//! * **Speculative execution & retries** — "Hadoop performs duplicate
//!   execution of slower executing tasks and handles task failures by
//!   rerunning of the failed tasks."
//! * **File-oriented inputs** — the paper's custom `InputFormat` /
//!   `RecordReader` that hand the *file name* and *HDFS path* to the map
//!   function (instead of file contents) so legacy executables can be
//!   wrapped; [`input::InputFormat::FileName`] is exactly that.
//!
//! Map-only jobs (all three paper applications), full map/shuffle/reduce
//! jobs, and Twister-style **iterative MapReduce** ([`iterative`] — the
//! paper's §8 future work) are all supported. Two runtimes share the
//! [`scheduler::Scheduler`], and both are reached through exactly two
//! entry points driven by a [`ppc_exec::RunContext`]:
//!
//! * [`run`] — the native runtime ([`runtime`]): real threads against a
//!   real `MiniHdfs`.
//! * [`simulate`] — the simulated runtime ([`sim`]): paper-scale clusters
//!   on the `ppc-des` engine.
//!
//! [`HadoopEngine`] exposes the same pair behind the paradigm-generic
//! [`ppc_exec::Engine`] trait.

pub mod engine;
pub mod harness;
pub mod input;
pub mod iterative;
pub mod job;
pub mod report;
pub mod runtime;
pub mod scheduler;
pub mod sim;

pub use engine::HadoopEngine;
pub use harness::{run, simulate};
pub use input::{InputFormat, InputSplit};
#[allow(deprecated)]
pub use iterative::run_iterative;
pub use iterative::{cache_splits, IterativeJob, IterativeReport};
pub use job::{ExecutableMapper, MapContext, MapReduceJob, Mapper, Reducer};
pub use report::MapReduceReport;
pub use runtime::HadoopConfig;
pub use sim::HadoopSimConfig;
