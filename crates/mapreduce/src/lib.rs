//! # ppc-mapreduce — a Hadoop-like MapReduce runtime
//!
//! Reproduces the properties of Apache Hadoop the paper leans on (§2.2):
//!
//! * **HDFS storage** — inputs live in `ppc-hdfs` with replicated blocks.
//! * **Data-locality scheduling** — "Hadoop optimizes the data communication
//!   of MapReduce jobs by scheduling computations near the data using the
//!   data locality information provided by the HDFS file system."
//! * **Global-queue dynamic scheduling** — "a master node with many client
//!   workers approach ... a global queue for the task scheduling, achieving
//!   natural load balancing among the tasks."
//! * **Speculative execution & retries** — "Hadoop performs duplicate
//!   execution of slower executing tasks and handles task failures by
//!   rerunning of the failed tasks."
//! * **File-oriented inputs** — the paper's custom `InputFormat` /
//!   `RecordReader` that hand the *file name* and *HDFS path* to the map
//!   function (instead of file contents) so legacy executables can be
//!   wrapped; [`input::InputFormat::FileName`] is exactly that.
//!
//! Map-only jobs (all three paper applications), full map/shuffle/reduce
//! jobs, and Twister-style **iterative MapReduce** ([`iterative`] — the
//! paper's §8 future work) are all supported. Two runtimes share the [`scheduler::Scheduler`]:
//! [`runtime`] executes on real threads against a real `MiniHdfs`;
//! [`sim`] models paper-scale clusters on the `ppc-des` engine.

pub mod input;
pub mod iterative;
pub mod job;
pub mod report;
pub mod runtime;
pub mod scheduler;
pub mod sim;

pub use input::{InputFormat, InputSplit};
pub use iterative::{run_iterative, IterativeJob, IterativeReport};
pub use job::{ExecutableMapper, MapContext, MapReduceJob, Mapper, Reducer};
pub use report::MapReduceReport;
pub use runtime::{run_job, HadoopConfig};
pub use sim::{simulate, simulate_chaos, HadoopSimConfig};
