//! The two MapReduce entry points: [`run`] (native) and [`simulate`]
//! (discrete-event), both driven by a [`ppc_exec::RunContext`].
//!
//! The context's seed / fault schedule / trace settings override the
//! corresponding config fields. The simulator takes its cluster from the
//! context's fleet plan; the native runtime's topology comes from `fs`
//! instead (compute is co-located with the HDFS datanodes), so a
//! [`RunContext::local`] context is enough there.

use crate::job::{MapReduceJob, Mapper, Reducer};
use crate::report::MapReduceReport;
use crate::runtime::HadoopConfig;
use crate::sim::HadoopSimConfig;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_exec::RunContext;
use ppc_hdfs::fs::MiniHdfs;
use std::sync::Arc;

/// Run a job (map-only or map+reduce) natively on the cluster underlying
/// `fs`: real threads, real HDFS reads, Hadoop's output-committer
/// discipline. The context's seed, fault schedule, and trace sink
/// override the config's `seed`, `schedule`, and `trace` fields when set;
/// its fleet plan is unused (the `MiniHdfs` defines the node count,
/// `config.slots_per_node` the slots).
pub fn run(
    ctx: &RunContext,
    fs: &Arc<MiniHdfs>,
    job: &MapReduceJob,
    mapper: &dyn Mapper,
    reducer: Option<&dyn Reducer>,
    config: &HadoopConfig,
) -> Result<MapReduceReport> {
    let mut cfg = config.clone();
    cfg.seed = ctx.seed_or(cfg.seed);
    cfg.schedule = ctx.schedule_or(&cfg.schedule);
    cfg.trace = ctx.sink_or(&cfg.trace);
    cfg.resilience = ctx.resilience_or(&cfg.resilience);
    crate::runtime::run_job_impl(fs, job, mapper, reducer, &cfg)
}

/// Simulate a map-only Hadoop job of `tasks` in virtual time on the
/// context's single cluster — the `ppc-des` twin of [`run`] for
/// paper-scale what-if studies.
///
/// The context's seed and trace flag override the sim config's; its fault
/// schedule drives the event-based chaos model. Panics on malformed sim
/// dials or a hybrid/elastic fleet plan, like every simulator here.
pub fn simulate(ctx: &RunContext, tasks: &[TaskSpec], cfg: &HadoopSimConfig) -> MapReduceReport {
    let cluster = match ctx.single_cluster() {
        Ok(c) => c,
        Err(e) => panic!("{e}"),
    };
    let mut cfg = *cfg;
    cfg.seed = ctx.seed_or(cfg.seed);
    cfg.trace = ctx.trace_or(cfg.trace);
    cfg.resilience = ctx.resilience_or(&cfg.resilience);
    cfg.queue = ctx.queue_or(cfg.queue);
    crate::sim::simulate_impl(cluster, tasks, &cfg, ctx.schedule.clone())
}
