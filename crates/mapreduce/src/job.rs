//! Job descriptions, the Mapper/Reducer traits, and the executable adapter.

use crate::input::InputFormat;
use ppc_core::exec::Executor;
use ppc_core::task::{ResourceProfile, TaskSpec};
use ppc_core::{PpcError, Result};
use ppc_hdfs::block::DataNodeId;
use ppc_hdfs::fs::MiniHdfs;
use std::sync::Arc;

/// A MapReduce job. With `reducer: None` it is map-only — the shape of all
/// three paper applications, whose outputs "can be collected independently
/// and do not need any combining steps" (§4).
#[derive(Clone)]
pub struct MapReduceJob {
    pub name: String,
    /// HDFS paths of the input files (one map task each).
    pub input_paths: Vec<String>,
    /// HDFS directory where outputs land.
    pub output_dir: String,
    pub input_format: InputFormat,
    /// Number of reduce tasks (ignored for map-only jobs).
    pub n_reducers: usize,
    /// Re-run slow tasks on idle slots (Hadoop's speculative execution).
    ///
    /// Legacy knob: it maps to
    /// `ppc_resilience::HedgeConfig::legacy_speculation()` and is ignored
    /// whenever an explicit `resilience` policy is set on the run config
    /// (or via `RunContext::with_resilience`).
    #[deprecated(note = "set a `ppc_resilience::ResiliencePolicy` on the run instead")]
    pub speculative: bool,
    /// Attempts per task before the job declares it failed.
    pub max_attempts: u32,
    /// Run the reducer as a *map-side combiner* on each map task's output
    /// before the shuffle (valid only for associative, commutative reduce
    /// functions — Hadoop's same caveat).
    pub use_combiner: bool,
}

impl MapReduceJob {
    pub fn map_only(
        name: impl Into<String>,
        input_paths: Vec<String>,
        output_dir: impl Into<String>,
    ) -> Self {
        #[allow(deprecated)]
        MapReduceJob {
            name: name.into(),
            input_paths,
            output_dir: output_dir.into(),
            input_format: InputFormat::FileName,
            n_reducers: 0,
            speculative: true,
            max_attempts: 4,
            use_combiner: false,
        }
    }

    pub fn with_reducers(mut self, n: usize) -> Self {
        self.n_reducers = n;
        self
    }

    pub fn with_input_format(mut self, f: InputFormat) -> Self {
        self.input_format = f;
        self
    }

    /// Legacy speculation toggle — the hedging policy on the run config
    /// (`resilience` field, or `RunContext::with_resilience`) supersedes it.
    #[deprecated(note = "set a `ppc_resilience::ResiliencePolicy` on the run instead")]
    pub fn with_speculative(mut self, on: bool) -> Self {
        #[allow(deprecated)]
        {
            self.speculative = on;
        }
        self
    }

    pub fn with_combiner(mut self, on: bool) -> Self {
        self.use_combiner = on;
        self
    }

    pub fn validate(&self) -> Result<()> {
        if self.input_paths.is_empty() {
            return Err(PpcError::InvalidArgument(format!(
                "job '{}' has no inputs",
                self.name
            )));
        }
        if self.max_attempts == 0 {
            return Err(PpcError::InvalidArgument(
                "max_attempts must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// What a map function can do besides compute: read HDFS (with locality
/// accounting) and emit key/value pairs.
pub struct MapContext<'a> {
    pub fs: &'a MiniHdfs,
    /// The datanode this map attempt is running on.
    pub node: DataNodeId,
    emitted: Vec<(String, Vec<u8>)>,
    /// Whether every HDFS read this task performed was node-local.
    all_local: bool,
}

impl<'a> MapContext<'a> {
    pub fn new(fs: &'a MiniHdfs, node: DataNodeId) -> MapContext<'a> {
        MapContext {
            fs,
            node,
            emitted: Vec::new(),
            all_local: true,
        }
    }

    /// Read an HDFS file from this mapper's node, tracking locality.
    pub fn read(&mut self, path: &str) -> Result<Vec<u8>> {
        let (data, local) = self.fs.read_from(path, Some(self.node))?;
        self.all_local &= local;
        Ok(data)
    }

    /// Emit an intermediate (map-only: final) key/value pair.
    pub fn emit(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.emitted.push((key.into(), value));
    }

    /// Consume the context, returning emissions and the locality verdict.
    pub fn finish(self) -> (Vec<(String, Vec<u8>)>, bool) {
        (self.emitted, self.all_local)
    }
}

/// A map function.
pub trait Mapper: Send + Sync {
    fn map(&self, key: &str, value: &[u8], ctx: &mut MapContext<'_>) -> Result<()>;
}

/// A reduce function: all values for one key, sorted by arrival.
pub trait Reducer: Send + Sync {
    fn reduce(&self, key: &str, values: &[Vec<u8>]) -> Result<Vec<u8>>;
}

/// The paper's map function (§2.4): "copy the input file from HDFS to the
/// working directory, execute the external program as a process and finally
/// upload the result file to the HDFS". Wraps any [`Executor`] as a Mapper
/// for [`InputFormat::FileName`] jobs.
pub struct ExecutableMapper {
    executor: Arc<dyn Executor>,
    app: String,
}

impl ExecutableMapper {
    pub fn new(app: impl Into<String>, executor: Arc<dyn Executor>) -> ExecutableMapper {
        ExecutableMapper {
            executor,
            app: app.into(),
        }
    }
}

impl Mapper for ExecutableMapper {
    fn map(&self, key: &str, value: &[u8], ctx: &mut MapContext<'_>) -> Result<()> {
        // key = file name, value = HDFS path (the custom RecordReader).
        let path = std::str::from_utf8(value)
            .map_err(|_| PpcError::Codec("input path is not UTF-8".into()))?
            .to_string();
        let input = ctx.read(&path)?;
        let spec = TaskSpec::new(
            0,
            self.app.clone(),
            key.to_string(),
            ResourceProfile::cpu_bound(0.0),
        );
        let output = self.executor.run(&spec, &input)?;
        ctx.emit(format!("{key}.out"), output);
        Ok(())
    }
}

/// Hash-partition a key among `n` reducers (Hadoop's default partitioner).
pub fn partition_for(key: &str, n_reducers: usize) -> usize {
    debug_assert!(n_reducers > 0);
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % n_reducers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::exec::FnExecutor;

    #[test]
    fn validation() {
        assert!(MapReduceJob::map_only("j", vec![], "/out")
            .validate()
            .is_err());
        assert!(MapReduceJob::map_only("j", vec!["/a".into()], "/out")
            .validate()
            .is_ok());
    }

    #[test]
    fn context_tracks_locality_and_emissions() {
        let fs = MiniHdfs::new(2, 1 << 20, 1, 3);
        fs.create("/f", b"data", Some(DataNodeId(0))).unwrap();
        let mut ctx = MapContext::new(&fs, DataNodeId(0));
        assert_eq!(ctx.read("/f").unwrap(), b"data");
        ctx.emit("k", vec![1]);
        let (emitted, local) = ctx.finish();
        assert_eq!(emitted, vec![("k".to_string(), vec![1])]);
        assert!(local);

        let mut remote_ctx = MapContext::new(&fs, DataNodeId(1));
        remote_ctx.read("/f").unwrap();
        let (_, local) = remote_ctx.finish();
        assert!(!local);
    }

    #[test]
    fn executable_mapper_reads_path_and_emits_output() {
        let fs = MiniHdfs::new(2, 1 << 20, 1, 4);
        fs.create("/in/x.fa", b"acgt", Some(DataNodeId(0))).unwrap();
        let exec = FnExecutor::new("upper", |_s, i: &[u8]| Ok(i.to_ascii_uppercase()));
        let mapper = ExecutableMapper::new("upper", exec);
        let mut ctx = MapContext::new(&fs, DataNodeId(0));
        mapper.map("x.fa", b"/in/x.fa", &mut ctx).unwrap();
        let (emitted, _) = ctx.finish();
        assert_eq!(emitted, vec![("x.fa.out".to_string(), b"ACGT".to_vec())]);
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for n in [1usize, 3, 8] {
            for key in ["a", "bb", "ccc", "x.out"] {
                let p = partition_for(key, n);
                assert!(p < n);
                assert_eq!(p, partition_for(key, n), "stable");
            }
        }
        // Different keys spread across partitions (sanity, not uniformity).
        let ps: std::collections::HashSet<usize> = (0..100)
            .map(|i| partition_for(&format!("key-{i}"), 8))
            .collect();
        assert!(ps.len() >= 6);
    }
}
