//! The master's task scheduler: a global queue with data-locality
//! preference, failure retries, and hedged (speculative) execution.
//!
//! Both the native runtime (threads asking for work) and the simulator
//! (virtual workers asking for work) drive this same state machine, so the
//! scheduling behaviour being measured is identical in both.
//!
//! Speculation is delegated to the shared [`ppc_resilience::HedgePolicy`]:
//! the legacy `speculative: bool` maps to
//! [`HedgeConfig::legacy_speculation`], which reproduces the old
//! duplicate-the-oldest-running-task behavior bit-for-bit, while richer
//! configs add quantile-derived hedge delays and a hedge budget.

use crate::input::InputSplit;
use ppc_hdfs::block::DataNodeId;
use ppc_resilience::{HedgeConfig, HedgePolicy};
use std::collections::{HashMap, VecDeque};

/// Identifies one attempt of one task (task index, attempt ordinal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttemptId {
    pub task: usize,
    pub attempt: u32,
}

/// A unit of work handed to a worker slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    pub id: AttemptId,
    /// Index into the scheduler's split list.
    pub split: usize,
    /// Whether the input's replicas include the requesting node.
    pub local: bool,
    /// Whether this is a speculative duplicate of a running attempt.
    pub speculative: bool,
}

/// What `complete` tells the caller about an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// This attempt finished the task.
    First,
    /// The task was already done (speculative duplicate or stale retry):
    /// this attempt's work is redundant.
    Duplicate,
}

/// What `fail` tells the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOutcome {
    /// The task went back in the queue for another attempt.
    Retried,
    /// The retry budget is exhausted; the task is failed permanently.
    TaskFailed,
    /// The task already completed via another attempt; nothing to do.
    Stale,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskPhase {
    Pending,
    Running,
    Done,
    Failed,
}

struct TaskState {
    phase: TaskPhase,
    live_attempts: u32,
    next_attempt: u32,
    failures: u32,
    /// Monotone stamp of when the task first started running (for picking
    /// speculation candidates: oldest-running first).
    started_seq: u64,
    /// Clock time the current running period began (for hedge-delay ages).
    started_at_s: f64,
}

/// Counters the report surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    pub local_assignments: u64,
    pub remote_assignments: u64,
    pub speculative_assignments: u64,
    pub retries: u64,
    pub duplicate_completions: u64,
}

/// The global-queue scheduler.
pub struct Scheduler {
    splits: Vec<InputSplit>,
    tasks: Vec<TaskState>,
    pending: VecDeque<usize>,
    n_done: usize,
    n_failed: usize,
    hedge: Option<HedgePolicy>,
    max_attempts: u32,
    seq: u64,
    stats: SchedulerStats,
    /// Launch time of each live attempt, for latency observation.
    attempt_started: HashMap<AttemptId, f64>,
}

impl Scheduler {
    /// Legacy constructor: `speculative` maps to
    /// [`HedgeConfig::legacy_speculation`] (duplicate the oldest running
    /// task whenever a slot would otherwise idle, no delay, no budget).
    pub fn new(splits: Vec<InputSplit>, speculative: bool, max_attempts: u32) -> Scheduler {
        Scheduler::with_policy(
            splits,
            speculative.then(HedgeConfig::legacy_speculation),
            max_attempts,
        )
    }

    /// Full constructor: hedging behavior comes from the shared policy
    /// (`None` = never launch duplicates).
    pub fn with_policy(
        splits: Vec<InputSplit>,
        hedge: Option<HedgeConfig>,
        max_attempts: u32,
    ) -> Scheduler {
        assert!(max_attempts >= 1);
        let n = splits.len();
        Scheduler {
            splits,
            tasks: (0..n)
                .map(|_| TaskState {
                    phase: TaskPhase::Pending,
                    live_attempts: 0,
                    next_attempt: 0,
                    failures: 0,
                    started_seq: 0,
                    started_at_s: 0.0,
                })
                .collect(),
            pending: (0..n).collect(),
            n_done: 0,
            n_failed: 0,
            hedge: hedge.map(HedgePolicy::new),
            max_attempts,
            seq: 0,
            stats: SchedulerStats::default(),
            attempt_started: HashMap::new(),
        }
    }

    pub fn split(&self, index: usize) -> &InputSplit {
        &self.splits[index]
    }

    pub fn n_tasks(&self) -> usize {
        self.splits.len()
    }

    pub fn n_done(&self) -> usize {
        self.n_done
    }

    pub fn failed_tasks(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.phase == TaskPhase::Failed)
            .map(|(i, _)| i)
            .collect()
    }

    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// All tasks resolved (done or permanently failed) and no attempt running.
    pub fn is_complete(&self) -> bool {
        self.n_done + self.n_failed == self.tasks.len()
    }

    /// Ask for work on behalf of a worker on `node`, with no clock — the
    /// legacy entry point, equivalent to [`Scheduler::next_at`] at `t = 0`
    /// (under legacy speculation the hedge delay is zero, so the clock
    /// never matters).
    pub fn next(&mut self, node: DataNodeId) -> Option<Assignment> {
        self.next_at(node, 0.0)
    }

    /// Ask for work on behalf of a worker on `node` at time `now_s`.
    ///
    /// Selection order (Hadoop's essentials):
    /// 1. a pending task whose input is replicated on `node` (data-local),
    /// 2. any pending task (remote read),
    /// 3. if hedging is on and nothing is pending: a duplicate of the
    ///    oldest-running task the [`HedgePolicy`] approves (under live-
    ///    attempt cap, within budget, older than the hedge delay).
    pub fn next_at(&mut self, node: DataNodeId, now_s: f64) -> Option<Assignment> {
        // 1. Local pending task.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|&t| self.splits[t].hosts.contains(&node))
        {
            let task = self.pending.remove(pos).expect("position valid");
            self.stats.local_assignments += 1;
            return Some(self.launch(task, true, false, now_s));
        }
        // 2. Any pending task.
        if let Some(task) = self.pending.pop_front() {
            self.stats.remote_assignments += 1;
            return Some(self.launch(task, false, false, now_s));
        }
        // 3. Hedged duplicate.
        if let Some(policy) = &self.hedge {
            let n_tasks = self.splits.len();
            let candidate = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.phase == TaskPhase::Running
                        && policy.should_hedge(now_s - t.started_at_s, t.live_attempts, n_tasks)
                })
                .min_by_key(|(_, t)| t.started_seq)
                .map(|(i, _)| i);
            if let Some(task) = candidate {
                self.hedge
                    .as_mut()
                    .expect("hedge checked above")
                    .record_hedge();
                self.stats.speculative_assignments += 1;
                let local = self.splits[task].hosts.contains(&node);
                if local {
                    self.stats.local_assignments += 1;
                } else {
                    self.stats.remote_assignments += 1;
                }
                return Some(self.launch_attempt(task, local, true, now_s));
            }
        }
        None
    }

    /// The current hedge delay (None when hedging is off) — what the
    /// runtimes use to decide how long an idle slot should wait before
    /// asking again.
    pub fn hedge_delay_s(&self) -> Option<f64> {
        self.hedge.as_ref().map(|p| p.hedge_delay())
    }

    /// Hedged duplicates launched so far (counts against the budget).
    pub fn hedges_launched(&self) -> usize {
        self.hedge.as_ref().map_or(0, |p| p.hedges_launched())
    }

    fn launch(&mut self, task: usize, local: bool, speculative: bool, now_s: f64) -> Assignment {
        self.tasks[task].phase = TaskPhase::Running;
        self.seq += 1;
        self.tasks[task].started_seq = self.seq;
        self.tasks[task].started_at_s = now_s;
        self.launch_attempt(task, local, speculative, now_s)
    }

    fn launch_attempt(
        &mut self,
        task: usize,
        local: bool,
        speculative: bool,
        now_s: f64,
    ) -> Assignment {
        let t = &mut self.tasks[task];
        t.live_attempts += 1;
        let id = AttemptId {
            task,
            attempt: t.next_attempt,
        };
        t.next_attempt += 1;
        self.attempt_started.insert(id, now_s);
        Assignment {
            id,
            split: task,
            local,
            speculative,
        }
    }

    /// Report an attempt's successful completion (legacy clockless form).
    pub fn complete(&mut self, id: AttemptId) -> CompleteOutcome {
        self.complete_at(id, 0.0)
    }

    /// Report an attempt's successful completion at `now_s`; the attempt's
    /// latency feeds the hedge policy's quantile estimate.
    pub fn complete_at(&mut self, id: AttemptId, now_s: f64) -> CompleteOutcome {
        if let Some(started) = self.attempt_started.remove(&id) {
            if let Some(policy) = &mut self.hedge {
                policy.observe(now_s - started);
            }
        }
        let t = &mut self.tasks[id.task];
        t.live_attempts = t.live_attempts.saturating_sub(1);
        match t.phase {
            TaskPhase::Done | TaskPhase::Failed => {
                self.stats.duplicate_completions += 1;
                CompleteOutcome::Duplicate
            }
            _ => {
                t.phase = TaskPhase::Done;
                self.n_done += 1;
                CompleteOutcome::First
            }
        }
    }

    /// Report an attempt's failure.
    pub fn fail(&mut self, id: AttemptId) -> FailOutcome {
        self.attempt_started.remove(&id);
        let t = &mut self.tasks[id.task];
        t.live_attempts = t.live_attempts.saturating_sub(1);
        match t.phase {
            TaskPhase::Done => FailOutcome::Stale,
            TaskPhase::Failed => FailOutcome::Stale,
            _ => {
                t.failures += 1;
                if t.failures >= self.max_attempts {
                    // Let any still-live duplicate finish; if none, fail now.
                    if t.live_attempts == 0 {
                        t.phase = TaskPhase::Failed;
                        self.n_failed += 1;
                        return FailOutcome::TaskFailed;
                    }
                    return FailOutcome::Stale;
                }
                self.stats.retries += 1;
                if t.live_attempts == 0 {
                    t.phase = TaskPhase::Pending;
                    self.pending.push_back(id.task);
                }
                FailOutcome::Retried
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splits(hosts: Vec<Vec<usize>>) -> Vec<InputSplit> {
        hosts
            .into_iter()
            .enumerate()
            .map(|(i, h)| InputSplit {
                index: i,
                path: format!("/in/f{i}"),
                name: format!("f{i}"),
                len: 100,
                hosts: h.into_iter().map(DataNodeId).collect(),
            })
            .collect()
    }

    #[test]
    fn prefers_local_tasks() {
        let mut s = Scheduler::new(splits(vec![vec![1], vec![0], vec![1]]), false, 1);
        // Node 0 should pick task 1 (its local one) even though task 0 is first.
        let a = s.next(DataNodeId(0)).unwrap();
        assert_eq!(a.split, 1);
        assert!(a.local);
        // Node 1 then gets task 0 or 2, both local to it.
        let b = s.next(DataNodeId(1)).unwrap();
        assert!(b.local);
        assert_eq!(s.stats().local_assignments, 2);
    }

    #[test]
    fn falls_back_to_remote() {
        let mut s = Scheduler::new(splits(vec![vec![5]]), false, 1);
        let a = s.next(DataNodeId(0)).unwrap();
        assert!(!a.local);
        assert_eq!(s.stats().remote_assignments, 1);
    }

    #[test]
    fn completion_drains_the_job() {
        let mut s = Scheduler::new(splits(vec![vec![0], vec![0]]), false, 1);
        let a = s.next(DataNodeId(0)).unwrap();
        let b = s.next(DataNodeId(0)).unwrap();
        assert!(s.next(DataNodeId(0)).is_none());
        assert_eq!(s.complete(a.id), CompleteOutcome::First);
        assert!(!s.is_complete());
        assert_eq!(s.complete(b.id), CompleteOutcome::First);
        assert!(s.is_complete());
        assert_eq!(s.n_done(), 2);
    }

    #[test]
    fn failure_retries_then_gives_up() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), false, 2);
        let a = s.next(DataNodeId(0)).unwrap();
        assert_eq!(s.fail(a.id), FailOutcome::Retried);
        let b = s.next(DataNodeId(0)).unwrap();
        assert_eq!(b.id.attempt, 1, "fresh attempt ordinal");
        assert_eq!(s.fail(b.id), FailOutcome::TaskFailed);
        assert!(s.is_complete());
        assert_eq!(s.failed_tasks(), vec![0]);
    }

    #[test]
    fn speculation_only_when_queue_empty() {
        let mut s = Scheduler::new(splits(vec![vec![0], vec![0]]), true, 4);
        let a = s.next(DataNodeId(0)).unwrap();
        assert!(!a.speculative);
        let b = s.next(DataNodeId(0)).unwrap();
        assert!(!b.speculative);
        // Queue empty, two tasks running: next request gets a duplicate of
        // the oldest-running task (task of `a`).
        let c = s.next(DataNodeId(1)).unwrap();
        assert!(c.speculative);
        assert_eq!(c.id.task, a.id.task);
        // No third attempt while two are live.
        let d = s.next(DataNodeId(1)).unwrap();
        assert!(d.speculative);
        assert_eq!(d.id.task, b.id.task, "other task gets its duplicate next");
        assert!(
            s.next(DataNodeId(1)).is_none(),
            "all tasks at 2 live attempts"
        );
    }

    #[test]
    fn duplicate_completion_counts_redundant() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), true, 4);
        let a = s.next(DataNodeId(0)).unwrap();
        let dup = s.next(DataNodeId(1)).unwrap();
        assert!(dup.speculative);
        assert_eq!(s.complete(a.id), CompleteOutcome::First);
        assert_eq!(s.complete(dup.id), CompleteOutcome::Duplicate);
        assert_eq!(s.stats().duplicate_completions, 1);
        assert!(s.is_complete());
    }

    #[test]
    fn failed_speculative_attempt_is_harmless() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), true, 4);
        let a = s.next(DataNodeId(0)).unwrap();
        let dup = s.next(DataNodeId(1)).unwrap();
        assert_eq!(s.fail(dup.id), FailOutcome::Retried);
        assert_eq!(s.complete(a.id), CompleteOutcome::First);
        assert!(s.is_complete());
    }

    #[test]
    fn no_speculation_when_disabled() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), false, 4);
        let _a = s.next(DataNodeId(0)).unwrap();
        assert!(s.next(DataNodeId(1)).is_none());
    }

    #[test]
    fn quantile_policy_delays_and_budgets_hedges() {
        let cfg = HedgeConfig {
            quantile: 0.5,
            factor: 2.0,
            min_observations: 1,
            min_delay_s: 0.0,
            budget_fraction: 0.5,
            max_live_attempts: 2,
        };
        let mut s = Scheduler::with_policy(splits(vec![vec![0], vec![0]]), Some(cfg), 4);
        let a = s.next_at(DataNodeId(0), 0.0).unwrap();
        let _b = s.next_at(DataNodeId(0), 0.0).unwrap();
        // One completion at 10 s arms the trigger: delay = p50(10) × 2 = 20.
        assert_eq!(s.complete_at(a.id, 10.0), CompleteOutcome::First);
        assert_eq!(s.hedge_delay_s(), Some(20.0));
        // The surviving task started at t=0; at t=15 it is under the delay.
        assert!(s.next_at(DataNodeId(1), 15.0).is_none());
        // At t=20 it crosses the delay and gets its hedge.
        let h = s.next_at(DataNodeId(1), 20.0).unwrap();
        assert!(h.speculative);
        assert_eq!(s.hedges_launched(), 1);
        // Budget = ceil(0.5 × 2) = 1: no further duplicates even later.
        assert_eq!(s.complete_at(h.id, 25.0), CompleteOutcome::First);
        assert!(s.next_at(DataNodeId(1), 100.0).is_none());
    }

    #[test]
    fn late_success_after_budget_exhausted_via_live_duplicate() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), true, 1);
        let a = s.next(DataNodeId(0)).unwrap();
        let dup = s.next(DataNodeId(1)).unwrap();
        // First attempt fails and the budget is gone, but the duplicate is
        // still live, so the task is not failed yet.
        assert_eq!(s.fail(a.id), FailOutcome::Stale);
        assert!(!s.is_complete());
        assert_eq!(s.complete(dup.id), CompleteOutcome::First);
        assert!(s.is_complete());
        assert!(s.failed_tasks().is_empty());
    }
}
