//! The master's task scheduler: a global queue with data-locality
//! preference, failure retries, and speculative execution.
//!
//! Both the native runtime (threads asking for work) and the simulator
//! (virtual workers asking for work) drive this same state machine, so the
//! scheduling behaviour being measured is identical in both.

use crate::input::InputSplit;
use ppc_hdfs::block::DataNodeId;
use std::collections::VecDeque;

/// Identifies one attempt of one task (task index, attempt ordinal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttemptId {
    pub task: usize,
    pub attempt: u32,
}

/// A unit of work handed to a worker slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    pub id: AttemptId,
    /// Index into the scheduler's split list.
    pub split: usize,
    /// Whether the input's replicas include the requesting node.
    pub local: bool,
    /// Whether this is a speculative duplicate of a running attempt.
    pub speculative: bool,
}

/// What `complete` tells the caller about an attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompleteOutcome {
    /// This attempt finished the task.
    First,
    /// The task was already done (speculative duplicate or stale retry):
    /// this attempt's work is redundant.
    Duplicate,
}

/// What `fail` tells the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOutcome {
    /// The task went back in the queue for another attempt.
    Retried,
    /// The retry budget is exhausted; the task is failed permanently.
    TaskFailed,
    /// The task already completed via another attempt; nothing to do.
    Stale,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskPhase {
    Pending,
    Running,
    Done,
    Failed,
}

struct TaskState {
    phase: TaskPhase,
    live_attempts: u32,
    next_attempt: u32,
    failures: u32,
    /// Monotone stamp of when the task first started running (for picking
    /// speculation candidates: oldest-running first).
    started_seq: u64,
}

/// Counters the report surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    pub local_assignments: u64,
    pub remote_assignments: u64,
    pub speculative_assignments: u64,
    pub retries: u64,
    pub duplicate_completions: u64,
}

/// The global-queue scheduler.
pub struct Scheduler {
    splits: Vec<InputSplit>,
    tasks: Vec<TaskState>,
    pending: VecDeque<usize>,
    n_done: usize,
    n_failed: usize,
    speculative: bool,
    max_attempts: u32,
    seq: u64,
    stats: SchedulerStats,
}

impl Scheduler {
    pub fn new(splits: Vec<InputSplit>, speculative: bool, max_attempts: u32) -> Scheduler {
        assert!(max_attempts >= 1);
        let n = splits.len();
        Scheduler {
            splits,
            tasks: (0..n)
                .map(|_| TaskState {
                    phase: TaskPhase::Pending,
                    live_attempts: 0,
                    next_attempt: 0,
                    failures: 0,
                    started_seq: 0,
                })
                .collect(),
            pending: (0..n).collect(),
            n_done: 0,
            n_failed: 0,
            speculative,
            max_attempts,
            seq: 0,
            stats: SchedulerStats::default(),
        }
    }

    pub fn split(&self, index: usize) -> &InputSplit {
        &self.splits[index]
    }

    pub fn n_tasks(&self) -> usize {
        self.splits.len()
    }

    pub fn n_done(&self) -> usize {
        self.n_done
    }

    pub fn failed_tasks(&self) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.phase == TaskPhase::Failed)
            .map(|(i, _)| i)
            .collect()
    }

    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// All tasks resolved (done or permanently failed) and no attempt running.
    pub fn is_complete(&self) -> bool {
        self.n_done + self.n_failed == self.tasks.len()
    }

    /// Ask for work on behalf of a worker on `node`.
    ///
    /// Selection order (Hadoop's essentials):
    /// 1. a pending task whose input is replicated on `node` (data-local),
    /// 2. any pending task (remote read),
    /// 3. if speculation is on and nothing is pending: a duplicate of the
    ///    oldest-running task that has only one live attempt.
    pub fn next(&mut self, node: DataNodeId) -> Option<Assignment> {
        // 1. Local pending task.
        if let Some(pos) = self
            .pending
            .iter()
            .position(|&t| self.splits[t].hosts.contains(&node))
        {
            let task = self.pending.remove(pos).expect("position valid");
            self.stats.local_assignments += 1;
            return Some(self.launch(task, true, false));
        }
        // 2. Any pending task.
        if let Some(task) = self.pending.pop_front() {
            self.stats.remote_assignments += 1;
            return Some(self.launch(task, false, false));
        }
        // 3. Speculative duplicate.
        if self.speculative {
            let candidate = self
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.phase == TaskPhase::Running && t.live_attempts == 1)
                .min_by_key(|(_, t)| t.started_seq)
                .map(|(i, _)| i);
            if let Some(task) = candidate {
                self.stats.speculative_assignments += 1;
                let local = self.splits[task].hosts.contains(&node);
                if local {
                    self.stats.local_assignments += 1;
                } else {
                    self.stats.remote_assignments += 1;
                }
                return Some(self.launch_attempt(task, local, true));
            }
        }
        None
    }

    fn launch(&mut self, task: usize, local: bool, speculative: bool) -> Assignment {
        self.tasks[task].phase = TaskPhase::Running;
        self.seq += 1;
        self.tasks[task].started_seq = self.seq;
        self.launch_attempt(task, local, speculative)
    }

    fn launch_attempt(&mut self, task: usize, local: bool, speculative: bool) -> Assignment {
        let t = &mut self.tasks[task];
        t.live_attempts += 1;
        let id = AttemptId {
            task,
            attempt: t.next_attempt,
        };
        t.next_attempt += 1;
        Assignment {
            id,
            split: task,
            local,
            speculative,
        }
    }

    /// Report an attempt's successful completion.
    pub fn complete(&mut self, id: AttemptId) -> CompleteOutcome {
        let t = &mut self.tasks[id.task];
        t.live_attempts = t.live_attempts.saturating_sub(1);
        match t.phase {
            TaskPhase::Done | TaskPhase::Failed => {
                self.stats.duplicate_completions += 1;
                CompleteOutcome::Duplicate
            }
            _ => {
                t.phase = TaskPhase::Done;
                self.n_done += 1;
                CompleteOutcome::First
            }
        }
    }

    /// Report an attempt's failure.
    pub fn fail(&mut self, id: AttemptId) -> FailOutcome {
        let t = &mut self.tasks[id.task];
        t.live_attempts = t.live_attempts.saturating_sub(1);
        match t.phase {
            TaskPhase::Done => FailOutcome::Stale,
            TaskPhase::Failed => FailOutcome::Stale,
            _ => {
                t.failures += 1;
                if t.failures >= self.max_attempts {
                    // Let any still-live duplicate finish; if none, fail now.
                    if t.live_attempts == 0 {
                        t.phase = TaskPhase::Failed;
                        self.n_failed += 1;
                        return FailOutcome::TaskFailed;
                    }
                    return FailOutcome::Stale;
                }
                self.stats.retries += 1;
                if t.live_attempts == 0 {
                    t.phase = TaskPhase::Pending;
                    self.pending.push_back(id.task);
                }
                FailOutcome::Retried
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splits(hosts: Vec<Vec<usize>>) -> Vec<InputSplit> {
        hosts
            .into_iter()
            .enumerate()
            .map(|(i, h)| InputSplit {
                index: i,
                path: format!("/in/f{i}"),
                name: format!("f{i}"),
                len: 100,
                hosts: h.into_iter().map(DataNodeId).collect(),
            })
            .collect()
    }

    #[test]
    fn prefers_local_tasks() {
        let mut s = Scheduler::new(splits(vec![vec![1], vec![0], vec![1]]), false, 1);
        // Node 0 should pick task 1 (its local one) even though task 0 is first.
        let a = s.next(DataNodeId(0)).unwrap();
        assert_eq!(a.split, 1);
        assert!(a.local);
        // Node 1 then gets task 0 or 2, both local to it.
        let b = s.next(DataNodeId(1)).unwrap();
        assert!(b.local);
        assert_eq!(s.stats().local_assignments, 2);
    }

    #[test]
    fn falls_back_to_remote() {
        let mut s = Scheduler::new(splits(vec![vec![5]]), false, 1);
        let a = s.next(DataNodeId(0)).unwrap();
        assert!(!a.local);
        assert_eq!(s.stats().remote_assignments, 1);
    }

    #[test]
    fn completion_drains_the_job() {
        let mut s = Scheduler::new(splits(vec![vec![0], vec![0]]), false, 1);
        let a = s.next(DataNodeId(0)).unwrap();
        let b = s.next(DataNodeId(0)).unwrap();
        assert!(s.next(DataNodeId(0)).is_none());
        assert_eq!(s.complete(a.id), CompleteOutcome::First);
        assert!(!s.is_complete());
        assert_eq!(s.complete(b.id), CompleteOutcome::First);
        assert!(s.is_complete());
        assert_eq!(s.n_done(), 2);
    }

    #[test]
    fn failure_retries_then_gives_up() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), false, 2);
        let a = s.next(DataNodeId(0)).unwrap();
        assert_eq!(s.fail(a.id), FailOutcome::Retried);
        let b = s.next(DataNodeId(0)).unwrap();
        assert_eq!(b.id.attempt, 1, "fresh attempt ordinal");
        assert_eq!(s.fail(b.id), FailOutcome::TaskFailed);
        assert!(s.is_complete());
        assert_eq!(s.failed_tasks(), vec![0]);
    }

    #[test]
    fn speculation_only_when_queue_empty() {
        let mut s = Scheduler::new(splits(vec![vec![0], vec![0]]), true, 4);
        let a = s.next(DataNodeId(0)).unwrap();
        assert!(!a.speculative);
        let b = s.next(DataNodeId(0)).unwrap();
        assert!(!b.speculative);
        // Queue empty, two tasks running: next request gets a duplicate of
        // the oldest-running task (task of `a`).
        let c = s.next(DataNodeId(1)).unwrap();
        assert!(c.speculative);
        assert_eq!(c.id.task, a.id.task);
        // No third attempt while two are live.
        let d = s.next(DataNodeId(1)).unwrap();
        assert!(d.speculative);
        assert_eq!(d.id.task, b.id.task, "other task gets its duplicate next");
        assert!(
            s.next(DataNodeId(1)).is_none(),
            "all tasks at 2 live attempts"
        );
    }

    #[test]
    fn duplicate_completion_counts_redundant() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), true, 4);
        let a = s.next(DataNodeId(0)).unwrap();
        let dup = s.next(DataNodeId(1)).unwrap();
        assert!(dup.speculative);
        assert_eq!(s.complete(a.id), CompleteOutcome::First);
        assert_eq!(s.complete(dup.id), CompleteOutcome::Duplicate);
        assert_eq!(s.stats().duplicate_completions, 1);
        assert!(s.is_complete());
    }

    #[test]
    fn failed_speculative_attempt_is_harmless() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), true, 4);
        let a = s.next(DataNodeId(0)).unwrap();
        let dup = s.next(DataNodeId(1)).unwrap();
        assert_eq!(s.fail(dup.id), FailOutcome::Retried);
        assert_eq!(s.complete(a.id), CompleteOutcome::First);
        assert!(s.is_complete());
    }

    #[test]
    fn no_speculation_when_disabled() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), false, 4);
        let _a = s.next(DataNodeId(0)).unwrap();
        assert!(s.next(DataNodeId(1)).is_none());
    }

    #[test]
    fn late_success_after_budget_exhausted_via_live_duplicate() {
        let mut s = Scheduler::new(splits(vec![vec![0]]), true, 1);
        let a = s.next(DataNodeId(0)).unwrap();
        let dup = s.next(DataNodeId(1)).unwrap();
        // First attempt fails and the budget is gone, but the duplicate is
        // still live, so the task is not failed yet.
        assert_eq!(s.fail(a.id), FailOutcome::Stale);
        assert!(!s.is_complete());
        assert_eq!(s.complete(dup.id), CompleteOutcome::First);
        assert!(s.is_complete());
        assert!(s.failed_tasks().is_empty());
    }
}
