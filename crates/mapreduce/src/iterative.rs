//! Iterative MapReduce — the paper's stated future work, implemented.
//!
//! The paper closes §8 with: *"we are working on developing a fully-fledged
//! MapReduce framework with iterative-MapReduce support for the Windows
//! Azure Cloud infrastructure ... which will provide users the best of both
//! worlds"* (Twister / TwisterAzure, the authors' follow-up systems).
//!
//! The loop engine itself now lives in the workflow layer
//! ([`ppc_workflow::iterate`]) — fixed-point iteration is a staged-execution
//! concept, not a MapReduce private. This module keeps what *is*
//! MapReduce-specific: the HDFS cache bootstrap ([`cache_splits`] — static
//! data read from HDFS once, ever, Twister's defining optimization), the
//! k-means reference application, and the deprecated legacy entry point.

use ppc_core::{PpcError, Result};
use ppc_hdfs::fs::MiniHdfs;
use std::sync::Arc;

pub use ppc_workflow::iterate::{
    run_fixed_point, Combiner, FixedPointJob, FixedPointReport, IterMapper, IterReducer,
};

/// An iterative job description (legacy shape: carries the HDFS paths the
/// workflow-layer [`FixedPointJob`] leaves to the caller).
#[derive(Debug, Clone)]
pub struct IterativeJob {
    pub name: String,
    /// HDFS paths of the *static* data, cached across iterations.
    pub input_paths: Vec<String>,
    /// Hard iteration cap (convergence may stop earlier).
    pub max_iterations: usize,
    /// Map parallelism (worker threads).
    pub parallelism: usize,
}

impl IterativeJob {
    pub fn new(name: impl Into<String>, input_paths: Vec<String>) -> IterativeJob {
        IterativeJob {
            name: name.into(),
            input_paths,
            max_iterations: 50,
            parallelism: 4,
        }
    }

    pub fn with_max_iterations(mut self, n: usize) -> IterativeJob {
        self.max_iterations = n;
        self
    }

    /// The workflow-layer job this legacy description corresponds to.
    pub fn fixed_point(&self) -> FixedPointJob {
        FixedPointJob::new(self.name.clone())
            .with_max_iterations(self.max_iterations)
            .with_parallelism(self.parallelism)
    }
}

/// Outcome of an iterative run — now the workflow layer's report.
pub type IterativeReport = FixedPointReport;

/// Read the static input splits from HDFS once, producing the in-memory
/// cache [`run_fixed_point`] iterates over. One HDFS read per split, ever.
pub fn cache_splits(fs: &Arc<MiniHdfs>, paths: &[String]) -> Result<Vec<(String, Vec<u8>)>> {
    if paths.is_empty() {
        return Err(PpcError::InvalidArgument(
            "iterative job has no inputs".into(),
        ));
    }
    paths
        .iter()
        .map(|p| fs.read(p).map(|d| (p.clone(), d)))
        .collect()
}

/// Run an iterative MapReduce computation to convergence.
#[deprecated(note = "use `cache_splits` + `ppc_workflow::run_fixed_point`")]
pub fn run_iterative<B: Clone + Send + Sync>(
    fs: &Arc<MiniHdfs>,
    job: &IterativeJob,
    mapper: &dyn IterMapper<B>,
    reducer: &dyn IterReducer,
    combiner: &dyn Combiner<B>,
    initial: B,
) -> Result<(B, IterativeReport)> {
    let cache = cache_splits(fs, &job.input_paths)?;
    run_fixed_point(
        &cache,
        &job.fixed_point(),
        mapper,
        reducer,
        combiner,
        initial,
    )
}

// --------------------------------------------------------------------------
// A reference iterative application: k-means over point blocks. Used by the
// tests here and by the `kmeans_clustering` example; exported because it is
// the canonical "why iterative MapReduce" workload (and the one Twister's
// papers demonstrate).

/// Centroids broadcast between iterations.
pub type Centroids = Vec<Vec<f64>>;

/// Decode a point block: `[n: u32][d: u32][n*d f64]` (same layout as
/// `ppc_apps::gtm::encode_points`).
fn decode_block(bytes: &[u8]) -> Result<Vec<Vec<f64>>> {
    if bytes.len() < 8 {
        return Err(PpcError::Codec("point block too short".into()));
    }
    let n = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let d = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if bytes.len() != 8 + n * d * 8 {
        return Err(PpcError::Codec("point block length mismatch".into()));
    }
    let mut out = Vec::with_capacity(n);
    let mut it = bytes[8..].chunks_exact(8);
    for _ in 0..n {
        let row: Vec<f64> = it
            .by_ref()
            .take(d)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        out.push(row);
    }
    Ok(out)
}

/// Encode points into the block format.
pub fn encode_block(points: &[Vec<f64>]) -> Vec<u8> {
    let n = points.len();
    let d = points.first().map(Vec::len).unwrap_or(0);
    let mut out = Vec::with_capacity(8 + n * d * 8);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(d as u32).to_le_bytes());
    for p in points {
        for v in p {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// K-means mapper: assigns each point in the block to its nearest centroid
/// and emits per-centroid partial sums `[count, sum_0..sum_d-1]`.
pub struct KMeansMapper;

impl IterMapper<Centroids> for KMeansMapper {
    fn map(
        &self,
        _key: &str,
        value: &[u8],
        centroids: &Centroids,
    ) -> Result<Vec<(String, Vec<u8>)>> {
        let points = decode_block(value)?;
        let k = centroids.len();
        let d = centroids.first().map(Vec::len).unwrap_or(0);
        let mut partial = vec![vec![0.0f64; d + 1]; k];
        for p in &points {
            let mut best = 0;
            let mut best_d2 = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d2: f64 = centroid.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = c;
                }
            }
            partial[best][0] += 1.0;
            for (acc, v) in partial[best][1..].iter_mut().zip(p) {
                *acc += v;
            }
        }
        Ok(partial
            .into_iter()
            .enumerate()
            .filter(|(_, row)| row[0] > 0.0)
            .map(|(c, row)| (format!("c{c:04}"), encode_block(&[row])))
            .collect())
    }
}

/// K-means reducer: sums the partial `[count, sums…]` vectors per centroid.
pub struct KMeansReducer;

impl IterReducer for KMeansReducer {
    fn reduce(&self, _key: &str, values: &[Vec<u8>]) -> Result<Vec<u8>> {
        let mut acc: Option<Vec<f64>> = None;
        for v in values {
            let rows = decode_block(v)?;
            let row = rows
                .into_iter()
                .next()
                .ok_or_else(|| PpcError::Codec("empty partial".into()))?;
            match acc.as_mut() {
                None => acc = Some(row),
                Some(a) => {
                    for (x, y) in a.iter_mut().zip(&row) {
                        *x += y;
                    }
                }
            }
        }
        Ok(encode_block(&[
            acc.ok_or_else(|| PpcError::Codec("no partials".into()))?
        ]))
    }
}

/// K-means combiner: new centroid = sum/count; converged when no centroid
/// moved more than `tolerance`.
pub struct KMeansCombiner {
    pub tolerance: f64,
}

impl Combiner<Centroids> for KMeansCombiner {
    fn combine(
        &self,
        reduced: &[(String, Vec<u8>)],
        previous: &Centroids,
    ) -> Result<(Centroids, bool)> {
        let mut next = previous.clone();
        for (key, value) in reduced {
            let idx: usize = key
                .strip_prefix('c')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| PpcError::Codec(format!("bad centroid key {key}")))?;
            let row = decode_block(value)?
                .into_iter()
                .next()
                .ok_or_else(|| PpcError::Codec("empty".into()))?;
            let count = row[0];
            if count > 0.0 {
                next[idx] = row[1..].iter().map(|s| s / count).collect();
            }
        }
        let moved = previous
            .iter()
            .zip(&next)
            .map(|(a, b)| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(0.0f64, f64::max);
        Ok((next, moved <= self.tolerance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_core::rng::Pcg32;

    /// Three well-separated 2-D clusters split across 4 HDFS blocks.
    fn setup(seed: u64) -> (Arc<MiniHdfs>, Vec<String>, Vec<Vec<f64>>) {
        let mut rng = Pcg32::new(seed);
        let true_centers = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]];
        let fs = MiniHdfs::with_defaults(3);
        let mut paths = Vec::new();
        for file in 0..4 {
            let points: Vec<Vec<f64>> = (0..60)
                .map(|_| {
                    let c = &true_centers[rng.next_below(3) as usize];
                    vec![
                        c[0] + rng.normal_with(0.0, 0.5),
                        c[1] + rng.normal_with(0.0, 0.5),
                    ]
                })
                .collect();
            let path = format!("/kmeans/block{file}");
            fs.create(&path, &encode_block(&points), None).unwrap();
            paths.push(path);
        }
        (fs, paths, true_centers)
    }

    #[test]
    fn kmeans_converges_to_true_centers() {
        let (fs, paths, truth) = setup(5);
        let job = IterativeJob::new("kmeans", paths);
        // Deliberately bad initial centroids, one near each cluster.
        let initial = vec![vec![2.0, 2.0], vec![7.0, 1.0], vec![1.0, 7.0]];
        let cache = cache_splits(&fs, &job.input_paths).unwrap();
        let (centroids, report) = run_fixed_point(
            &cache,
            &job.fixed_point(),
            &KMeansMapper,
            &KMeansReducer,
            &KMeansCombiner { tolerance: 1e-6 },
            initial,
        )
        .unwrap();
        assert!(
            report.converged,
            "converged in {} iterations",
            report.iterations
        );
        assert!(report.iterations < 50);
        // Each true center has a recovered centroid within 0.5.
        for t in &truth {
            let nearest = centroids
                .iter()
                .map(|c| {
                    c.iter()
                        .zip(t)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.5, "center {t:?} off by {nearest}");
        }
    }

    #[test]
    fn static_data_is_cached_across_iterations() {
        let (fs, paths, _) = setup(6);
        let n_paths = paths.len();
        let job = IterativeJob::new("kmeans", paths).with_max_iterations(7);
        let initial = vec![vec![1.0, 1.0], vec![8.0, 1.0], vec![1.0, 8.0]];
        let reads_before = fs.read_stats();
        let cache = cache_splits(&fs, &job.input_paths).unwrap();
        let (_, report) = run_fixed_point(
            &cache,
            &job.fixed_point(),
            &KMeansMapper,
            &KMeansReducer,
            &KMeansCombiner { tolerance: 0.0 },
            initial,
        )
        .unwrap();
        let reads_after = fs.read_stats();
        let hdfs_reads = (reads_after.0 + reads_after.1) - (reads_before.0 + reads_before.1);
        assert_eq!(
            hdfs_reads as usize, n_paths,
            "HDFS touched once per split, not per iteration"
        );
        assert!(report.iterations > 1);
        assert_eq!(report.cache_hits, (report.iterations - 1) * n_paths);
    }

    #[test]
    fn max_iterations_bounds_nonconverging_runs() {
        let (fs, paths, _) = setup(7);
        let job = IterativeJob::new("kmeans", paths).with_max_iterations(3);
        // tolerance 0 with jittered data never strictly converges... unless
        // assignments stabilize exactly; accept either, but never exceed cap.
        let initial = vec![vec![1.0, 1.0], vec![8.0, 1.0], vec![1.0, 8.0]];
        let cache = cache_splits(&fs, &job.input_paths).unwrap();
        let (_, report) = run_fixed_point(
            &cache,
            &job.fixed_point(),
            &KMeansMapper,
            &KMeansReducer,
            &KMeansCombiner { tolerance: -1.0 },
            initial,
        )
        .unwrap();
        assert_eq!(report.iterations, 3);
        assert!(!report.converged);
    }

    #[test]
    fn validation_errors() {
        let (fs, _, _) = setup(8);
        assert!(cache_splits(&fs, &[]).is_err());
        assert!(cache_splits(&fs, &["/missing".to_string()]).is_err());
    }

    #[test]
    fn block_codec_round_trip() {
        let pts = vec![vec![1.0, 2.0, 3.0], vec![-4.5, 0.0, 9.75]];
        assert_eq!(decode_block(&encode_block(&pts)).unwrap(), pts);
        assert!(decode_block(&[0, 0]).is_err());
    }
}
