//! [`ppc_exec::Engine`] implementation: Hadoop-style MapReduce as one of
//! the three interchangeable paradigms.

use crate::job::{ExecutableMapper, MapReduceJob};
use crate::runtime::HadoopConfig;
use crate::sim::HadoopSimConfig;
use ppc_core::task::TaskSpec;
use ppc_core::Result;
use ppc_exec::{Engine, JobOutputs, RunContext, RunReport, Workload};
use ppc_hdfs::fs::MiniHdfs;

/// The MapReduce paradigm behind the uniform [`Engine`] interface. Native
/// runs provision a fresh `MiniHdfs` sized to the context's cluster
/// (compute co-located with storage, Hadoop style); pass the configs to
/// tune either runtime.
#[derive(Debug, Clone)]
pub struct HadoopEngine {
    pub sim: HadoopSimConfig,
    pub native: HadoopConfig,
    /// HDFS block size for native runs.
    pub block_size: u64,
    /// HDFS replication factor for native runs (clamped to the node
    /// count).
    pub replication: usize,
}

impl Default for HadoopEngine {
    fn default() -> Self {
        HadoopEngine {
            sim: HadoopSimConfig::default(),
            native: HadoopConfig::default(),
            block_size: 1 << 20,
            replication: 3,
        }
    }
}

impl Engine for HadoopEngine {
    fn name(&self) -> &str {
        "mapreduce"
    }

    fn run(&self, ctx: &RunContext, workload: &Workload) -> Result<(RunReport, JobOutputs)> {
        let cluster = ctx.single_cluster()?;
        let n_nodes = cluster.n_nodes().max(1);
        let fs = MiniHdfs::new(
            n_nodes,
            self.block_size,
            self.replication.min(n_nodes),
            ctx.seed_or(self.native.seed),
        );
        let mut paths = Vec::with_capacity(workload.inputs.len());
        for (spec, input) in &workload.inputs {
            let path = format!("/in/{}", spec.input_key);
            fs.create(&path, input, None)?;
            paths.push(path);
        }
        let mut job = MapReduceJob::map_only(workload.name.clone(), paths, "/out");
        job.max_attempts = workload.max_attempts;
        let mapper = ExecutableMapper::new(workload.name.clone(), workload.executor.clone());
        let report = crate::harness::run(ctx, &fs, &job, &mapper, None, &self.native)?;
        let mut outputs = JobOutputs::new();
        for path in fs.list("/out/") {
            let bytes = fs.read(&path)?;
            outputs.push((path.trim_start_matches("/out/").to_string(), bytes));
        }
        Ok((report.core, outputs))
    }

    fn simulate(&self, ctx: &RunContext, tasks: &[TaskSpec]) -> RunReport {
        crate::harness::simulate(ctx, tasks, &self.sim).core
    }
}
