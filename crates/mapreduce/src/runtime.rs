//! The native MapReduce runtime: real threads over a real `MiniHdfs`.
//!
//! Compute is co-located with storage, Hadoop style: worker slots live on
//! the same nodes as the datanodes, which is what makes data-local
//! scheduling meaningful. Map outputs are committed only for the *first*
//! completion of a task (Hadoop's output-committer discipline), so
//! speculative duplicates and retries can never corrupt results.

use crate::input::{compute_splits, InputFormat};
use crate::job::{partition_for, MapContext, MapReduceJob, Mapper, Reducer};
use crate::report::MapReduceReport;
use crate::scheduler::{CompleteOutcome, Scheduler};
use ppc_chaos::{FaultSchedule, RunClock};
use ppc_core::metrics::RunSummary;
use ppc_core::rng::Pcg32;
use ppc_core::task::TaskId;
use ppc_core::{PpcError, Result};
use ppc_exec::{RunContext, RunReport};
use ppc_hdfs::block::DataNodeId;
use ppc_hdfs::fs::MiniHdfs;
use ppc_resilience::{Health, HealthTracker, HedgeConfig, ResiliencePolicy};
use ppc_trace::{AttemptMarker, EventKind, Phase, RunMeta, Span, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for the native runtime.
#[derive(Debug, Clone)]
pub struct HadoopConfig {
    /// Map slots per node (Hadoop's `mapred.tasktracker.map.tasks.maximum`).
    pub slots_per_node: usize,
    /// Injected probability that any map attempt fails (tests retries).
    pub attempt_failure_p: f64,
    /// Injected extra latency for specific task indices (tests speculation).
    #[deprecated(note = "inject stragglers via a chaos `FaultSchedule::degrade` instead")]
    pub straggler_delay: Option<(usize, Duration)>,
    /// Straggler / gray-failure defense. `None` falls back to the legacy
    /// `job.speculative` knob; `Some` replaces it entirely (hedging,
    /// worker quarantine, per-task deadlines all come from the policy).
    pub resilience: Option<ResiliencePolicy>,
    /// Poll sleep when no work is available yet.
    pub poll_backoff: Duration,
    pub seed: u64,
    /// Deterministic fault schedule. Workers are addressed by the flat
    /// slot index `node * slots_per_node + slot`; a scheduled kill takes
    /// the whole tasktracker slot down (its in-hand attempt fails and the
    /// surviving slots re-execute the task), while the i.i.d. death dice
    /// and torn uploads fail individual attempts — Hadoop's
    /// output-committer discipline makes both recoverable.
    pub schedule: Option<Arc<FaultSchedule>>,
    /// Optional span sink: when set (and enabled) every map attempt records
    /// its `dispatch → read → map → commit` phases plus slot-death events,
    /// and the report carries the finished [`ppc_trace::Trace`].
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl Default for HadoopConfig {
    fn default() -> Self {
        #[allow(deprecated)]
        HadoopConfig {
            slots_per_node: 2,
            attempt_failure_p: 0.0,
            straggler_delay: None,
            resilience: None,
            poll_backoff: Duration::from_micros(200),
            seed: 0xad00,
            schedule: None,
            trace: None,
        }
    }
}

impl HadoopConfig {
    /// Reject nonsense configuration before any threads are spawned.
    pub fn validate(&self) -> Result<()> {
        if self.slots_per_node == 0 {
            return Err(PpcError::InvalidArgument(
                "hadoop config: slots_per_node must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.attempt_failure_p) {
            return Err(PpcError::InvalidArgument(format!(
                "hadoop config: attempt_failure_p = {} is not a probability in [0, 1]",
                self.attempt_failure_p
            )));
        }
        if let Some(schedule) = &self.schedule {
            schedule.validate()?;
        }
        if let Some(policy) = &self.resilience {
            policy.validate()?;
        }
        Ok(())
    }
}

/// Run a job (map-only or map+reduce) on the cluster underlying `fs`.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_mapreduce::run`")]
pub fn run_job(
    fs: &Arc<MiniHdfs>,
    job: &MapReduceJob,
    mapper: &dyn Mapper,
    reducer: Option<&dyn Reducer>,
) -> Result<MapReduceReport> {
    crate::harness::run(
        &RunContext::local(),
        fs,
        job,
        mapper,
        reducer,
        &HadoopConfig::default(),
    )
}

/// [`run_job`] with explicit configuration.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_mapreduce::run`")]
pub fn run_job_with(
    fs: &Arc<MiniHdfs>,
    job: &MapReduceJob,
    mapper: &dyn Mapper,
    reducer: Option<&dyn Reducer>,
    config: &HadoopConfig,
) -> Result<MapReduceReport> {
    crate::harness::run(&RunContext::local(), fs, job, mapper, reducer, config)
}

/// Record a failed attempt with the health tracker, emitting a Quarantine
/// event if the failure streak benched the worker.
fn note_failure(
    health: Option<&Mutex<HealthTracker>>,
    sink: Option<&dyn TraceSink>,
    worker: u32,
    now_s: f64,
) {
    if let Some(h) = health {
        let mut h = h.lock().unwrap();
        let benched_before = matches!(h.health(worker), Health::Quarantined { .. });
        h.record_failure(worker, now_s);
        if !benched_before && matches!(h.health(worker), Health::Quarantined { .. }) {
            if let Some(s) = sink {
                s.event(TraceEvent {
                    at_s: now_s,
                    worker,
                    kind: EventKind::Quarantine,
                });
            }
        }
    }
}

/// Record a successful attempt's latency, emitting a Quarantine event if
/// the EWMA score just benched the worker as gray.
fn note_success(
    health: Option<&Mutex<HealthTracker>>,
    sink: Option<&dyn TraceSink>,
    worker: u32,
    latency_s: f64,
    now_s: f64,
) {
    if let Some(h) = health {
        let mut h = h.lock().unwrap();
        let benched_before = matches!(h.health(worker), Health::Quarantined { .. });
        h.record_success(worker, latency_s, now_s);
        if !benched_before && matches!(h.health(worker), Health::Quarantined { .. }) {
            if let Some(s) = sink {
                s.event(TraceEvent {
                    at_s: now_s,
                    worker,
                    kind: EventKind::Quarantine,
                });
            }
        }
    }
}

/// The native runtime body, reached through [`crate::run`]: co-located
/// compute and storage, Hadoop's output-committer discipline, retries and
/// hedging/quarantine/deadlines from the shared [`Scheduler`] +
/// [`ResiliencePolicy`].
pub(crate) fn run_job_impl(
    fs: &Arc<MiniHdfs>,
    job: &MapReduceJob,
    mapper: &dyn Mapper,
    reducer: Option<&dyn Reducer>,
    config: &HadoopConfig,
) -> Result<MapReduceReport> {
    job.validate()?;
    config.validate()?;
    let splits = compute_splits(fs, &job.input_paths)?;
    let n_tasks = splits.len();
    // An explicit policy replaces the legacy `job.speculative` knob; with
    // no policy the legacy knob maps to the same shared machinery.
    #[allow(deprecated)]
    let legacy_speculative = job.speculative;
    let hedge = match &config.resilience {
        Some(p) => p.hedge,
        None => legacy_speculative.then(HedgeConfig::legacy_speculation),
    };
    let health: Option<Mutex<HealthTracker>> = config
        .resilience
        .and_then(|p| p.quarantine)
        .map(|q| Mutex::new(HealthTracker::new(q)));
    let health = health.as_ref();
    let deadline = config.resilience.and_then(|p| p.deadline);
    let scheduler = Mutex::new(Scheduler::with_policy(splits, hedge, job.max_attempts));

    // Map-side state.
    let intermediate: Mutex<Vec<(String, Vec<u8>)>> = Mutex::new(Vec::new());
    let data_local_tasks = AtomicUsize::new(0);
    let total_attempts = AtomicUsize::new(0);
    let map_output_records = AtomicUsize::new(0);
    let shuffle_records = AtomicUsize::new(0);
    let remote_bytes = AtomicU64::new(0);
    let worker_deaths = AtomicUsize::new(0);
    let map_done_at: Mutex<Option<Instant>> = Mutex::new(None);

    let start = Instant::now();
    let clock = RunClock::start();
    let n_nodes = fs.n_nodes();
    let sink = config.trace.as_deref().filter(|s| s.enabled());

    std::thread::scope(|scope| {
        for node in 0..n_nodes {
            for slot in 0..config.slots_per_node {
                let scheduler = &scheduler;
                let intermediate = &intermediate;
                let data_local_tasks = &data_local_tasks;
                let total_attempts = &total_attempts;
                let remote_bytes = &remote_bytes;
                let worker_deaths = &worker_deaths;
                let map_done_at = &map_done_at;
                let map_output_records = &map_output_records;
                let shuffle_records = &shuffle_records;
                let fs = fs.clone();
                let clock = &clock;
                scope.spawn(move || {
                    let node_id = DataNodeId(node);
                    let worker = (node * config.slots_per_node + slot) as u32;
                    if let Some(s) = sink {
                        s.event(TraceEvent {
                            at_s: clock.now_s(),
                            worker,
                            kind: EventKind::WorkerStart,
                        });
                    }
                    let chaos = config.schedule.as_deref();
                    let mut task_seq: u32 = 0;
                    let mut last_kill_s: f64 = 0.0;
                    let mut rng = Pcg32::for_stream(config.seed, worker as u64);
                    loop {
                        // Health gate: a benched worker sleeps instead of
                        // taking work; an expired bench releases here.
                        if let Some(h) = health {
                            let now_s = clock.now_s();
                            let mut tracker = h.lock().unwrap();
                            if scheduler.lock().unwrap().is_complete() {
                                break;
                            }
                            let benched =
                                matches!(tracker.health(worker), Health::Quarantined { .. });
                            if !tracker.allow(worker, now_s) {
                                drop(tracker);
                                std::thread::sleep(config.poll_backoff);
                                continue;
                            }
                            if benched {
                                // allow() just released this worker.
                                if let Some(s) = sink {
                                    s.event(TraceEvent {
                                        at_s: now_s,
                                        worker,
                                        kind: EventKind::Release,
                                    });
                                }
                            }
                        }
                        let poll_at = sink.map(|_| clock.now_s());
                        let assignment = {
                            let mut sched = scheduler.lock().unwrap();
                            if sched.is_complete() {
                                break;
                            }
                            sched.next_at(node_id, clock.now_s())
                        };
                        let assignment = match assignment {
                            Some(a) => a,
                            None => {
                                std::thread::sleep(config.poll_backoff);
                                continue;
                            }
                        };
                        let attempt_began_s = clock.now_s();
                        if assignment.speculative && config.resilience.is_some() {
                            if let Some(s) = sink {
                                s.event(TraceEvent {
                                    at_s: attempt_began_s,
                                    worker,
                                    kind: EventKind::Hedge,
                                });
                            }
                        }
                        let split = scheduler.lock().unwrap().split(assignment.split).clone();
                        // Master → slot handoff done: the Dispatch phase
                        // covers the poll and the scheduling decision.
                        let mut tt = sink.map(|s| {
                            let mut tt = AttemptMarker::new(
                                s,
                                assignment.id.task as u64,
                                assignment.id.attempt,
                                worker,
                                poll_at.unwrap_or(0.0),
                            );
                            tt.mark(Phase::Dispatch, clock.now_s());
                            tt
                        });
                        total_attempts.fetch_add(1, Ordering::Relaxed);
                        // Locality accounting is per *assignment*, matching
                        // the simulator: speculative duplicates count too.
                        if assignment.local {
                            data_local_tasks.fetch_add(1, Ordering::Relaxed);
                        } else {
                            remote_bytes.fetch_add(split.len, Ordering::Relaxed);
                        }

                        let seq = task_seq;
                        task_seq += 1;
                        if let Some(schedule) = chaos {
                            // A scheduled kill takes the whole slot down: the
                            // in-hand attempt fails and this thread exits, so
                            // the task re-runs on a surviving slot.
                            let now_s = clock.now_s();
                            if schedule.kills_in(worker, last_kill_s, now_s) {
                                worker_deaths.fetch_add(1, Ordering::Relaxed);
                                if let Some(s) = sink {
                                    s.event(TraceEvent {
                                        at_s: now_s,
                                        worker,
                                        kind: EventKind::Death,
                                    });
                                }
                                scheduler.lock().unwrap().fail(assignment.id);
                                break;
                            }
                            last_kill_s = now_s;
                            // I.i.d. crash before the attempt does any work.
                            if schedule.die_before_execute(worker, seq) {
                                worker_deaths.fetch_add(1, Ordering::Relaxed);
                                if let Some(s) = sink {
                                    s.event(TraceEvent {
                                        at_s: clock.now_s(),
                                        worker,
                                        kind: EventKind::Death,
                                    });
                                }
                                scheduler.lock().unwrap().fail(assignment.id);
                                note_failure(health, sink, worker, clock.now_s());
                                continue;
                            }
                            // HDFS brownout/partition: the client rides out
                            // the window (like the cloud-storage retry path)
                            // instead of burning the task's attempt budget.
                            if let Some(until) = schedule.storage_outage_until(clock.now_s()) {
                                let wait = until - clock.now_s();
                                if wait > 0.0 {
                                    std::thread::sleep(Duration::from_secs_f64(wait));
                                }
                            }
                        }

                        // Injected attempt failure.
                        if config.attempt_failure_p > 0.0 && rng.chance(config.attempt_failure_p) {
                            scheduler.lock().unwrap().fail(assignment.id);
                            note_failure(health, sink, worker, clock.now_s());
                            continue;
                        }
                        // Injected straggler latency.
                        #[allow(deprecated)]
                        if let Some((task, delay)) = config.straggler_delay {
                            if assignment.id.task == task && assignment.id.attempt == 0 {
                                std::thread::sleep(delay);
                            }
                        }

                        let read_phase = if assignment.local {
                            Phase::ReadLocal
                        } else {
                            Phase::ReadRemote
                        };
                        let map_started = Instant::now();
                        let mut ctx = MapContext::new(&fs, node_id);
                        let map_result = match job.input_format {
                            InputFormat::FileName => {
                                // The "read" is the split metadata itself;
                                // the span still closes here so the phase
                                // set matches the simulator's.
                                if let Some(tt) = tt.as_mut() {
                                    tt.mark(read_phase, clock.now_s());
                                }
                                mapper.map(&split.name, split.path.as_bytes(), &mut ctx)
                            }
                            InputFormat::WholeFile => match ctx.read(&split.path) {
                                Ok(data) => {
                                    if let Some(tt) = tt.as_mut() {
                                        tt.mark(read_phase, clock.now_s());
                                    }
                                    mapper.map(&split.path, &data, &mut ctx)
                                }
                                Err(e) => Err(e),
                            },
                        };
                        if let Some(schedule) = chaos {
                            // Gray degradation: stretch the attempt by the
                            // schedule's slowdown factor for this worker.
                            let factor = schedule.slowdown(worker, clock.now_s());
                            if factor > 1.0 {
                                std::thread::sleep(map_started.elapsed().mul_f64(factor - 1.0));
                            }
                        }
                        if let Some(tt) = tt.as_mut() {
                            tt.mark(Phase::Map, clock.now_s());
                        }
                        if let Some(schedule) = chaos {
                            // Mid-execution death, a torn output, or dying
                            // before reporting all surface as a failed
                            // attempt: the output committer only commits the
                            // first *completed* attempt, so partial output
                            // can never reach the output directory.
                            let died = schedule.die_mid_execute(worker, seq)
                                || schedule.die_before_delete(worker, seq);
                            if died || schedule.is_torn_upload(worker, seq) {
                                if died {
                                    worker_deaths.fetch_add(1, Ordering::Relaxed);
                                    if let Some(s) = sink {
                                        s.event(TraceEvent {
                                            at_s: clock.now_s(),
                                            worker,
                                            kind: EventKind::Death,
                                        });
                                    }
                                }
                                scheduler.lock().unwrap().fail(assignment.id);
                                note_failure(health, sink, worker, clock.now_s());
                                continue;
                            }
                        }
                        // Per-task deadline: an attempt past the timeout is
                        // cancelled and the task requeued (the cancel still
                        // counts against the task's attempt budget).
                        if let Some(d) = deadline {
                            let now_s = clock.now_s();
                            if now_s - attempt_began_s > d.timeout_s {
                                if let Some(s) = sink {
                                    s.event(TraceEvent {
                                        at_s: now_s,
                                        worker,
                                        kind: EventKind::Cancel,
                                    });
                                }
                                scheduler.lock().unwrap().fail(assignment.id);
                                note_failure(health, sink, worker, now_s);
                                continue;
                            }
                        }
                        match map_result {
                            Ok(()) => {
                                let (mut emitted, _all_local) = ctx.finish();
                                map_output_records.fetch_add(emitted.len(), Ordering::Relaxed);
                                // Map-side combine: fold each key's values
                                // with the reducer before the shuffle.
                                if job.use_combiner && job.n_reducers > 0 {
                                    if let Some(reducer) = reducer {
                                        let mut grouped: BTreeMap<String, Vec<Vec<u8>>> =
                                            BTreeMap::new();
                                        for (k, v) in emitted.drain(..) {
                                            grouped.entry(k).or_default().push(v);
                                        }
                                        for (k, vs) in grouped {
                                            match reducer.reduce(&k, &vs) {
                                                Ok(combined) => emitted.push((k, combined)),
                                                Err(_) => {
                                                    // Combining is an optimization;
                                                    // fall back to raw records.
                                                    for v in vs {
                                                        emitted.push((k.clone(), v));
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                                shuffle_records.fetch_add(emitted.len(), Ordering::Relaxed);
                                let done_s = clock.now_s();
                                note_success(
                                    health,
                                    sink,
                                    worker,
                                    done_s - attempt_began_s,
                                    done_s,
                                );
                                let mut sched = scheduler.lock().unwrap();
                                match sched.complete_at(assignment.id, done_s) {
                                    CompleteOutcome::First => {
                                        let job_done = sched.is_complete();
                                        drop(sched);
                                        if job.n_reducers == 0 {
                                            // Map-only: commit outputs directly.
                                            // A dead local datanode can't take
                                            // the write; pipeline through any
                                            // live one instead of losing the
                                            // committed output.
                                            for (key, value) in emitted {
                                                let path = format!("{}/{key}", job.output_dir);
                                                match fs.create(&path, &value, Some(node_id)) {
                                                    Ok(_) => {}
                                                    Err(e) if e.code() == "AlreadyExists" => {}
                                                    Err(_) => {
                                                        match fs.create(&path, &value, None) {
                                                            Ok(_) => {}
                                                            Err(e)
                                                                if e.code() == "AlreadyExists" => {}
                                                            Err(e) => panic!(
                                                                "commit of '{path}' lost: {e}"
                                                            ),
                                                        }
                                                    }
                                                }
                                            }
                                        } else {
                                            intermediate.lock().unwrap().extend(emitted);
                                        }
                                        if job_done {
                                            *map_done_at.lock().unwrap() = Some(Instant::now());
                                        }
                                        // The committing attempt is the
                                        // task's single terminal span.
                                        if let Some(tt) = tt.as_mut() {
                                            tt.mark(Phase::Commit, clock.now_s());
                                        }
                                    }
                                    CompleteOutcome::Duplicate => { /* discard redundant output */ }
                                }
                            }
                            Err(_) => {
                                scheduler.lock().unwrap().fail(assignment.id);
                                note_failure(health, sink, worker, clock.now_s());
                            }
                        }
                    }
                });
            }
        }
    });

    // Reduce phase (if any): shuffle by key, reduce each partition.
    if let Some(reducer) = reducer {
        if job.n_reducers > 0 {
            let all = std::mem::take(&mut *intermediate.lock().unwrap());
            let mut partitions: Vec<BTreeMap<String, Vec<Vec<u8>>>> =
                vec![BTreeMap::new(); job.n_reducers];
            for (key, value) in all {
                let p = partition_for(&key, job.n_reducers);
                partitions[p].entry(key).or_default().push(value);
            }
            let results: Mutex<Vec<(usize, Vec<u8>)>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for (i, part) in partitions.iter().enumerate() {
                    let results = &results;
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for (key, values) in part {
                            if let Ok(reduced) = reducer.reduce(key, values) {
                                out.extend_from_slice(key.as_bytes());
                                out.push(b'\t');
                                out.extend_from_slice(&reduced);
                                out.push(b'\n');
                            }
                        }
                        results.lock().unwrap().push((i, out));
                    });
                }
            });
            for (i, data) in results.into_inner().unwrap() {
                let path = format!("{}/part-r-{:05}", job.output_dir, i);
                let _ = fs.create(&path, &data, None);
            }
        }
    }

    let sched = scheduler.into_inner().unwrap();
    let failed = sched.failed_tasks();
    let finished = if job.n_reducers == 0 {
        map_done_at
            .into_inner()
            .unwrap()
            .unwrap_or_else(Instant::now)
    } else {
        Instant::now() // reduce phase is part of the makespan
    };
    let stats = sched.stats();
    let attempts = total_attempts.load(Ordering::Relaxed);
    let done = sched.n_done();
    let makespan = finished.duration_since(start).as_secs_f64();

    // The trace's meta carries the *same* f64 makespan and core count as
    // the summary, so efficiency recomputed from the job span matches the
    // report's exactly.
    let trace = sink.and_then(|s| {
        s.set_meta(RunMeta {
            platform: "hadoop".into(),
            cores: n_nodes * config.slots_per_node,
            tasks: done,
            makespan_seconds: makespan,
        });
        s.span(Span::job(makespan));
        s.snapshot()
    });

    Ok(MapReduceReport {
        core: RunReport {
            summary: RunSummary {
                platform: "hadoop".into(),
                cores: n_nodes * config.slots_per_node,
                tasks: done,
                makespan_seconds: makespan,
                redundant_executions: stats.duplicate_completions as usize,
                remote_bytes: remote_bytes.load(Ordering::Relaxed),
            },
            failed: failed.iter().map(|&i| TaskId(i as u64)).collect(),
            total_attempts: attempts,
            worker_deaths: worker_deaths.load(Ordering::Relaxed),
            cost: None,
            trace,
        },
        scheduler: stats,
        data_local_tasks: data_local_tasks.load(Ordering::Relaxed),
        map_output_records: map_output_records.load(Ordering::Relaxed),
        shuffle_records: shuffle_records.load(Ordering::Relaxed),
    })
    .inspect(|r| {
        debug_assert!(r.summary.tasks + r.failed.len() == n_tasks);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ExecutableMapper;
    use ppc_core::exec::FnExecutor;
    use ppc_core::PpcError;

    // Route the legacy-named helpers through the RunContext entry point
    // (explicit items shadow the glob-imported deprecated shims).
    fn run_job(
        fs: &Arc<MiniHdfs>,
        job: &MapReduceJob,
        mapper: &dyn Mapper,
        reducer: Option<&dyn Reducer>,
    ) -> Result<MapReduceReport> {
        crate::run(
            &RunContext::local(),
            fs,
            job,
            mapper,
            reducer,
            &HadoopConfig::default(),
        )
    }

    fn run_job_with(
        fs: &Arc<MiniHdfs>,
        job: &MapReduceJob,
        mapper: &dyn Mapper,
        reducer: Option<&dyn Reducer>,
        config: &HadoopConfig,
    ) -> Result<MapReduceReport> {
        crate::run(&RunContext::local(), fs, job, mapper, reducer, config)
    }

    fn make_fs(n_nodes: usize, files: usize) -> (Arc<MiniHdfs>, Vec<String>) {
        let fs = MiniHdfs::new(n_nodes, 1 << 20, 2, 99);
        let mut paths = Vec::new();
        for i in 0..files {
            let p = format!("/in/f{i}");
            fs.create(&p, format!("data-{i}").as_bytes(), None).unwrap();
            paths.push(p);
        }
        (fs, paths)
    }

    #[test]
    fn map_only_executable_job() {
        let (fs, paths) = make_fs(4, 48);
        let job = MapReduceJob::map_only("upper", paths, "/out");
        // A small sleep keeps all 8 workers in play so the locality stat
        // reflects scheduling policy, not thread-spawn races.
        let exec = FnExecutor::new("upper", |_s, i: &[u8]| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(i.to_ascii_uppercase())
        });
        let mapper = ExecutableMapper::new("upper", exec);
        let report = run_job(&fs, &job, &mapper, None).unwrap();
        assert!(report.is_complete());
        assert_eq!(report.summary.tasks, 48);
        for i in 0..48 {
            let out = fs.read(&format!("/out/f{i}.out")).unwrap();
            assert_eq!(out, format!("DATA-{i}").to_ascii_uppercase().into_bytes());
        }
        // With 2 replicas on 4 nodes, most tasks should be data-local.
        assert!(
            report.locality_fraction() > 0.5,
            "locality {}",
            report.locality_fraction()
        );
    }

    #[test]
    fn retries_recover_from_attempt_failures() {
        let (fs, paths) = make_fs(3, 20);
        let job = MapReduceJob::map_only("flaky", paths, "/out");
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let mapper = ExecutableMapper::new("id", exec);
        let config = HadoopConfig {
            attempt_failure_p: 0.3,
            seed: 7,
            ..HadoopConfig::default()
        };
        let report = run_job_with(&fs, &job, &mapper, None, &config).unwrap();
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert!(
            report.scheduler.retries > 0,
            "some attempts must have failed"
        );
        assert_eq!(fs.list("/out/").len(), 20);
    }

    #[test]
    fn poison_task_fails_job_partially() {
        let (fs, paths) = make_fs(2, 5);
        let job = MapReduceJob::map_only("poison", paths, "/out");
        let exec = FnExecutor::new("poison", |spec: &ppc_core::TaskSpec, i: &[u8]| {
            if spec.input_key == "f2" {
                Err(PpcError::TaskFailed("bad".into()))
            } else {
                Ok(i.to_vec())
            }
        });
        let mapper = ExecutableMapper::new("poison", exec);
        let report = run_job(&fs, &job, &mapper, None).unwrap();
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.summary.tasks, 4);
    }

    #[test]
    #[allow(deprecated)] // exercises the legacy straggler_delay shim
    fn speculative_execution_rescues_straggler() {
        let (fs, paths) = make_fs(2, 6);
        let job = MapReduceJob::map_only("slow", paths, "/out");
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let mapper = ExecutableMapper::new("id", exec);
        let config = HadoopConfig {
            straggler_delay: Some((0, Duration::from_millis(300))),
            slots_per_node: 2,
            ..HadoopConfig::default()
        };
        let report = run_job_with(&fs, &job, &mapper, None, &config).unwrap();
        assert!(report.is_complete());
        assert!(
            report.scheduler.speculative_assignments > 0,
            "a duplicate was launched"
        );
        // The job finished well before the straggler's 300 ms nap.
        assert!(
            report.summary.makespan_seconds < 0.25,
            "speculation should hide the straggler: {}s",
            report.summary.makespan_seconds
        );
    }

    #[test]
    fn word_count_with_reduce_phase() {
        let fs = MiniHdfs::new(2, 1 << 20, 2, 5);
        fs.create("/in/d0", b"apple banana apple", None).unwrap();
        fs.create("/in/d1", b"banana cherry", None).unwrap();
        let job = MapReduceJob::map_only("wc", vec!["/in/d0".into(), "/in/d1".into()], "/out")
            .with_input_format(InputFormat::WholeFile)
            .with_reducers(2);

        struct WcMapper;
        impl Mapper for WcMapper {
            fn map(&self, _key: &str, value: &[u8], ctx: &mut MapContext<'_>) -> Result<()> {
                for word in String::from_utf8_lossy(value).split_whitespace() {
                    ctx.emit(word.to_string(), vec![1]);
                }
                Ok(())
            }
        }
        struct WcReducer;
        impl Reducer for WcReducer {
            fn reduce(&self, _key: &str, values: &[Vec<u8>]) -> Result<Vec<u8>> {
                Ok(values.len().to_string().into_bytes())
            }
        }
        let report = run_job(&fs, &job, &WcMapper, Some(&WcReducer)).unwrap();
        assert!(report.is_complete());
        // Gather all reduce outputs and check the counts.
        let mut combined = String::new();
        for p in fs.list("/out/") {
            combined.push_str(&String::from_utf8(fs.read(&p).unwrap()).unwrap());
        }
        assert!(combined.contains("apple\t2"), "{combined}");
        assert!(combined.contains("banana\t2"), "{combined}");
        assert!(combined.contains("cherry\t1"), "{combined}");
    }

    #[test]
    fn map_side_combiner_shrinks_shuffle_without_changing_results() {
        // Word count with a *sum* reducer (valid as a combiner, unlike a
        // count reducer): values are ASCII numbers summed at each stage.
        struct WcMapper;
        impl Mapper for WcMapper {
            fn map(&self, _key: &str, value: &[u8], ctx: &mut MapContext<'_>) -> Result<()> {
                for word in String::from_utf8_lossy(value).split_whitespace() {
                    ctx.emit(word.to_string(), b"1".to_vec());
                }
                Ok(())
            }
        }
        struct SumReducer;
        impl Reducer for SumReducer {
            fn reduce(&self, _key: &str, values: &[Vec<u8>]) -> Result<Vec<u8>> {
                let total: u64 = values
                    .iter()
                    .map(|v| String::from_utf8_lossy(v).parse::<u64>().unwrap_or(0))
                    .sum();
                Ok(total.to_string().into_bytes())
            }
        }

        let run = |combine: bool| {
            let fs = MiniHdfs::new(2, 1 << 20, 2, 55);
            fs.create("/in/d0", b"apple banana apple apple", None)
                .unwrap();
            fs.create("/in/d1", b"banana apple banana", None).unwrap();
            let job = MapReduceJob::map_only("wc", vec!["/in/d0".into(), "/in/d1".into()], "/out")
                .with_input_format(InputFormat::WholeFile)
                .with_reducers(2)
                .with_combiner(combine);
            let report = run_job(&fs, &job, &WcMapper, Some(&SumReducer)).unwrap();
            let mut combined = String::new();
            for p in fs.list("/out/") {
                combined.push_str(&String::from_utf8(fs.read(&p).unwrap()).unwrap());
            }
            (report, combined)
        };

        let (plain, out_plain) = run(false);
        let (combined, out_combined) = run(true);
        // Identical results...
        assert!(out_plain.contains("apple\t4"), "{out_plain}");
        assert!(out_plain.contains("banana\t3"));
        assert_eq!(out_plain.len(), out_combined.len());
        assert!(out_combined.contains("apple\t4") && out_combined.contains("banana\t3"));
        // ...but fewer records shuffled.
        assert_eq!(plain.map_output_records, 7);
        assert_eq!(plain.shuffle_records, 7);
        assert_eq!(combined.map_output_records, 7);
        assert!(
            combined.shuffle_records <= 4,
            "combined shuffle {}",
            combined.shuffle_records
        );
    }

    #[test]
    fn empty_job_rejected() {
        let (fs, _) = make_fs(2, 1);
        let job = MapReduceJob::map_only("e", vec![], "/out");
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let mapper = ExecutableMapper::new("id", exec);
        assert!(run_job(&fs, &job, &mapper, None).is_err());
    }

    #[test]
    fn invalid_config_rejected_up_front() {
        let (fs, paths) = make_fs(2, 2);
        let job = MapReduceJob::map_only("bad", paths, "/out");
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let mapper = ExecutableMapper::new("id", exec);
        let config = HadoopConfig {
            attempt_failure_p: 1.5,
            ..HadoopConfig::default()
        };
        let err = run_job_with(&fs, &job, &mapper, None, &config).unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");

        let config = HadoopConfig {
            schedule: Some(Arc::new(FaultSchedule::new(1).brownout(0.5, 0.1))),
            ..HadoopConfig::default()
        };
        let err = run_job_with(&fs, &job, &mapper, None, &config).unwrap_err();
        assert_eq!(err.code(), "InvalidArgument");
    }

    #[test]
    fn scheduled_kills_are_recovered_by_reexecution() {
        let (fs, paths) = make_fs(3, 24);
        let mut job = MapReduceJob::map_only("chaos", paths, "/out");
        // Retry-budget headroom: the 5% death dice occasionally fail one
        // task several attempts in a row; the test is about recovery, not
        // about the default budget being generous enough for bad luck.
        job.max_attempts = 12;
        let exec = FnExecutor::new("id", |_s, i: &[u8]| {
            std::thread::sleep(Duration::from_millis(2));
            Ok(i.to_vec())
        });
        let mapper = ExecutableMapper::new("id", exec);
        // Kill two of the six slots early; degrade another; roll dice
        // everywhere. The job must still produce every output exactly once.
        let schedule = FaultSchedule::new(11)
            .kill_at(0, 0.004)
            .kill_at(4, 0.010)
            .degrade(2, 3.0, 0.0, 0.060)
            .with_death_probabilities(0.05, 0.05, 0.05);
        let config = HadoopConfig {
            schedule: Some(Arc::new(schedule)),
            ..HadoopConfig::default()
        };
        let report = run_job_with(&fs, &job, &mapper, None, &config).unwrap();
        assert!(report.is_complete(), "failed: {:?}", report.failed);
        assert_eq!(report.summary.tasks, 24);
        assert!(
            report.scheduler.retries > 0,
            "chaos must have failed some attempts"
        );
        assert_eq!(fs.list("/out/").len(), 24);
    }

    #[test]
    fn storage_brownout_stalls_but_completes() {
        let (fs, paths) = make_fs(2, 12);
        let job = MapReduceJob::map_only("brown", paths, "/out");
        let exec = FnExecutor::new("id", |_s, i: &[u8]| Ok(i.to_vec()));
        let mapper = ExecutableMapper::new("id", exec);
        let schedule = FaultSchedule::new(3).brownout(0.0, 0.030);
        let config = HadoopConfig {
            schedule: Some(Arc::new(schedule)),
            ..HadoopConfig::default()
        };
        let report = run_job_with(&fs, &job, &mapper, None, &config).unwrap();
        assert!(report.is_complete());
        // Every worker rode out the 30 ms outage window before reading.
        assert!(
            report.summary.makespan_seconds >= 0.030,
            "brownout must stall the job: {}s",
            report.summary.makespan_seconds
        );
    }
}
