//! The simulated Hadoop runtime (discrete-event, virtual time).
//!
//! Drives the *same* [`crate::scheduler::Scheduler`] as the native runtime,
//! but workers and time are virtual: task execution times come from the
//! calibrated service-time model, input reads cost local-disk or
//! intra-cluster-network time depending on the locality of the assignment,
//! and each task pays Hadoop's per-task dispatch overhead.
//!
//! Compared to the Classic Cloud simulation the differences are exactly the
//! paper's Table 3 rows: data is on local disks (no cloud-storage transfer),
//! scheduling adds locality awareness, and fault tolerance is re-execution
//! plus speculative duplicates rather than queue visibility timeouts.

use crate::input::InputSplit;
use crate::report::MapReduceReport;
use crate::scheduler::{CompleteOutcome, Scheduler};
use ppc_chaos::FaultSchedule;
use ppc_compute::cluster::Cluster;
use ppc_compute::model::{task_service_seconds, AppModel};
use ppc_core::metrics::RunSummary;
use ppc_core::rng::{Pcg32, CLIENT_STREAM};
use ppc_core::task::TaskSpec;
use ppc_core::{PpcError, Result};
use ppc_des::{Engine, QueueKind, SimTime};
use ppc_exec::{RunContext, RunReport};
use ppc_hdfs::block::DataNodeId;
use ppc_resilience::{Health, HealthTracker, HedgeConfig, ResiliencePolicy};
use ppc_storage::latency::LatencyModel;
use ppc_trace::{EventKind, Phase, Recorder, RunMeta, Span, TraceEvent, TraceSink};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Configuration of the simulated Hadoop platform.
#[derive(Debug, Clone, Copy)]
pub struct HadoopSimConfig {
    pub app: AppModel,
    /// Per-attempt dispatch/JVM-startup overhead, seconds (2010 Hadoop paid
    /// on the order of a second per task).
    pub dispatch_overhead_s: f64,
    /// Data path for local (data-local) reads.
    pub local_read: LatencyModel,
    /// Data path for remote (non-local) reads.
    pub remote_read: LatencyModel,
    /// HDFS replication factor used to synthesize locality hints.
    pub replication: usize,
    /// P(an attempt runs `straggler_factor` slower) — models the slow nodes
    /// speculative execution exists for.
    pub straggler_p: f64,
    pub straggler_factor: f64,
    /// P(an attempt fails outright and is retried).
    pub attempt_failure_p: f64,
    /// Log-normal execution-time jitter.
    pub jitter_sigma: f64,
    pub seed: u64,
    /// Idle workers re-poll the master at this interval, seconds.
    pub poll_interval_s: f64,
    /// Enable speculative duplicates (Hadoop default: on).
    ///
    /// Legacy knob: maps to
    /// `ppc_resilience::HedgeConfig::legacy_speculation()` and is ignored
    /// whenever `resilience` is set (explicitly or via the run context).
    #[deprecated(note = "set `resilience` (a `ppc_resilience::ResiliencePolicy`) instead")]
    pub speculative: bool,
    /// Straggler / gray-failure defense. `None` falls back to the legacy
    /// `speculative` knob; `Some` replaces it entirely (hedging, worker
    /// quarantine, per-task deadlines all come from the policy).
    pub resilience: Option<ResiliencePolicy>,
    /// Attempt budget per task.
    pub max_attempts: u32,
    /// Ablation switch: pretend the scheduler has no locality information
    /// (every read goes over the cluster network).
    pub ignore_locality: bool,
    /// Record per-attempt `dispatch → read → map → commit` spans into the
    /// report's [`ppc_trace::Trace`].
    pub trace: bool,
    /// Event-queue backend for the DES engine; every backend yields
    /// bit-identical reports (pinned by `tests/des_differential.rs`), so
    /// this dial only trades queue-operation speed.
    pub queue: QueueKind,
}

impl Default for HadoopSimConfig {
    fn default() -> Self {
        #[allow(deprecated)]
        HadoopSimConfig {
            app: AppModel::DEFAULT,
            dispatch_overhead_s: 1.0,
            local_read: LatencyModel::local_disk_2010(),
            remote_read: LatencyModel::cluster_network_2010(),
            replication: 3,
            straggler_p: 0.0,
            straggler_factor: 5.0,
            attempt_failure_p: 0.0,
            jitter_sigma: 0.02,
            seed: 42,
            poll_interval_s: 0.5,
            speculative: true,
            resilience: None,
            max_attempts: 4,
            ignore_locality: false,
            trace: false,
            queue: QueueKind::from_env(),
        }
    }
}

impl HadoopSimConfig {
    /// Reject nonsense configuration before the simulation starts.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [
            ("attempt_failure_p", self.attempt_failure_p),
            ("straggler_p", self.straggler_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(PpcError::InvalidArgument(format!(
                    "hadoop sim config: {name} = {p} is not a probability in [0, 1]"
                )));
            }
        }
        if !self.jitter_sigma.is_finite() || self.jitter_sigma < 0.0 {
            return Err(PpcError::InvalidArgument(format!(
                "hadoop sim config: jitter_sigma = {} must be finite and >= 0",
                self.jitter_sigma
            )));
        }
        if self.max_attempts == 0 {
            return Err(PpcError::InvalidArgument(
                "hadoop sim config: max_attempts must be at least 1".into(),
            ));
        }
        if self.poll_interval_s <= 0.0 {
            return Err(PpcError::InvalidArgument(
                "hadoop sim config: poll_interval_s must be positive".into(),
            ));
        }
        if let Some(policy) = &self.resilience {
            policy.validate()?;
        }
        Ok(())
    }
}

struct SimState {
    scheduler: Scheduler,
    /// One independent stream per worker slot.
    rngs: Vec<Pcg32>,
    completed_at: Option<SimTime>,
    attempts: usize,
    deaths: usize,
    data_local: usize,
    remote_bytes: u64,
    schedule: Option<Arc<FaultSchedule>>,
    task_seqs: Vec<u32>,
    last_kill: Vec<f64>,
    rec: Option<Recorder>,
    health: Option<HealthTracker>,
}

/// Simulate a map-only Hadoop job of `tasks` on `cluster`.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_mapreduce::simulate`")]
pub fn simulate(cluster: &Cluster, tasks: &[TaskSpec], cfg: &HadoopSimConfig) -> MapReduceReport {
    crate::harness::simulate(&RunContext::new(cluster), tasks, cfg)
}

/// [`simulate`] under a deterministic [`FaultSchedule`]. Workers are
/// addressed by their flat spawn index (node-major); kills, death dice,
/// torn outputs, gray slowdowns and storage outage windows all map onto
/// Hadoop's recovery mechanism — the failed attempt is re-executed.
#[deprecated(note = "build a `ppc_exec::RunContext` and call `ppc_mapreduce::simulate`")]
pub fn simulate_chaos(
    cluster: &Cluster,
    tasks: &[TaskSpec],
    cfg: &HadoopSimConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> MapReduceReport {
    crate::harness::simulate(
        &RunContext::new(cluster).with_schedule(schedule),
        tasks,
        cfg,
    )
}

/// The simulator body, reached through [`crate::simulate`]: drives the
/// shared [`Scheduler`] over virtual workers on the `ppc-des` engine.
pub(crate) fn simulate_impl(
    cluster: &Cluster,
    tasks: &[TaskSpec],
    cfg: &HadoopSimConfig,
    schedule: Option<Arc<FaultSchedule>>,
) -> MapReduceReport {
    assert!(!tasks.is_empty(), "no tasks to simulate");
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    if let Some(schedule) = &schedule {
        if let Err(e) = schedule.validate() {
            panic!("{e}");
        }
    }
    let n_nodes = cluster.n_nodes();
    let total_workers = cluster.total_workers();
    // Locality synthesis happens on the master's stream; each worker slot
    // draws its jitter/failure dice from its own stream below.
    let mut rng = Pcg32::for_stream(cfg.seed, CLIENT_STREAM);

    // Synthesize HDFS locality: each input replicated on `replication`
    // distinct pseudo-random nodes.
    let splits: Vec<InputSplit> = tasks
        .iter()
        .enumerate()
        .map(|(index, t)| {
            let mut hosts: Vec<DataNodeId> = Vec::new();
            let want = cfg.replication.min(n_nodes);
            while hosts.len() < want {
                let h = DataNodeId(rng.next_below(n_nodes as u32) as usize);
                if !hosts.contains(&h) {
                    hosts.push(h);
                }
            }
            InputSplit {
                index,
                path: t.input_key.clone(),
                name: t.input_key.clone(),
                len: t.profile.input_bytes,
                hosts,
            }
        })
        .collect();

    // An explicit policy replaces the legacy `speculative` knob; with no
    // policy the legacy knob maps to the same shared machinery.
    #[allow(deprecated)]
    let legacy_speculative = cfg.speculative;
    let hedge = match &cfg.resilience {
        Some(p) => p.hedge,
        None => legacy_speculative.then(HedgeConfig::legacy_speculation),
    };
    let state = Rc::new(RefCell::new(SimState {
        scheduler: Scheduler::with_policy(splits, hedge, cfg.max_attempts),
        rngs: (0..total_workers)
            .map(|w| Pcg32::for_stream(cfg.seed, w as u64))
            .collect(),
        completed_at: None,
        attempts: 0,
        deaths: 0,
        data_local: 0,
        remote_bytes: 0,
        schedule,
        task_seqs: vec![0; total_workers],
        last_kill: vec![0.0; total_workers],
        rec: cfg.trace.then(Recorder::new),
        health: cfg
            .resilience
            .and_then(|p| p.quarantine)
            .map(HealthTracker::new),
    }));

    let tasks: Rc<Vec<TaskSpec>> = Rc::new(tasks.to_vec());
    let mut engine = Engine::with_queue(cfg.queue);
    let itype = cluster.itype();
    let cfg = *cfg;

    let mut windex: usize = 0;
    for node in cluster.nodes() {
        for _ in 0..node.workers {
            let state = state.clone();
            let tasks = tasks.clone();
            let node_id = DataNodeId(node.id);
            let workers = node.workers;
            let worker = windex;
            windex += 1;
            engine.schedule_at(SimTime::ZERO, move |e| {
                worker_tick(e, state, tasks, node_id, workers, worker, itype, cfg);
            });
        }
    }

    let _end = engine.run();
    let st = state.borrow();
    let makespan = st.completed_at.unwrap_or(SimTime::ZERO).as_secs_f64();
    let stats = st.scheduler.stats();

    let platform = format!("hadoop-sim-{}", itype.name);
    // The trace's meta carries the *same* f64 makespan and core count as
    // the summary, so efficiency recomputed from the job span matches the
    // report's exactly.
    let trace = st.rec.as_ref().and_then(|rec| {
        rec.set_meta(RunMeta {
            platform: platform.clone(),
            cores: cluster.total_workers(),
            tasks: st.scheduler.n_done(),
            makespan_seconds: makespan,
        });
        rec.span(Span::job(makespan));
        rec.snapshot()
    });

    MapReduceReport {
        core: RunReport {
            summary: RunSummary {
                platform,
                cores: cluster.total_workers(),
                tasks: st.scheduler.n_done(),
                makespan_seconds: makespan,
                redundant_executions: stats.duplicate_completions as usize,
                remote_bytes: st.remote_bytes,
            },
            failed: st
                .scheduler
                .failed_tasks()
                .iter()
                .map(|&i| tasks[i].id)
                .collect(),
            total_attempts: st.attempts,
            worker_deaths: st.deaths,
            cost: Some(cluster.cost(makespan)),
            trace,
        },
        scheduler: stats,
        data_local_tasks: st.data_local,
        map_output_records: 0,
        shuffle_records: 0,
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_tick(
    engine: &mut Engine,
    state: Rc<RefCell<SimState>>,
    tasks: Rc<Vec<TaskSpec>>,
    node: DataNodeId,
    workers_on_node: usize,
    worker: usize,
    itype: ppc_compute::instance::InstanceType,
    cfg: HadoopSimConfig,
) {
    let now_s = engine.now().as_secs_f64();
    // Health gate: a benched worker sleeps until its release time instead
    // of taking work; an expired bench releases (to probation) here.
    let benched_until = {
        let mut st = state.borrow_mut();
        if st.scheduler.is_complete() {
            return; // cluster drains
        }
        let SimState { health, rec, .. } = &mut *st;
        match health {
            Some(h) => {
                let w = worker as u32;
                let benched = matches!(h.health(w), Health::Quarantined { .. });
                if h.allow(w, now_s) {
                    if benched {
                        // allow() just released this worker.
                        if let Some(rec) = rec {
                            rec.event(TraceEvent {
                                at_s: now_s,
                                worker: w,
                                kind: EventKind::Release,
                            });
                        }
                    }
                    None
                } else {
                    match h.health(w) {
                        Health::Quarantined { until_s } => Some(until_s),
                        _ => Some(now_s + cfg.poll_interval_s),
                    }
                }
            }
            None => None,
        }
    };
    if let Some(until_s) = benched_until {
        let st2 = state.clone();
        let wake = (until_s - now_s).max(cfg.poll_interval_s);
        engine.schedule_in(SimTime::from_secs_f64(wake), move |e| {
            worker_tick(e, st2, tasks, node, workers_on_node, worker, itype, cfg);
        });
        return;
    }
    let assignment = {
        let mut st = state.borrow_mut();
        // Locality-blind ablation: ask as a node that matches no replica.
        let asking = if cfg.ignore_locality {
            DataNodeId(usize::MAX)
        } else {
            node
        };
        st.scheduler.next_at(asking, now_s)
    };

    let assignment = match assignment {
        Some(a) => a,
        None => {
            // With no failure injection, no chaos, and no resilience
            // policy (whose hedge delays and deadline cancels can put
            // work back on the queue later), a retry can never repopulate
            // the queue, so an idle worker can retire instead of polling.
            if cfg.attempt_failure_p <= 0.0
                && state.borrow().schedule.is_none()
                && cfg.resilience.is_none()
            {
                return;
            }
            // Re-poll later (a retry may repopulate the queue).
            let st2 = state.clone();
            engine.schedule_in(SimTime::from_secs_f64(cfg.poll_interval_s), move |e| {
                worker_tick(e, st2, tasks, node, workers_on_node, worker, itype, cfg);
            });
            return;
        }
    };
    if assignment.speculative && cfg.resilience.is_some() {
        if let Some(rec) = &state.borrow().rec {
            rec.event(TraceEvent {
                at_s: now_s,
                worker: worker as u32,
                kind: EventKind::Hedge,
            });
        }
    }

    let (duration_s, fails, killed, cancelled, t_read, t_write) = {
        let mut st = state.borrow_mut();
        st.attempts += 1;
        let task = &tasks[assignment.split];
        let read_model = if assignment.local {
            cfg.local_read
        } else {
            cfg.remote_read
        };
        let mut t_read = read_model.transfer_seconds(task.profile.input_bytes);
        if assignment.local {
            st.data_local += 1;
        } else {
            st.remote_bytes += task.profile.input_bytes;
        }
        let mut t_exec_base =
            task_service_seconds(&itype, workers_on_node, &task.profile, &cfg.app);
        let jitter = if cfg.jitter_sigma > 0.0 {
            st.rngs[worker].log_normal(0.0, cfg.jitter_sigma)
        } else {
            1.0
        };
        let straggle = if cfg.straggler_p > 0.0 && st.rngs[worker].chance(cfg.straggler_p) {
            cfg.straggler_factor
        } else {
            1.0
        };
        let t_write = cfg.local_read.transfer_seconds(task.profile.output_bytes);
        let mut fails =
            cfg.attempt_failure_p > 0.0 && st.rngs[worker].chance(cfg.attempt_failure_p);
        let mut killed = false;
        if let Some(schedule) = st.schedule.clone() {
            let w = worker as u32;
            let seq = st.task_seqs[worker];
            st.task_seqs[worker] += 1;
            // Gray degradation stretches the attempt; an HDFS outage
            // window stalls the read until the window closes (the
            // client rides it out rather than burning attempts).
            t_exec_base *= schedule.slowdown(w, now_s);
            if let Some(until) = schedule.storage_outage_until(now_s) {
                t_read += until - now_s;
            }
            // A kill landing anywhere in the attempt's service window,
            // any death die, or a torn output fails the attempt; the
            // scheduler re-executes on the attempt budget.
            let window_end = now_s
                + cfg.dispatch_overhead_s
                + t_read
                + t_exec_base * jitter * straggle
                + t_write;
            killed = schedule.kills_in(w, st.last_kill[worker], window_end);
            st.last_kill[worker] = window_end;
            let died = killed
                || schedule.die_before_execute(w, seq)
                || schedule.die_mid_execute(w, seq)
                || schedule.die_before_delete(w, seq);
            if died {
                st.deaths += 1;
            }
            fails = fails || died || schedule.is_torn_upload(w, seq);
        }
        let mut duration_s =
            cfg.dispatch_overhead_s + t_read + t_exec_base * jitter * straggle + t_write;
        // Per-task deadline: an attempt that cannot finish inside the
        // timeout is cancelled at the deadline and the task requeued
        // (the cancel burns one unit of the task's attempt budget).
        let mut cancelled = false;
        if let Some(d) = cfg.resilience.and_then(|p| p.deadline) {
            if duration_s > d.timeout_s {
                duration_s = d.timeout_s;
                cancelled = true;
            }
        }
        (
            duration_s,
            fails || cancelled,
            killed,
            cancelled,
            t_read,
            t_write,
        )
    };

    let st2 = state.clone();
    engine.schedule_in(SimTime::from_secs_f64(duration_s), move |e| {
        let end = e.now().as_secs_f64();
        {
            let mut st = st2.borrow_mut();
            let terminal = if fails {
                st.scheduler.fail(assignment.id);
                false
            } else {
                st.scheduler.complete_at(assignment.id, end) == CompleteOutcome::First
            };
            // Health scoring: successes feed the EWMA, failures the
            // streak; either can bench this worker as gray.
            {
                let SimState { health, rec, .. } = &mut *st;
                if let Some(h) = health {
                    let w = worker as u32;
                    let benched_before = matches!(h.health(w), Health::Quarantined { .. });
                    if fails {
                        h.record_failure(w, end);
                    } else {
                        h.record_success(w, end - now_s, end);
                    }
                    if !benched_before && matches!(h.health(w), Health::Quarantined { .. }) {
                        if let Some(rec) = rec {
                            rec.event(TraceEvent {
                                at_s: end,
                                worker: w,
                                kind: EventKind::Quarantine,
                            });
                        }
                    }
                }
            }
            if let Some(rec) = &st.rec {
                // Phase boundaries, clamped so engine-clock quantization
                // can never produce a negative-length span. Commit is
                // recorded only for the attempt that actually finished the
                // task, so each completed task has exactly one terminal
                // span; duplicate and failed attempts fold the tail into
                // the map phase.
                let task_id = tasks[assignment.split].id.0;
                let w = worker as u32;
                let a = assignment.id.attempt;
                let d1 = (now_s + cfg.dispatch_overhead_s).min(end);
                let d2 = (d1 + t_read).min(end);
                let d3 = if terminal {
                    (end - t_write).max(d2)
                } else {
                    end
                };
                let read_phase = if assignment.local {
                    Phase::ReadLocal
                } else {
                    Phase::ReadRemote
                };
                rec.span(Span::new(task_id, a, w, Phase::Dispatch, now_s, d1));
                rec.span(Span::new(task_id, a, w, read_phase, d1, d2));
                rec.span(Span::new(task_id, a, w, Phase::Map, d2, d3));
                if terminal {
                    rec.span(Span::new(task_id, a, w, Phase::Commit, d3, end));
                }
                rec.span(Span::new(task_id, a, w, Phase::Attempt, now_s, end));
                if killed {
                    rec.event(TraceEvent {
                        at_s: end,
                        worker: w,
                        kind: EventKind::Death,
                    });
                }
                if cancelled {
                    rec.event(TraceEvent {
                        at_s: end,
                        worker: w,
                        kind: EventKind::Cancel,
                    });
                }
            }
            if st.scheduler.is_complete() && st.completed_at.is_none() {
                st.completed_at = Some(e.now());
            }
        }
        worker_tick(e, st2, tasks, node, workers_on_node, worker, itype, cfg);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppc_compute::instance::BARE_CAP3;
    use ppc_core::task::ResourceProfile;

    fn cpu_tasks(n: u64, secs: f64) -> Vec<TaskSpec> {
        (0..n)
            .map(|i| {
                let mut p = ResourceProfile::cpu_bound(secs);
                p.input_bytes = 200 << 10;
                p.output_bytes = 100 << 10;
                TaskSpec::new(i, "cap3", format!("f{i}"), p)
            })
            .collect()
    }

    fn quiet(cfg: HadoopSimConfig) -> HadoopSimConfig {
        HadoopSimConfig {
            jitter_sigma: 0.0,
            dispatch_overhead_s: 0.0,
            ..cfg
        }
    }

    // Route the legacy-named helpers through the RunContext entry point
    // (explicit items shadow the glob-imported deprecated shims).
    fn simulate(cluster: &Cluster, tasks: &[TaskSpec], cfg: &HadoopSimConfig) -> MapReduceReport {
        crate::simulate(&RunContext::new(cluster), tasks, cfg)
    }

    fn simulate_chaos(
        cluster: &Cluster,
        tasks: &[TaskSpec],
        cfg: &HadoopSimConfig,
        schedule: Option<Arc<FaultSchedule>>,
    ) -> MapReduceReport {
        crate::simulate(
            &RunContext::new(cluster).with_schedule(schedule),
            tasks,
            cfg,
        )
    }

    #[test]
    fn ideal_makespan_two_waves() {
        let cluster = Cluster::provision(BARE_CAP3, 2, 8);
        let mut cfg = quiet(HadoopSimConfig::default());
        cfg.local_read = LatencyModel::FREE;
        cfg.remote_read = LatencyModel::FREE;
        let report = simulate(&cluster, &cpu_tasks(32, 10.0), &cfg);
        assert_eq!(report.summary.tasks, 32);
        assert!(
            (report.summary.makespan_seconds - 20.0).abs() < 1e-6,
            "{}",
            report.summary.makespan_seconds
        );
    }

    #[test]
    fn dispatch_overhead_lowers_efficiency() {
        let cluster = Cluster::provision(BARE_CAP3, 2, 8);
        let tasks = cpu_tasks(64, 30.0);
        let lean = quiet(HadoopSimConfig::default());
        let heavy = HadoopSimConfig {
            dispatch_overhead_s: 3.0,
            jitter_sigma: 0.0,
            ..HadoopSimConfig::default()
        };
        let t_lean = simulate(&cluster, &tasks, &lean).summary.makespan_seconds;
        let t_heavy = simulate(&cluster, &tasks, &heavy).summary.makespan_seconds;
        assert!(t_heavy > t_lean);
    }

    #[test]
    fn locality_fraction_high_with_replication() {
        let cluster = Cluster::provision(BARE_CAP3, 8, 8);
        let cfg = HadoopSimConfig {
            replication: 3,
            ..HadoopSimConfig::default()
        };
        let report = simulate(&cluster, &cpu_tasks(256, 10.0), &cfg);
        assert!(
            report.locality_fraction() > 0.7,
            "locality {}",
            report.locality_fraction()
        );
    }

    #[test]
    #[allow(deprecated)] // exercises the legacy `speculative` shim
    fn speculation_rescues_stragglers() {
        let cluster = Cluster::provision(BARE_CAP3, 2, 8);
        let tasks = cpu_tasks(64, 20.0);
        let slow = HadoopSimConfig {
            straggler_p: 0.05,
            straggler_factor: 10.0,
            jitter_sigma: 0.0,
            dispatch_overhead_s: 0.0,
            ..HadoopSimConfig::default()
        };
        let no_spec = HadoopSimConfig {
            speculative: false,
            ..slow
        };
        let with_spec = HadoopSimConfig {
            speculative: true,
            ..slow
        };
        let t_no = simulate(&cluster, &tasks, &no_spec)
            .summary
            .makespan_seconds;
        let r_yes = simulate(&cluster, &tasks, &with_spec);
        assert!(r_yes.scheduler.speculative_assignments > 0);
        assert!(
            r_yes.summary.makespan_seconds < t_no,
            "speculation helps: {} vs {}",
            r_yes.summary.makespan_seconds,
            t_no
        );
    }

    #[test]
    fn failures_retried_to_completion() {
        let cluster = Cluster::provision(BARE_CAP3, 2, 8);
        let cfg = HadoopSimConfig {
            attempt_failure_p: 0.15,
            ..HadoopSimConfig::default()
        };
        let report = simulate(&cluster, &cpu_tasks(64, 5.0), &cfg);
        assert!(report.is_complete());
        assert!(report.scheduler.retries > 0);
    }

    #[test]
    fn deterministic() {
        let cluster = Cluster::provision(BARE_CAP3, 4, 8);
        let tasks = cpu_tasks(100, 7.0);
        let cfg = HadoopSimConfig::default();
        let a = simulate(&cluster, &tasks, &cfg).summary.makespan_seconds;
        let b = simulate(&cluster, &tasks, &cfg).summary.makespan_seconds;
        assert_eq!(a, b);
    }

    #[test]
    fn chaos_schedule_drives_retries_and_stays_deterministic() {
        let cluster = Cluster::provision(BARE_CAP3, 4, 8);
        let tasks = cpu_tasks(64, 10.0);
        let cfg = quiet(HadoopSimConfig::default());
        let schedule = Arc::new(
            FaultSchedule::new(17)
                .kill_at(0, 15.0)
                .kill_at(9, 25.0)
                .degrade(3, 2.0, 0.0, 60.0)
                .brownout(5.0, 8.0)
                .with_death_probabilities(0.02, 0.02, 0.02),
        );
        let clean = simulate(&cluster, &tasks, &cfg);
        let a = simulate_chaos(&cluster, &tasks, &cfg, Some(schedule.clone()));
        let b = simulate_chaos(&cluster, &tasks, &cfg, Some(schedule));
        assert!(a.is_complete(), "failed: {:?}", a.failed);
        assert_eq!(a.summary.tasks, 64);
        assert!(a.scheduler.retries > 0, "chaos must fail some attempts");
        assert!(
            a.summary.makespan_seconds > clean.summary.makespan_seconds,
            "chaos must cost time: {} vs {}",
            a.summary.makespan_seconds,
            clean.summary.makespan_seconds
        );
        assert_eq!(a.summary.makespan_seconds, b.summary.makespan_seconds);
        assert_eq!(a.total_attempts, b.total_attempts);
    }

    #[test]
    #[should_panic(expected = "attempt_failure_p")]
    fn invalid_sim_config_panics_with_message() {
        let cluster = Cluster::provision(BARE_CAP3, 2, 8);
        let cfg = HadoopSimConfig {
            attempt_failure_p: -0.5,
            ..HadoopSimConfig::default()
        };
        simulate(&cluster, &cpu_tasks(4, 1.0), &cfg);
    }

    #[test]
    fn efficiency_high_for_coarse_grained_work() {
        let cluster = Cluster::provision(BARE_CAP3, 4, 8);
        let tasks = cpu_tasks(256, 60.0);
        let report = simulate(&cluster, &tasks, &HadoopSimConfig::default());
        let t1: f64 = tasks
            .iter()
            .map(|t| task_service_seconds(&BARE_CAP3, 1, &t.profile, &AppModel::DEFAULT))
            .sum();
        let eff = report.summary.efficiency(t1);
        assert!(eff > 0.9, "efficiency {eff}");
    }
}
