//! Input formats and splits.
//!
//! Hadoop's default input formats parse file *contents* into records, which
//! "is not possible" for legacy executables that "expect a file path as the
//! input instead of the contents" (§2.2). The paper therefore implemented a
//! custom `InputFormat`/`RecordReader` pair delivering the file name as the
//! key and the HDFS path as the value, "while preserving the Hadoop data
//! locality based scheduling". Both that format and a whole-file format are
//! provided here; both carry locality hints.

use ppc_core::Result;
use ppc_hdfs::block::DataNodeId;
use ppc_hdfs::fs::MiniHdfs;

/// How file inputs become map records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// Key = bare file name, value = full HDFS path (UTF-8). The map
    /// function reads the file itself — the paper's custom format.
    FileName,
    /// Key = full path, value = the file's bytes, read by the framework on
    /// the mapper's node (counts toward locality stats).
    WholeFile,
}

/// One map task's input: a whole file (the paper's applications are
/// file-per-task, so splits never straddle files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// Sequential split index (the map task id).
    pub index: usize,
    /// HDFS path of the file.
    pub path: String,
    /// Bare file name (final path component).
    pub name: String,
    /// File length, bytes.
    pub len: u64,
    /// Datanodes holding replicas of the file's blocks — the locality hints.
    pub hosts: Vec<DataNodeId>,
}

/// Compute the splits for a set of input paths, pulling locality metadata
/// from the namenode.
pub fn compute_splits(fs: &MiniHdfs, paths: &[String]) -> Result<Vec<InputSplit>> {
    let mut splits = Vec::with_capacity(paths.len());
    for (index, path) in paths.iter().enumerate() {
        let st = fs.status(path)?;
        let name = path.rsplit('/').next().unwrap_or(path).to_string();
        splits.push(InputSplit {
            index,
            path: path.clone(),
            name,
            len: st.len,
            hosts: st.hosts(),
        });
    }
    Ok(splits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_carry_locality() {
        let fs = MiniHdfs::new(4, 1 << 20, 2, 1);
        fs.create("/in/a.fa", b"ACGT", None).unwrap();
        fs.create("/in/b.fa", b"GGTT", None).unwrap();
        let splits = compute_splits(&fs, &["/in/a.fa".into(), "/in/b.fa".into()]).unwrap();
        assert_eq!(splits.len(), 2);
        assert_eq!(splits[0].name, "a.fa");
        assert_eq!(splits[0].len, 4);
        assert_eq!(
            splits[0].hosts.len(),
            2,
            "two replicas -> two candidate hosts"
        );
        assert_eq!(splits[1].index, 1);
    }

    #[test]
    fn missing_input_errors() {
        let fs = MiniHdfs::new(2, 1 << 20, 1, 2);
        assert!(compute_splits(&fs, &["/nope".into()]).is_err());
    }
}
